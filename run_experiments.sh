#!/bin/sh
# Regenerate every figure and quantitative claim of Crockett (1989).
# Outputs land on stdout and (as JSON) in results/.
set -e
mkdir -p results
for exp in e1_figure1 e2_striping e3_selfsched e4_device_per_process \
           e5_global_view e6_seek_degradation e7_declustering \
           e8_buffering e9_view_mismatch e10_boundary e11_reliability \
           e12_is_blocksize; do
    cargo run --release -q -p pario-bench --bin "exp_$exp"
done
cargo run --release -q -p pario-bench --bin exp_span_coalesce
