#!/usr/bin/env bash
# Regenerate every figure and quantitative claim of Crockett (1989).
# Outputs land on stdout and (as JSON) in results/.
set -euo pipefail
mkdir -p results
for exp in e1_figure1 e2_striping e3_selfsched e4_device_per_process \
           e5_global_view e6_seek_degradation e7_declustering \
           e8_buffering e9_view_mismatch e10_boundary e11_reliability \
           e12_is_blocksize; do
    cargo run --release -q -p pario-bench --bin "exp_$exp"
done
cargo run --release -q -p pario-bench --bin exp_span_coalesce
cargo run --release -q -p pario-bench --bin exp_e14_server
cargo run --release -q -p pario-bench --bin exp_e15_executor
cargo run --release -q -p pario-bench --bin exp_e16_faults
cargo run --release -q -p pario-bench --bin exp_e17_cache
cargo run --release -q -p pario-bench --bin exp_e18_net
cargo run --release -q -p pario-bench --bin exp_e19_scale
cargo run --release -q -p pario-bench --bin exp_e20_recovery

# Every experiment must have left its JSON behind; a silent skip (an
# early exit, a renamed table) should fail the run, not go unnoticed.
missing=0
for f in e2_striping_devices e2_striping_unit e3_selfsched \
         e4_device_per_process e5_global_view e6_seek_degradation \
         e7_declustering e8_readahead e8_writebehind e9_crossover \
         e9_view_mismatch e10_boundary e11_campaign e11_mtbf \
         e12_is_blocksize span_coalesce span_coalesce_global \
         e14_server e14_server_sweep e15_executor e15_executor_sched \
         e16_faults e17_cache e18_net_sweep e18_net_depth \
         e19_scale e19_net e20_recovery; do
    if [ ! -f "results/$f.json" ]; then
        echo "MISSING: results/$f.json" >&2
        missing=1
    fi
done

# The flat benchmark summaries (regression tracking) must exist too.
for f in BENCH_e14_server.json BENCH_e15_executor.json \
         BENCH_e16_faults.json BENCH_e17_cache.json BENCH_e18_net.json \
         BENCH_e19_scale.json BENCH_e20_recovery.json; do
    if [ ! -f "$f" ]; then
        echo "MISSING: $f" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "run_experiments.sh: one or more result files missing" >&2
    exit 1
fi
echo "All expected result files present."
