//! Offline shim for `criterion`: a small wall-clock benchmark harness
//! with the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros.
//!
//! Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window; the mean ns/iter (and
//! derived throughput, when declared) is printed to stdout. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// Declared work per iteration, used to derive throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just the parameter (grouped benches already carry the group name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Time `f`, repeatedly, over warmup + measurement windows.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters_done = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let batch = (MEASURE.as_nanos() / per_iter.max(1)).clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters_done = batch;
    }

    fn mean_ns(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters_done.max(1) as f64
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mean = b.mean_ns();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibs = n as f64 / (mean * 1e-9) / (1024.0 * 1024.0);
            format!("  {mibs:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (mean * 1e-9);
            format!("  {eps:.0} elem/s")
        }
        None => String::new(),
    };
    println!("bench {name:<40} {mean:>12.1} ns/iter{rate}");
}

/// The benchmark context handed to `criterion_group!` functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test --benches` runs the binary with `--test`; run each
        // payload once so the benches stay cheap under the test suite.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Criterion {
        let id = name.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            test_mode: self.test_mode,
        };
        f(&mut b);
        report(&id.id, &b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own windows.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Close the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($f(&mut criterion);)+
        }
    };
}

/// Produce `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("skewed").id, "skewed");
    }

    #[test]
    fn bencher_runs_payload_in_test_mode() {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            test_mode: true,
        };
        let mut hits = 0u32;
        b.iter(|| hits += 1);
        assert_eq!(hits, 1);
        assert_eq!(b.iters_done, 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(4096));
        g.bench_function(BenchmarkId::from_parameter(1), |b| b.iter(|| 2 + 2));
        g.bench_with_input(BenchmarkId::new("w", 2), &3u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        c.bench_function("solo", |b| b.iter(|| 1));
    }
}
