//! Offline shim for the `bytes` API surface this workspace uses: an
//! immutable, cheaply-cloneable byte buffer backed by `Arc<[u8]>`.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &**self == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &**self == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(b, c);
        assert!(!b.is_empty());
        assert_eq!(b[1], 2);
    }
}
