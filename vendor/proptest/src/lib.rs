//! Offline shim for `proptest`: deterministic random *sampling* (no
//! shrinking) behind the same macro and strategy surface this workspace
//! uses — `proptest!`, `prop_assert*`, `prop_oneof!`, `Strategy` with
//! `prop_map`/`prop_flat_map`, integer/float range strategies, tuples,
//! `Just`, `any`, and `collection::vec`.
//!
//! Each property runs `ProptestConfig::cases` times with an RNG seeded
//! from the test's name and the case index, so failures reproduce
//! exactly across runs.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to drive strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration. Only the case count is modelled.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize);

/// Strategy for the full domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Any<T> {
    /// The (stateless) instance.
    pub const ANY: Any<T> = Any(PhantomData);
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::ANY
}

/// `proptest::bool::ANY`.
pub mod bool {
    /// Any boolean.
    pub const ANY: crate::Any<bool> = crate::Any::ANY;
}

/// `proptest::num::*::ANY`.
pub mod num {
    /// Strategies for `u8`.
    pub mod u8 {
        /// Any `u8`.
        pub const ANY: crate::Any<u8> = crate::Any::ANY;
    }
    /// Strategies for `u64`.
    pub mod u64 {
        /// Any `u64`.
        pub const ANY: crate::Any<u64> = crate::Any::ANY;
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Half-open length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A vector of `size`-many elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Uniform choice among boxed alternatives (see [`prop_oneof!`]).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// An empty chooser; populate with [`OneOf::with`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> OneOf<V> {
        OneOf {
            options: Vec::new(),
        }
    }

    /// Add one alternative.
    pub fn with(mut self, s: impl Strategy<Value = V> + 'static) -> OneOf<V> {
        self.options.push(Box::new(s));
        self
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs alternatives");
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniformly choose among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new()$(.with($strat))+
    };
}

/// Assert within a property (panics with the failing case's values visible
/// in the assertion message, as with plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            };
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = (1u64..10, 0.0f64..1.0);
        let mut a = crate::TestRng::from_seed(7);
        let mut b = crate::TestRng::from_seed(7);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn oneof_draws_every_alternative() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::from_seed(1);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_and_vecs_in_bounds(
            xs in crate::collection::vec((0u8..4, 0u64..100), 1..20),
            flag in crate::bool::ANY,
            f in 0.5f64..2.0,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, b) in &xs {
                prop_assert!(*a < 4);
                prop_assert!(*b < 100);
            }
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!(u8::from(flag) <= 1);
        }

        fn flat_map_respects_outer(len in 1usize..8) {
            let v = crate::collection::vec(Just(0u8), len)
                .prop_map(|v| v.len())
                .sample(&mut crate::TestRng::from_seed(3));
            prop_assert_eq!(v, len);
        }
    }

    proptest! {
        fn default_config_block_works(x in 0u32..5) {
            prop_assert!(x < 5);
            prop_assert_ne!(x, 99);
        }
    }
}
