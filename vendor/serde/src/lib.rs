//! Offline shim for `serde`: instead of the full serializer/deserializer
//! machinery, types convert to and from a JSON-shaped [`Value`] tree.
//! `serde_json` (also vendored) renders that tree to text and parses it
//! back. The derive macros come from the vendored `serde_derive` and
//! target exactly this trait pair.

pub use serde_derive::{Deserialize, Serialize};

/// Error produced during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Construct from any message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number: unsigned, signed-negative, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

/// An insertion-ordered string-keyed map (the shape `serde_json::Map`
/// presents). The default type parameters make `Map` usable bare and as
/// `Map<String, Value>` interchangeably.
#[derive(Debug, Clone, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// An empty map.
    pub fn new() -> Map {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert, replacing (in place) any existing entry for `key`.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Default for Map<String, Value> {
    fn default() -> Map {
        Map::new()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map),
}

impl Value {
    /// Borrow as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Read as a non-negative integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Read as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Read as floating point (any number coerces).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// Read as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Produce the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ----------------------------------------------------- primitive impls

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::Number(Number::U64(*self as u64))
                } else {
                    Value::Number(Number::I64(*self as i64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        m.insert("b".into(), Value::Bool(false));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u64> = None;
        assert!(none.to_value().is_null());
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&7u64.to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn index_and_str_eq() {
        let mut m = Map::new();
        m.insert("k".into(), Value::String("v".into()));
        let v = Value::Array(vec![Value::Object(m)]);
        assert_eq!(v[0]["k"], "v");
        assert!(v[1]["missing"].is_null());
    }

    #[test]
    fn signed_and_unsigned_ranges() {
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert_eq!(usize::from_value(&41u32.to_value()).unwrap(), 41);
    }
}
