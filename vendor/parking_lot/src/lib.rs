//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! Wraps `std::sync` primitives and exposes parking_lot's panic-free guard
//! API (`lock()`/`read()`/`write()` return guards directly). Lock poisoning
//! is deliberately ignored — parking_lot has no poisoning, and tests that
//! panic while holding a lock expect later acquisitions to succeed.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (std-backed, poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get the value mutably without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Get the value mutably without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`Mutex`] (parking_lot-style `wait`
/// taking `&mut MutexGuard`).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and wait for a notification,
    /// reacquiring before return.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
