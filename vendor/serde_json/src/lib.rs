//! Offline shim for `serde_json`: renders the vendored `serde` [`Value`]
//! tree to JSON text and parses JSON text back into it. Covers the API
//! surface this workspace uses: `to_string`, `to_string_pretty`, `to_vec`,
//! `from_str`, `from_slice`, plus re-exported `Value`, `Map`, `Number`,
//! and `Error`.

pub use serde::{Error, Map, Number, Value};

/// Render `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Render `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Render `value` as compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

/// Parse `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------- emitter

fn emit(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => emit_number(n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                emit(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn emit_number(n: &Number, out: &mut String) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) if f.is_finite() => {
            // `{:?}` is the shortest round-tripping representation and is
            // valid JSON for finite values (e.g. `1.0`, `0.1`, `1e300`).
            out.push_str(&format!("{f:?}"));
        }
        // JSON has no NaN/infinity; mirror the lenient encoders and emit null.
        Number::F64(_) => out.push_str("null"),
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{lit}` at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (UTF-8 passes through intact).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: input is a &str and we only split at ASCII bytes.
                s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..=0xDBFF).contains(&hi) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I64(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "123", "-45", "1.5", "\"hi\""] {
            let v: Value = from_str(src).unwrap();
            assert_eq!(to_string(&v).unwrap(), src);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x\"y\\z","d":-7,"e":0.25}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn pretty_output_parses_back() {
        let src = r#"{"k":[true,{"n":9}],"s":"line\nbreak"}"#;
        let v: Value = from_str(src).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        let v: Value = from_str(r#""A😀é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\u{1F600}é");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn from_slice_matches_from_str() {
        let v: Value = from_slice(b"[1,2,3]").unwrap();
        assert_eq!(to_vec(&v).unwrap(), b"[1,2,3]");
    }
}
