//! Offline shim for the `crossbeam` API surface this workspace uses:
//! `channel::{bounded, unbounded, Sender, Receiver}` over `std::sync::mpsc`
//! and `thread::scope` over `std::thread::scope` (std scoped threads join
//! automatically, so the crossbeam guarantees hold).

/// MPSC channels with crossbeam's unified `Sender`/`Receiver` types.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel (clonable).
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                tx: match &self.tx {
                    Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                    Tx::Bounded(s) => Tx::Bounded(s.clone()),
                },
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Receiving half of a channel. The std receiver sits behind a mutex
    /// so this handle is `Sync`, like crossbeam's MPMC receiver; competing
    /// receivers serialize, which preserves each-message-delivered-once.
    pub struct Receiver<T> {
        rx: std::sync::Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a value or channel closure.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.lock().unwrap_or_else(|e| e.into_inner()).recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.lock().unwrap_or_else(|e| e.into_inner()).try_recv()
        }

        /// Block for at most `timeout` waiting for a value.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.rx
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv_timeout(timeout)
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver {
                rx: std::sync::Mutex::new(rx),
            },
        )
    }

    /// A bounded FIFO channel of capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver {
                rx: std::sync::Mutex::new(rx),
            },
        )
    }
}

/// Scoped threads with crossbeam's closure signature (`|scope| ...`).
pub mod thread {
    /// A scope handle; [`Scope::spawn`] closures receive a reference to it
    /// so spawned threads can spawn further siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }

        /// Whether the thread has finished running.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread guaranteed to join before the scope returns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before
    /// return. Panics from spawned threads propagate as a panic (so the
    /// conventional `.unwrap()` on the result behaves as with crossbeam).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channels_round_trip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(rx.try_recv().is_err());
        drop((tx, tx2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_blocks_at_capacity() {
        let (tx, rx) = super::channel::bounded(1);
        tx.send(7u8).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        drop(rx);
        assert!(tx.send(8).is_err());
    }

    #[test]
    fn scope_spawns_and_joins() {
        let mut data = vec![0u64; 4];
        super::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, slot) in data.iter_mut().enumerate() {
                handles.push(s.spawn(move |_| {
                    *slot = i as u64 + 1;
                    i
                }));
            }
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(h.join().unwrap(), i);
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
