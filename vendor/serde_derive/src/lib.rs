//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented with a hand-rolled token parser
//! (no `syn`/`quote`). Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields,
//! * newtype tuple structs (one field),
//! * enums whose variants are unit, named-field, or newtype,
//! * no generics, no `#[serde(...)]` attributes.
//!
//! Serialization model (matches `serde_json`'s externally-tagged default):
//! named structs become objects, newtypes become their inner value, unit
//! variants become `"Name"`, and data-carrying variants become
//! `{"Name": ...}`.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

enum Fields {
    Named(Vec<String>),
    Newtype,
    Unit,
}

enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn skip_attrs(it: &mut Iter) {
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next();
        match it.next() {
            Some(TokenTree::Group(_)) => {}
            other => panic!("malformed attribute near {other:?}"),
        }
    }
}

fn skip_vis(it: &mut Iter) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

/// Consume one type (field type or discriminant) up to and including the
/// next top-level `,`. Only `<`/`>` need depth tracking; parens/brackets
/// arrive as atomic groups.
fn skip_type(it: &mut Iter) {
    let mut depth = 0i32;
    while let Some(tt) = it.peek() {
        if let TokenTree::Punct(p) = tt {
            let c = p.as_char();
            if c == ',' && depth == 0 {
                it.next();
                return;
            }
            if c == '<' {
                depth += 1;
            } else if c == '>' {
                depth -= 1;
            }
        }
        it.next();
    }
}

fn parse_named_fields(g: &Group) -> Vec<String> {
    let mut it = g.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut it);
        skip_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut it);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(g: &Group) -> usize {
    let mut it = g.stream().into_iter().peekable();
    let mut n = 0;
    loop {
        skip_attrs(&mut it);
        skip_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        n += 1;
        skip_type(&mut it);
    }
    n
}

fn parse_variants(g: &Group) -> Vec<(String, Fields)> {
    let mut it = g.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let peeked = it.peek().cloned();
        let fields = match peeked {
            Some(TokenTree::Group(g2)) if g2.delimiter() == Delimiter::Brace => {
                it.next();
                Fields::Named(parse_named_fields(&g2))
            }
            Some(TokenTree::Group(g2)) if g2.delimiter() == Delimiter::Parenthesis => {
                it.next();
                assert_eq!(
                    count_tuple_fields(&g2),
                    1,
                    "variant `{name}`: only newtype tuple variants are supported"
                );
                Fields::Newtype
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        assert!(
            p.as_char() != '<',
            "generic type `{name}`: not supported by the vendored derive"
        );
    }
    match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(name, Fields::Named(parse_named_fields(&g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                assert_eq!(
                    count_tuple_fields(&g),
                    1,
                    "struct `{name}`: only newtype tuple structs are supported"
                );
                Item::Struct(name, Fields::Newtype)
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(&g))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("derive supports only structs and enums, got `{other}`"),
    }
}

// --------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::Struct(name, Fields::Named(fields)) => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        let mut __m = ::serde::Map::new();\n"
            ));
            for f in fields {
                s.push_str(&format!(
                    "        __m.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("        ::serde::Value::Object(__m)\n    }\n}\n");
        }
        Item::Struct(name, Fields::Newtype) => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        ::serde::Serialize::to_value(&self.0)\n    }}\n}}\n"
            ));
        }
        Item::Struct(name, Fields::Unit) => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        ::serde::Value::Null\n    }}\n}}\n"
            ));
        }
        Item::Enum(name, variants) => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => s.push_str(&format!(
                        "            {name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Fields::Newtype => s.push_str(&format!(
                        "            {name}::{vname}(__inner) => {{\n                let mut __m = ::serde::Map::new();\n                __m.insert(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__inner));\n                ::serde::Value::Object(__m)\n            }}\n"
                    )),
                    Fields::Named(fnames) => {
                        let pat = fnames.join(", ");
                        s.push_str(&format!(
                            "            {name}::{vname} {{ {pat} }} => {{\n                let mut __fm = ::serde::Map::new();\n"
                        ));
                        for f in fnames {
                            s.push_str(&format!(
                                "                __fm.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        s.push_str(&format!(
                            "                let mut __m = ::serde::Map::new();\n                __m.insert(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(__fm));\n                ::serde::Value::Object(__m)\n            }}\n"
                        ));
                    }
                }
            }
            s.push_str("        }\n    }\n}\n");
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::Struct(name, Fields::Named(fields)) => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        let __m = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n        ::std::result::Result::Ok({name} {{\n"
            ));
            for f in fields {
                s.push_str(&format!(
                    "            {f}: ::serde::Deserialize::from_value(__m.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                ));
            }
            s.push_str("        })\n    }\n}\n");
        }
        Item::Struct(name, Fields::Newtype) => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n    }}\n}}\n"
            ));
        }
        Item::Struct(name, Fields::Unit) => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        ::std::result::Result::Ok({name})\n    }}\n}}\n"
            ));
        }
        Item::Enum(name, variants) => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        match __v {{\n"
            ));
            // Unit variants arrive as bare strings.
            s.push_str("            ::serde::Value::String(__s) => match __s.as_str() {\n");
            for (vname, fields) in variants {
                if matches!(fields, Fields::Unit) {
                    s.push_str(&format!(
                        "                \"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            s.push_str(&format!(
                "                __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n            }},\n"
            ));
            // Data-carrying variants arrive as single-key objects.
            let data: Vec<&(String, Fields)> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .collect();
            if !data.is_empty() {
                s.push_str("            ::serde::Value::Object(__m) => {\n");
                for (vname, fields) in data {
                    match fields {
                        Fields::Newtype => s.push_str(&format!(
                            "                if let ::std::option::Option::Some(__inner) = __m.get(\"{vname}\") {{\n                    return ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?));\n                }}\n"
                        )),
                        Fields::Named(fnames) => {
                            s.push_str(&format!(
                                "                if let ::std::option::Option::Some(__inner) = __m.get(\"{vname}\") {{\n                    let __fm = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object payload for {name}::{vname}\"))?;\n                    return ::std::result::Result::Ok({name}::{vname} {{\n"
                            ));
                            for f in fnames {
                                s.push_str(&format!(
                                    "                        {f}: ::serde::Deserialize::from_value(__fm.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                                ));
                            }
                            s.push_str("                    });\n                }\n");
                        }
                        Fields::Unit => unreachable!(),
                    }
                }
                s.push_str(&format!(
                    "                ::std::result::Result::Err(::serde::Error::custom(\"unknown variant object for {name}\"))\n            }}\n"
                ));
            }
            s.push_str(&format!(
                "            _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or object for enum {name}\")),\n        }}\n    }}\n}}\n"
            ));
        }
    }
    s
}
