//! Offline shim for the `rand` 0.10 API surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng`, and `RngExt`
//! (`random`, `random_range`). The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, high-quality, and dependency-free.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from an [`Rng`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`]. The output is a type
/// *parameter* (not an associated type), and the impls below are blanket
/// impls over [`SampleUniform`], so integer-literal inference flows from
/// the call site exactly as with the real `rand`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly samplable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// `hi - lo` as a width (assumes `lo <= hi`).
    fn span(lo: Self, hi: Self) -> u64;
    /// `lo + off` (assumes the result stays in range).
    fn offset(lo: Self, off: u64) -> Self;
}

/// Uniform integer in `[0, bound)` via Lemire-style rejection (simple
/// modulo with 64-bit head-room is unbiased enough for `bound << 2^64`,
/// but do the rejection properly anyway).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn span(lo: $t, hi: $t) -> u64 {
                (hi - lo) as u64
            }
            fn offset(lo: $t, off: u64) -> $t {
                lo + off as $t
            }
        }
    )*};
}

uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn span(lo: $t, hi: $t) -> u64 {
                (hi as i64).wrapping_sub(lo as i64) as u64
            }
            fn offset(lo: $t, off: u64) -> $t {
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        let span = T::span(self.start, self.end);
        T::offset(self.start, uniform_below(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        let span = T::span(lo, hi);
        if span == u64::MAX {
            return T::offset(lo, rng.next_u64());
        }
        T::offset(lo, uniform_below(rng, span + 1))
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draw a uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A biased coin: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.random_range(0usize..8);
            assert!(v < 8);
            let w = r.random_range(0usize..=3);
            assert!(w <= 3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints reachable");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
