//! Implementation of the `pario` command-line volume utility.
//!
//! A volume lives in a directory of device images (`dev0.img`,
//! `dev1.img`, …) plus a small `volume.meta` text file recording the
//! block size. All subcommand logic is here as plain functions over a
//! `Write` sink so the test suite drives it without spawning processes;
//! `src/bin/pario.rs` is a thin argv adapter.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pario_core::{convert as convert_file, Organization, ParallelFile};
use pario_disk::{DeviceRef, FileDisk};
use pario_fs::Volume;
use pario_layout::LayoutSpec;
use pario_reliability::{rebuild_device, scrub};
use pario_workloads::record_payload;

/// Errors from CLI operations, already formatted for the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($t:ty),*) => {$(
        impl From<$t> for CliError {
            fn from(e: $t) -> CliError {
                CliError(e.to_string())
            }
        }
    )*};
}

from_error!(
    pario_fs::FsError,
    pario_core::CoreError,
    pario_disk::DiskError,
    std::io::Error
);

/// CLI result alias.
pub type CliResult = Result<String, CliError>;

fn meta_path(dir: &Path) -> PathBuf {
    dir.join("volume.meta")
}

fn device_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("dev{i}.img"))
}

/// Create a new volume directory with `devices` image files.
pub fn mkvol(dir: &Path, devices: usize, blocks: u64, block_size: usize) -> CliResult {
    if devices == 0 || blocks == 0 || block_size == 0 {
        return Err(CliError("devices, blocks and bs must be positive".into()));
    }
    std::fs::create_dir_all(dir).map_err(|e| CliError(e.to_string()))?;
    if meta_path(dir).exists() {
        return Err(CliError(format!(
            "{} already holds a pario volume",
            dir.display()
        )));
    }
    let devs: Vec<DeviceRef> = (0..devices)
        .map(|i| {
            FileDisk::create(&device_path(dir, i), blocks, block_size)
                .map(|d| Arc::new(d) as DeviceRef)
        })
        .collect::<Result<_, _>>()?;
    Volume::new(devs)?;
    std::fs::write(
        meta_path(dir),
        format!("block_size={block_size}\ndevices={devices}\n"),
    )
    .map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "created volume: {devices} devices x {blocks} blocks x {block_size} B \
         ({:.1} MiB raw) in {}",
        (devices as u64 * blocks * block_size as u64) as f64 / (1024.0 * 1024.0),
        dir.display()
    ))
}

/// Open an existing volume directory.
pub fn open_volume(dir: &Path) -> Result<Volume, CliError> {
    let meta = std::fs::read_to_string(meta_path(dir))
        .map_err(|_| CliError(format!("{} is not a pario volume", dir.display())))?;
    let mut block_size = None;
    let mut devices = None;
    for line in meta.lines() {
        if let Some(v) = line.strip_prefix("block_size=") {
            block_size = v.trim().parse::<usize>().ok();
        }
        if let Some(v) = line.strip_prefix("devices=") {
            devices = v.trim().parse::<usize>().ok();
        }
    }
    let (bs, nd) = match (block_size, devices) {
        (Some(b), Some(d)) => (b, d),
        _ => return Err(CliError("corrupt volume.meta".into())),
    };
    let devs: Vec<DeviceRef> = (0..nd)
        .map(|i| FileDisk::open(&device_path(dir, i), bs).map(|d| Arc::new(d) as DeviceRef))
        .collect::<Result<_, _>>()?;
    Ok(Volume::mount(devs)?)
}

/// Parse an organization tag plus optional layout override, e.g.
/// `"PS:4"`, `"SS"`, `"GDA+parity:3:rotated"`, `"S+shadow"`.
pub fn parse_org_layout(
    spec: &str,
    vol: &Volume,
) -> Result<(Organization, Option<LayoutSpec>), CliError> {
    let (org_part, layout_part) = match spec.split_once('+') {
        Some((o, l)) => (o, Some(l)),
        None => (spec, None),
    };
    let org = Organization::from_tag(org_part)
        .ok_or_else(|| CliError(format!("unknown organization '{org_part}'")))?;
    let layout = match layout_part {
        None => None,
        Some(l) => {
            let parts: Vec<&str> = l.split(':').collect();
            match parts[0] {
                "parity" => {
                    let data = parts
                        .get(1)
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or(vol.num_devices().saturating_sub(1));
                    let rotated = parts.get(2) == Some(&"rotated");
                    Some(LayoutSpec::Parity {
                        data_devices: data,
                        rotated,
                    })
                }
                "shadow" => {
                    let primaries = parts
                        .get(1)
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or(vol.num_devices() / 2);
                    Some(LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                        devices: primaries,
                        unit: 1,
                    })))
                }
                "striped" => {
                    let unit = parts
                        .get(1)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or(1);
                    Some(LayoutSpec::Striped {
                        devices: vol.num_devices(),
                        unit,
                    })
                }
                other => return Err(CliError(format!("unknown layout '{other}'"))),
            }
        }
    };
    Ok((org, layout))
}

/// Create a file: `org_spec` per [`parse_org_layout`].
pub fn create(
    dir: &Path,
    name: &str,
    org_spec: &str,
    record_size: usize,
    records_per_block: usize,
    size_records: Option<u64>,
) -> CliResult {
    let vol = open_volume(dir)?;
    let (org, layout) = parse_org_layout(org_spec, &vol)?;
    let pf = match (layout, size_records, org.is_fixed_size()) {
        (Some(layout), size, _) => ParallelFile::create_with_layout(
            &vol,
            name,
            org,
            record_size,
            records_per_block,
            layout,
            if org.is_fixed_size() { size } else { None },
        )?,
        (None, Some(n), _) => {
            ParallelFile::create_sized(&vol, name, org, record_size, records_per_block, n)?
        }
        (None, None, false) => {
            ParallelFile::create(&vol, name, org, record_size, records_per_block)?
        }
        (None, None, true) => {
            return Err(CliError(format!("{org} files need --size")));
        }
    };
    vol.sync_meta()?;
    Ok(format!(
        "created '{name}': {} records of {} B ({} per block)",
        pf.len_records(),
        record_size,
        records_per_block
    ))
}

/// List the volume's files.
pub fn ls(dir: &Path) -> CliResult {
    let vol = open_volume(dir)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>5} {:>10} {:>8} {:>8}  layout",
        "name", "org", "records", "rec B", "blocks"
    );
    for name in vol.list() {
        let f = vol.open(&name)?;
        let meta = f.meta_snapshot();
        let _ = writeln!(
            out,
            "{:<20} {:>5} {:>10} {:>8} {:>8}  {:?}",
            meta.name, meta.org, meta.len_records, meta.record_size, meta.nblocks, meta.layout
        );
    }
    let free = vol.free_blocks();
    let _ = writeln!(out, "free blocks per device: {free:?}");
    Ok(out)
}

/// Fill a file with `n` deterministic records (for demos and testing).
pub fn fill(dir: &Path, name: &str, n: u64) -> CliResult {
    let vol = open_volume(dir)?;
    let pf = ParallelFile::open(&vol, name)?;
    let rs = pf.record_size();
    let mut w = pario_fs::GlobalWriter::truncate(pf.raw().clone())?;
    for i in 0..n {
        w.write_record(&record_payload(i, rs))?;
    }
    let written = w.finish()?;
    vol.sync_meta()?;
    Ok(format!("wrote {written} records to '{name}'"))
}

/// Print records `[from, from+count)` as hex through the global view.
pub fn cat(dir: &Path, name: &str, from: u64, count: u64) -> CliResult {
    let vol = open_volume(dir)?;
    let pf = ParallelFile::open(&vol, name)?;
    let mut r = pf.global_reader();
    r.seek_record(from);
    let mut rec = vec![0u8; pf.record_size()];
    let mut out = String::new();
    for i in 0..count {
        if !r.read_record(&mut rec)? {
            break;
        }
        let preview: String = rec.iter().take(16).map(|b| format!("{b:02x}")).collect();
        let _ = writeln!(out, "{:>8}  {preview}…", from + i);
    }
    Ok(out)
}

/// Copy a file into a new organization.
pub fn convert(dir: &Path, src: &str, dst: &str, org_spec: &str) -> CliResult {
    let vol = open_volume(dir)?;
    let (org, layout) = parse_org_layout(org_spec, &vol)?;
    if layout.is_some() {
        return Err(CliError(
            "convert does not take layout overrides; create + copy instead".into(),
        ));
    }
    let src_pf = ParallelFile::open(&vol, src)?;
    let dst_pf = convert_file(&vol, &src_pf, dst, org)?;
    vol.sync_meta()?;
    Ok(format!(
        "converted '{src}' -> '{dst}' ({}, {} records)",
        dst_pf.organization(),
        dst_pf.len_records()
    ))
}

/// Remove a file.
pub fn rm(dir: &Path, name: &str) -> CliResult {
    let vol = open_volume(dir)?;
    vol.remove(name)?;
    vol.sync_meta()?;
    Ok(format!("removed '{name}'"))
}

/// Scrub every parity-protected file; report torn stripes.
pub fn scrub_volume(dir: &Path) -> CliResult {
    let vol = open_volume(dir)?;
    let mut out = String::new();
    let mut checked = 0;
    for name in vol.list() {
        let f = vol.open(&name)?;
        if matches!(f.meta_snapshot().layout, LayoutSpec::Parity { .. }) {
            let bad = scrub(&f)?;
            checked += 1;
            if bad.is_empty() {
                let _ = writeln!(out, "{name}: clean");
            } else {
                let _ = writeln!(out, "{name}: {} torn stripes {bad:?}", bad.len());
            }
        }
    }
    if checked == 0 {
        let _ = writeln!(out, "no parity-protected files to scrub");
    }
    Ok(out)
}

/// Rebuild every redundant file after replacing device `device`.
pub fn rebuild(dir: &Path, device: usize) -> CliResult {
    let vol = open_volume(dir)?;
    if device >= vol.num_devices() {
        return Err(CliError(format!("no device {device}")));
    }
    let report = rebuild_device(&vol, device)?;
    let mut out = String::new();
    for (name, n) in &report.parity_rebuilt {
        let _ = writeln!(out, "{name}: {n} blocks rebuilt from parity");
    }
    for (name, n) in &report.shadow_resynced {
        let _ = writeln!(out, "{name}: {n} blocks resynced from shadow");
    }
    for name in &report.unprotected {
        let _ = writeln!(out, "{name}: UNPROTECTED — data on device {device} is lost");
    }
    for name in &report.unaffected {
        let _ = writeln!(out, "{name}: unaffected");
    }
    Ok(out)
}

/// Usage text.
pub fn usage() -> String {
    "pario — parallel file volume utility (Crockett 1989 organizations)

USAGE:
  pario mkvol   <dir> <devices> <blocks> <block_size>
  pario ls      <dir>
  pario create  <dir> <name> <org> <record_size> <records_per_block> [size]
                  org: S | PS:n | IS:n | SS | GDA | PDA:n,
                  optionally +parity[:data[:rotated]] | +shadow[:n] | +striped[:unit]
  pario fill    <dir> <name> <records>
  pario cat     <dir> <name> [from] [count]
  pario convert <dir> <src> <dst> <org>
  pario rm      <dir> <name>
  pario scrub   <dir>
  pario rebuild <dir> <device>
"
    .to_string()
}

/// Dispatch an argv-style invocation; returns the text to print.
pub fn run(args: &[String]) -> CliResult {
    let get = |i: usize| -> Result<&str, CliError> {
        args.get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError(format!("missing argument; usage:\n{}", usage())))
    };
    let parse_u64 = |s: &str| -> Result<u64, CliError> {
        s.parse::<u64>()
            .map_err(|_| CliError(format!("'{s}' is not a number")))
    };
    match args.first().map(|s| s.as_str()) {
        Some("mkvol") => mkvol(
            Path::new(get(1)?),
            parse_u64(get(2)?)? as usize,
            parse_u64(get(3)?)?,
            parse_u64(get(4)?)? as usize,
        ),
        Some("ls") => ls(Path::new(get(1)?)),
        Some("create") => create(
            Path::new(get(1)?),
            get(2)?,
            get(3)?,
            parse_u64(get(4)?)? as usize,
            parse_u64(get(5)?)? as usize,
            match args.get(6) {
                Some(s) => Some(parse_u64(s)?),
                None => None,
            },
        ),
        Some("fill") => fill(Path::new(get(1)?), get(2)?, parse_u64(get(3)?)?),
        Some("cat") => cat(
            Path::new(get(1)?),
            get(2)?,
            args.get(3).map(|s| parse_u64(s)).transpose()?.unwrap_or(0),
            args.get(4).map(|s| parse_u64(s)).transpose()?.unwrap_or(10),
        ),
        Some("convert") => convert(Path::new(get(1)?), get(2)?, get(3)?, get(4)?),
        Some("rm") => rm(Path::new(get(1)?), get(2)?),
        Some("scrub") => scrub_volume(Path::new(get(1)?)),
        Some("rebuild") => rebuild(Path::new(get(1)?), parse_u64(get(2)?)? as usize),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(CliError(format!(
            "unknown command '{other}'; usage:\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_fs::VolumeConfig;

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 6,
            device_blocks: 256,
            block_size: 512,
        })
        .unwrap()
    }

    #[test]
    fn parse_plain_orgs() {
        let v = vol();
        for (tag, procs) in [("S", None), ("SS", None), ("GDA", None), ("PS:4", Some(4))] {
            let (org, layout) = parse_org_layout(tag, &v).unwrap();
            assert_eq!(org.processes().is_some(), procs.is_some());
            assert!(layout.is_none());
        }
        assert!(parse_org_layout("XX", &v).is_err());
        assert!(parse_org_layout("PS:0", &v).is_err());
    }

    #[test]
    fn parse_layout_overrides() {
        let v = vol();
        let (_, l) = parse_org_layout("GDA+parity:3:rotated", &v).unwrap();
        assert_eq!(
            l,
            Some(LayoutSpec::Parity {
                data_devices: 3,
                rotated: true
            })
        );
        let (_, l) = parse_org_layout("GDA+parity", &v).unwrap();
        assert_eq!(
            l,
            Some(LayoutSpec::Parity {
                data_devices: 5,
                rotated: false
            })
        );
        let (_, l) = parse_org_layout("S+shadow:2", &v).unwrap();
        assert!(matches!(l, Some(LayoutSpec::Shadowed(_))));
        let (_, l) = parse_org_layout("S+striped:8", &v).unwrap();
        assert_eq!(
            l,
            Some(LayoutSpec::Striped {
                devices: 6,
                unit: 8
            })
        );
        assert!(parse_org_layout("S+weird", &v).is_err());
    }
}
