//! # pario — parallel file organizations, after Crockett (1989)
//!
//! `pario` is a workspace-level facade re-exporting every subsystem of the
//! reproduction of Thomas W. Crockett, *File Concepts for Parallel I/O*
//! (ICASE Interim Report 7 / NASA CR-181843, May 1989):
//!
//! * [`core`] — the paper's contribution: the six standard parallel file
//!   organizations (S, PS, IS, SS, GDA, PDA) with internal and global views,
//!   cross-view adapters, format conversion, and boundary replication.
//! * [`fs`] — volumes, allocation, metadata, directories, global views.
//! * [`layout`] — striped / partitioned / interleaved / declustered / parity
//!   / shadowed data placement.
//! * [`disk`] — the storage substrate: real in-memory and file-backed block
//!   devices plus a parameterised rotating-disk timing model.
//! * [`buffer`] — buffer pools, block caches, multiple buffering,
//!   read-ahead and write-behind.
//! * [`sim`] — the deterministic discrete-event engine timing experiments
//!   run on.
//! * [`server`] — the concurrent multi-client service layer: sessions,
//!   per-organization sharing semantics, bounded admission, statistics.
//! * [`reliability`] — MTBF analytics, parity reconstruction, shadowing,
//!   failure injection, consistency checking.
//! * [`workloads`] — seeded workload generators used by the experiments.
//!
//! See `README.md` for a tour and `DESIGN.md` for the experiment index.
//!
//! ## Quickstart
//!
//! ```
//! use pario::core::{Organization, ParallelFile};
//! use pario::fs::{Volume, VolumeConfig};
//!
//! // A volume over 4 in-memory devices of 1 MiB each.
//! let volume = Volume::create_in_memory(VolumeConfig {
//!     devices: 4,
//!     device_blocks: 256,
//!     block_size: 4096,
//! })
//! .unwrap();
//!
//! // A self-scheduled parallel file holding 100 records of 128 bytes.
//! let pf = ParallelFile::create(
//!     &volume,
//!     "work.queue",
//!     Organization::SelfScheduledSeq,
//!     128,
//!     32,
//! )
//! .unwrap();
//!
//! let writer = pf.self_sched_writer().unwrap();
//! for i in 0..100u32 {
//!     let rec = vec![i as u8; 128];
//!     writer.write_next(&rec).unwrap();
//! }
//! writer.finish().unwrap();
//! assert_eq!(pf.len_records(), 100);
//! ```

pub mod cli;

pub use pario_buffer as buffer;
pub use pario_core as core;
pub use pario_disk as disk;
pub use pario_fs as fs;
pub use pario_layout as layout;
pub use pario_net as net;
pub use pario_reliability as reliability;
pub use pario_server as server;
pub use pario_sim as sim;
pub use pario_workloads as workloads;
