//! `pario` — command-line utility for parallel file volumes.
//!
//! See `pario help` for usage. All logic lives in `pario::cli` so the
//! test suite exercises it directly.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pario::cli::run(&args) {
        Ok(out) => print!(
            "{out}{}",
            if out.ends_with('\n') || out.is_empty() {
                ""
            } else {
                "\n"
            }
        ),
        Err(e) => {
            eprintln!("pario: {e}");
            std::process::exit(1);
        }
    }
}
