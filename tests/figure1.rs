//! Integration: the defining invariants of Figure 1, asserted
//! programmatically (the rendered figure itself comes from
//! `exp_e1_figure1`).

use pario::core::{Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};

const RECORD: usize = 64;
const RPB: usize = 4;
const BLOCKS: u64 = 12;
const PROCS: u32 = 3;

fn volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 3,
        device_blocks: 512,
        block_size: RECORD * RPB,
    })
    .unwrap()
}

/// Which process owns each file block under each organization.
fn ownership<F: FnMut(u64) -> u32>(owner_of: F) -> Vec<u32> {
    (0..BLOCKS).map(owner_of).collect()
}

#[test]
fn figure1a_sequential_single_process() {
    // Type S: one process touches every block, in order.
    let v = volume();
    let pf = ParallelFile::create(&v, "s", Organization::Sequential, RECORD, RPB).unwrap();
    let mut w = pf.global_writer();
    for i in 0..BLOCKS * RPB as u64 {
        w.write_record(&[i as u8; RECORD]).unwrap();
    }
    w.finish().unwrap();
    let mut r = pf.global_reader();
    let mut buf = vec![0u8; RECORD];
    let mut touched_in_order = Vec::new();
    let mut idx = 0u64;
    while r.read_record(&mut buf).unwrap() {
        let fb = idx / RPB as u64;
        if touched_in_order.last() != Some(&fb) {
            touched_in_order.push(fb);
        }
        idx += 1;
    }
    assert_eq!(touched_in_order, (0..BLOCKS).collect::<Vec<_>>());
}

#[test]
fn figure1b_partitioned_contiguous_thirds() {
    let v = volume();
    let org = Organization::PartitionedSeq { partitions: PROCS };
    let pf = ParallelFile::create_sized(&v, "ps", org, RECORD, RPB, BLOCKS * RPB as u64).unwrap();
    let owners = ownership(|fb| {
        let rec = fb * RPB as u64;
        (0..PROCS)
            .find(|&p| {
                let (lo, hi) = pf.partition_record_range(p).unwrap();
                lo <= rec && rec < hi
            })
            .unwrap()
    });
    assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
}

#[test]
fn figure1c_interleaved_stride_three() {
    let v = volume();
    let org = Organization::InterleavedSeq { processes: PROCS };
    let pf = ParallelFile::create(&v, "is", org, RECORD, RPB).unwrap();
    // Each process's handle visits exactly the blocks ≡ p (mod 3).
    for p in 0..PROCS {
        let mut h = pf.interleaved_handle(p).unwrap();
        for k in 0..BLOCKS / u64::from(PROCS) {
            h.seek_block(k);
            let fb = h.current_record() / RPB as u64;
            assert_eq!(fb % u64::from(PROCS), u64::from(p));
            assert_eq!(fb, u64::from(p) + k * u64::from(PROCS));
        }
    }
}

#[test]
fn figure1d_self_scheduled_exhaustive_any_order() {
    let v = volume();
    let pf = ParallelFile::create(&v, "ss", Organization::SelfScheduledSeq, RECORD, RPB).unwrap();
    let mut w = pf.global_writer();
    for i in 0..BLOCKS * RPB as u64 {
        w.write_record(&[i as u8; RECORD]).unwrap();
    }
    w.finish().unwrap();
    // Whatever interleaving of claimers occurs, coverage is exhaustive
    // and exactly-once, and each claim returns the next record.
    let readers: Vec<_> = (0..PROCS)
        .map(|_| pf.self_sched_reader().unwrap())
        .collect();
    let mut buf = vec![0u8; RECORD];
    let mut next_expected = 0u64;
    let order = [2usize, 0, 1, 1, 2, 0, 0];
    'outer: loop {
        for &p in &order {
            match readers[p].read_next(&mut buf).unwrap() {
                Some(idx) => {
                    assert_eq!(idx, next_expected, "no record skipped");
                    assert_eq!(buf[0], idx as u8);
                    next_expected += 1;
                }
                None => break 'outer,
            }
        }
    }
    assert_eq!(next_expected, BLOCKS * RPB as u64);
}
