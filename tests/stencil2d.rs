//! Integration: a 2-D Jacobi relaxation over a row-partitioned PS file —
//! the full boundary-data workflow of the paper's §5 on a workload one
//! dimension up from E10. Each worker owns a band of rows (one record
//! per row), exchanges halo rows through the file each pass, and the
//! final grid is bit-identical to the sequential reference.

use pario::core::{read_partition_with_halo, Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};
use pario::workloads::Stencil2D;

const ROWS: usize = 64;
const COLS: usize = 16;
const RECORD: usize = COLS * 8; // one row per record (128 B)
const PARTS: u32 = 4;
const PASSES: u32 = 3;

#[test]
fn row_partitioned_2d_stencil_matches_reference() {
    let v = Volume::create_in_memory(VolumeConfig {
        devices: PARTS as usize,
        device_blocks: 2048,
        block_size: RECORD * 2, // 2 rows per volume block
    })
    .unwrap();
    let s0 = Stencil2D::random(ROWS, COLS, 77);
    let reference = s0.run(PASSES);

    let org = Organization::PartitionedSeq { partitions: PARTS };
    let pf = ParallelFile::create_sized(&v, "grid", org, RECORD, 2, ROWS as u64).unwrap();
    for p in 0..PARTS {
        let mut h = pf.partition_handle(p).unwrap();
        let (lo, hi) = h.range();
        for r in lo..hi {
            h.write_next(&s0.row_record(r as usize, RECORD)).unwrap();
        }
    }

    for _pass in 0..PASSES {
        // Read phase: every worker loads its band plus one halo row per
        // side (all reads before any writes — Jacobi semantics).
        let regions: Vec<_> = (0..PARTS)
            .map(|p| read_partition_with_halo(&pf, p, 1).unwrap())
            .collect();
        // Compute + write phase.
        for region in regions {
            let (lo, hi) = region.own_range();
            let first = region.first_record();
            let held = region.len_records();
            let row = |r: i64| -> Vec<f64> {
                let r = r.clamp(first as i64, (first + held - 1) as i64) as u64;
                Stencil2D::parse_row(region.record(r), COLS)
            };
            let p = (0..PARTS)
                .find(|&p| pf.partition_record_range(p).unwrap() == (lo, hi))
                .unwrap();
            let h = pf.partition_handle(p).unwrap();
            for r in lo..hi {
                let up = if r == 0 { row(0) } else { row(r as i64 - 1) };
                let mid = row(r as i64);
                let down = if r as usize + 1 == ROWS {
                    row(r as i64)
                } else {
                    row(r as i64 + 1)
                };
                let mut out = vec![0u8; RECORD];
                for c in 0..COLS {
                    let left = mid[c.saturating_sub(1)];
                    let right = mid[(c + 1).min(COLS - 1)];
                    let val = (mid[c] + up[c] + down[c] + left + right) / 5.0;
                    out[c * 8..(c + 1) * 8].copy_from_slice(&val.to_le_bytes());
                }
                h.write_at(r - lo, &out).unwrap();
            }
        }
    }

    // Compare the whole grid against the sequential reference.
    let mut g = pf.global_reader();
    let mut rec = vec![0u8; RECORD];
    let mut r = 0usize;
    while g.read_record(&mut rec).unwrap() {
        let row = Stencil2D::parse_row(&rec, COLS);
        for (c, &got) in row.iter().enumerate() {
            let want = reference.cells[r * COLS + c];
            assert!((got - want).abs() < 1e-9, "cell ({r},{c}): {got} vs {want}");
        }
        r += 1;
    }
    assert_eq!(r, ROWS);
}
