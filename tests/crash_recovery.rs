//! Crash/remount sweep: the volume's metadata is crash-consistent at
//! *every* write boundary.
//!
//! A deterministic create/write/sync/grow/delete workload runs over
//! fault-wrapped devices sharing one write-boundary clock. A fault-free
//! pass counts the boundaries; the sweep then replays the workload once
//! per boundary (clean fail-stop and torn variants), "loses power" at
//! that boundary, heals the media, remounts, and asserts the recovery
//! contract:
//!
//! * the mount always succeeds;
//! * the allocator, directory, and extents agree ([`audit_volume`]);
//! * acknowledged creates and removes are durable (they are intent-
//!   journaled with a flush before the call returns);
//! * every record covered by an acknowledged `sync_meta` reads back
//!   bit-exact;
//! * records written after the last sync may lose their length update,
//!   but whatever length survives, the bytes under it are the bytes
//!   that were written — never garbage from a half-applied grow.
//!
//! The in-flight operation at the crash boundary is the only "maybe":
//! it may be wholly applied, wholly absent, or (for the torn variants)
//! half-written in a way recovery must mask.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;

use pario::disk::{mem_array, BlockDevice, DeviceRef, FaultDevice, FaultPlan};
use pario::fs::{FileSpec, RawFile, Volume};
use pario::layout::LayoutSpec;
use pario::reliability::audit_volume;

const BS: usize = 256;
const NDEV: usize = 4;
const DEV_BLOCKS: u64 = 1024;
const RECORD: usize = 64;
const RECS_PER_BLOCK: usize = 4;

/// One atomic file-system call: the grain at which the crash model
/// distinguishes acknowledged from in-flight work.
#[derive(Clone, Debug, PartialEq)]
enum Step {
    Create(&'static str, LayoutSpec),
    WriteRec(&'static str, u64),
    Sync,
    Remove(&'static str),
}

/// Deterministic payload for (file, record): any survivor is checkable
/// without remembering what was written.
fn payload(name: &str, rec: u64) -> Vec<u8> {
    let tag = name.bytes().fold(rec as u8, |a, b| a.wrapping_mul(31) ^ b);
    (0..RECORD).map(|i| tag.wrapping_add(i as u8)).collect()
}

/// What the workload knows it was told succeeded.
#[derive(Clone, Default)]
struct Model {
    /// Acked records per acked-created (and not acked-removed) file.
    acked: BTreeMap<&'static str, BTreeSet<u64>>,
    /// The `acked` map as of the last acknowledged `sync_meta`.
    synced: BTreeMap<&'static str, BTreeSet<u64>>,
}

impl Model {
    fn ack(&mut self, step: &Step) {
        match step {
            Step::Create(name, _) => {
                self.acked.insert(name, BTreeSet::new());
            }
            Step::WriteRec(name, rec) => {
                self.acked
                    .get_mut(name)
                    .expect("workload writes only to created files")
                    .insert(*rec);
            }
            Step::Sync => {
                self.synced = self.acked.clone();
            }
            Step::Remove(name) => {
                self.acked.remove(name);
                self.synced.remove(name);
            }
        }
    }
}

struct RunOutcome {
    devices: Vec<DeviceRef>,
    faults: Vec<Arc<FaultDevice>>,
    model: Model,
    /// The step that observed the crash, if one fired.
    failed: Option<Step>,
    /// Write boundaries the workload crossed (on the shared clock).
    boundaries: u64,
}

fn apply(
    v: &Volume,
    handles: &mut BTreeMap<&'static str, RawFile>,
    step: &Step,
) -> pario::fs::Result<()> {
    match step {
        Step::Create(name, layout) => {
            let f = v.create_file(FileSpec::new(name, RECORD, RECS_PER_BLOCK, layout.clone()))?;
            handles.insert(name, f);
            Ok(())
        }
        Step::WriteRec(name, rec) => handles[name].write_record(*rec, &payload(name, *rec)),
        Step::Sync => v.sync_meta(),
        Step::Remove(name) => {
            handles.remove(name);
            v.remove(name)
        }
    }
}

/// Run `steps` on a fresh volume whose devices share one write clock,
/// crashing at boundary `crash_at` (if any). Formatting happens with
/// injection disarmed so boundary 0 is the workload's first write.
fn run(crash_at: Option<u64>, torn: bool, steps: &[Step]) -> RunOutcome {
    let clock = FaultDevice::write_clock();
    let mut devices = Vec::new();
    let mut faults = Vec::new();
    for base in mem_array(NDEV, DEV_BLOCKS, BS) {
        let (handle, wrapped) = FaultDevice::wrap_with_clock(
            base,
            FaultPlan {
                crash_after_writes: crash_at,
                crash_torn: torn,
                ..FaultPlan::default()
            },
            Arc::clone(&clock),
        );
        faults.push(handle);
        devices.push(wrapped);
    }
    for f in &faults {
        f.set_armed(false);
    }
    let v = Volume::new(devices.clone()).expect("format on healthy media");
    for f in &faults {
        f.set_armed(true);
    }

    let mut handles = BTreeMap::new();
    let mut model = Model::default();
    let mut failed = None;
    for step in steps {
        match apply(&v, &mut handles, step) {
            Ok(()) => model.ack(step),
            Err(_) => {
                failed = Some(step.clone());
                break;
            }
        }
    }

    for f in &faults {
        f.set_armed(false);
    }
    let boundaries = faults[0].write_boundaries();
    // Simulate the host dying with the volume: no teardown checkpoint.
    v.abandon();
    drop(handles);
    drop(v);
    RunOutcome {
        devices,
        faults,
        model,
        failed,
        boundaries,
    }
}

/// Heal the media ("reboot on the surviving platters"), remount, and
/// assert the recovery contract described in the module docs.
fn verify_recovery(r: &RunOutcome, ctx: &str) -> Volume {
    for f in &r.faults {
        f.set_armed(false);
        f.heal();
    }
    let v =
        Volume::mount(r.devices.clone()).unwrap_or_else(|e| panic!("{ctx}: remount failed: {e}"));
    let report = v.mount_report().expect("mounted volumes carry a report");

    let audit = audit_volume(&v).unwrap();
    assert!(
        audit.is_clean(),
        "{ctx}: metadata audit failed after remount (report {report:?}): {:?}",
        audit.errors
    );

    let present: BTreeSet<String> = v.list().into_iter().collect();
    // Acked creates/removes are journaled with a flush, so the surviving
    // file set equals the acked set, modulo the in-flight step.
    for name in r.model.acked.keys() {
        if !present.contains(*name) {
            assert!(
                matches!(&r.failed, Some(Step::Remove(n)) if n == name),
                "{ctx}: acked file '{name}' missing after remount (report {report:?})"
            );
        }
    }
    for p in &present {
        let explained = r.model.acked.contains_key(p.as_str())
            || matches!(&r.failed, Some(Step::Create(n, _)) if n == p)
            || matches!(&r.failed, Some(Step::Remove(n)) if n == p);
        assert!(
            explained,
            "{ctx}: unexpected file '{p}' after remount (report {report:?})"
        );
    }

    let mut buf = vec![0u8; RECORD];
    for (name, recs) in &r.model.acked {
        if !present.contains(*name) {
            continue;
        }
        let f = v.open(name).unwrap();
        let len = f.len_records();
        let synced = r.model.synced.get(name);
        for &rec in recs {
            if matches!(&r.failed, Some(Step::WriteRec(n, fr)) if n == name && *fr == rec) {
                continue; // the in-flight record's bytes are unspecified
            }
            let synced_rec = synced.is_some_and(|s| s.contains(&rec));
            if synced_rec {
                assert!(
                    rec < len,
                    "{ctx}: synced record {name}/{rec} lost \
                     (recovered length {len}, report {report:?})"
                );
            }
            if rec < len {
                f.read_record(rec, &mut buf)
                    .unwrap_or_else(|e| panic!("{ctx}: reading {name}/{rec}: {e}"));
                assert_eq!(
                    buf,
                    payload(name, rec),
                    "{ctx}: content of {name}/{rec} diverged (report {report:?})"
                );
            }
        }
    }
    v
}

fn striped() -> LayoutSpec {
    LayoutSpec::Striped {
        devices: NDEV,
        unit: 1,
    }
}

fn shadowed() -> LayoutSpec {
    LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
        devices: 2,
        unit: 1,
    }))
}

/// The sweep workload: two layouts, interleaved growth, a checkpoint
/// between phases, a delete whose blocks later grows reuse.
fn sweep_steps() -> Vec<Step> {
    use Step::*;
    let mut s = vec![Create("alpha", striped())];
    s.extend((0..8).map(|r| WriteRec("alpha", r)));
    s.push(Sync);
    s.push(Create("beta", shadowed()));
    s.extend((0..6).map(|r| WriteRec("beta", r)));
    s.extend((8..20).map(|r| WriteRec("alpha", r)));
    s.push(Sync);
    s.push(Remove("alpha"));
    s.extend((6..16).map(|r| WriteRec("beta", r)));
    s.push(Create("gamma", striped()));
    s.extend((0..6).map(|r| WriteRec("gamma", r)));
    s.push(Sync);
    s
}

/// The tentpole harness: crash at EVERY write boundary of the workload,
/// clean and torn, and demand full recovery each time.
#[test]
fn every_write_boundary_recovers() {
    let steps = sweep_steps();
    let counting = run(None, false, &steps);
    assert!(
        counting.failed.is_none(),
        "fault-free pass must complete: {:?}",
        counting.failed
    );
    let total = counting.boundaries;
    assert!(total > 20, "workload too small to be a meaningful sweep");

    for torn in [false, true] {
        for b in 0..total {
            let r = run(Some(b), torn, &steps);
            assert!(
                r.failed.is_some(),
                "crash at boundary {b} (torn={torn}) never fired"
            );
            verify_recovery(&r, &format!("boundary {b}/{total} torn={torn}"));
        }
    }
}

/// Deterministic regression: a crash *during the checkpoint itself*
/// (including tearing the slot image mid-write) must fall back to the
/// other slot and replay the journal — every record synced by the
/// previous checkpoint survives.
#[test]
fn torn_checkpoint_falls_back_to_previous_slot() {
    use Step::*;
    let mut steps = vec![Create("keep", striped())];
    steps.extend((0..10).map(|r| WriteRec("keep", r)));
    steps.push(Sync);
    steps.extend((10..14).map(|r| WriteRec("keep", r)));
    // Everything up to here, then the checkpoint under attack.
    let head = steps.clone();
    steps.push(Sync);

    let before = run(None, false, &head);
    assert!(before.failed.is_none());
    let after = run(None, false, &steps);
    assert!(after.failed.is_none());
    let (c0, c1) = (before.boundaries, after.boundaries);
    assert!(c1 > c0, "the checkpoint must write something");

    for torn in [false, true] {
        for b in c0..c1 {
            let r = run(Some(b), torn, &steps);
            assert_eq!(
                r.failed,
                Some(Sync),
                "boundary {b} (torn={torn}) must land inside the checkpoint"
            );
            let v = verify_recovery(&r, &format!("checkpoint boundary {b} torn={torn}"));
            // The fallback slot plus journal replay restores the lot:
            // "keep" is present with all 14 records' data intact.
            let f = v.open("keep").unwrap();
            let mut buf = vec![0u8; RECORD];
            for rec in 0..10 {
                f.read_record(rec, &mut buf).unwrap();
                assert_eq!(buf, payload("keep", rec), "record {rec} after fallback");
            }
        }
    }
}

/// Interpret a proptest-generated opcode tape into a valid step script
/// over three files (create-before-write, no name reuse after remove).
fn interpret(tape: &[(u8, u64)]) -> Vec<Step> {
    const NAMES: [&str; 3] = ["p", "q", "r"];
    let mut unused: Vec<&'static str> = NAMES.to_vec();
    let mut live: Vec<&'static str> = Vec::new();
    let mut steps = Vec::new();
    for &(op, x) in tape {
        match op % 4 {
            0 | 1 if live.is_empty() || (op % 4 == 0 && !unused.is_empty()) => {
                if let Some(name) = unused.pop() {
                    let layout = if x % 2 == 0 { striped() } else { shadowed() };
                    live.push(name);
                    steps.push(Step::Create(name, layout));
                }
            }
            0 | 1 => {
                let name = live[x as usize % live.len()];
                steps.push(Step::WriteRec(name, x % 24));
            }
            2 => steps.push(Step::Sync),
            _ => {
                if !live.is_empty() {
                    let name = live.remove(x as usize % live.len());
                    steps.push(Step::Remove(name));
                }
            }
        }
    }
    steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A crash at an arbitrary boundary of an arbitrary valid workload
    /// always leaves a mountable, auditable volume with every synced
    /// record intact.
    #[test]
    fn arbitrary_crash_boundary_leaves_consistent_volume(
        tape in proptest::collection::vec((any::<u8>(), any::<u64>()), 4..48),
        pick in any::<u64>(),
        torn in any::<bool>(),
    ) {
        let steps = interpret(&tape);
        // An all-remove tape degenerates to a no-op workload; skip it.
        if !steps.is_empty() {
            let counting = run(None, false, &steps);
            prop_assert!(counting.failed.is_none(), "fault-free pass failed");
            if counting.boundaries > 0 {
                let b = pick % counting.boundaries;
                let r = run(Some(b), torn, &steps);
                verify_recovery(&r, &format!("boundary {b}/{} torn={torn}", counting.boundaries));
            }
        }
    }
}
