//! Integration: every organization's internal view writes concurrently;
//! the global view (and the matching internal view) reads back exactly
//! what was written — the paper's core "standard parallel files" promise
//! that one file serves both worlds.

use pario::core::{Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};
use pario::workloads::record_payload;

const RECORD: usize = 128;
const RPB: usize = 8;

fn vol() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 2048,
        block_size: 512,
    })
    .unwrap()
}

fn check_global(pf: &ParallelFile, total: u64) {
    let mut r = pf.global_reader();
    let mut buf = vec![0u8; RECORD];
    let mut i = 0u64;
    while r.read_record(&mut buf).unwrap() {
        assert_eq!(buf, record_payload(i, RECORD), "record {i}");
        i += 1;
    }
    assert_eq!(i, total);
}

#[test]
fn sequential_stream_round_trip() {
    let v = vol();
    let pf = ParallelFile::create(&v, "s", Organization::Sequential, RECORD, RPB).unwrap();
    let mut w = pario::core::StripedWriter::create(pf.raw(), 300, 2).unwrap();
    for i in 0..300u64 {
        w.write_record(&record_payload(i, RECORD)).unwrap();
    }
    assert_eq!(w.finish().unwrap(), 300);
    check_global(&pf, 300);
    // And back through the high-rate striped reader.
    let r = pario::core::StripedReader::new(pf.raw(), 3).unwrap();
    let n = r
        .read_records(|i, bytes| assert_eq!(bytes, record_payload(i, RECORD).as_slice()))
        .unwrap();
    assert_eq!(n, 300);
}

#[test]
fn partitioned_concurrent_writers() {
    let v = vol();
    let org = Organization::PartitionedSeq { partitions: 4 };
    let pf = ParallelFile::create_sized(&v, "ps", org, RECORD, RPB, 256).unwrap();
    crossbeam::thread::scope(|s| {
        for p in 0..4 {
            let mut h = pf.partition_handle(p).unwrap();
            s.spawn(move |_| {
                let (lo, hi) = h.range();
                for g in lo..hi {
                    h.write_next(&record_payload(g, RECORD)).unwrap();
                }
            });
        }
    })
    .unwrap();
    check_global(&pf, 256);
    // Reopen by name: organization and partition map survive.
    let again = ParallelFile::open(&v, "ps").unwrap();
    assert_eq!(again.organization(), org);
    let mut h = again.partition_handle(2).unwrap();
    let (lo, _) = h.range();
    let mut buf = vec![0u8; RECORD];
    assert!(h.read_next(&mut buf).unwrap());
    assert_eq!(buf, record_payload(lo, RECORD));
}

#[test]
fn interleaved_concurrent_writers() {
    let v = vol();
    let org = Organization::InterleavedSeq { processes: 4 };
    let pf = ParallelFile::create(&v, "is", org, RECORD, 4).unwrap();
    crossbeam::thread::scope(|s| {
        for p in 0..4u32 {
            let mut h = pf.interleaved_handle(p).unwrap();
            s.spawn(move |_| {
                // 8 blocks per process, 4 records per block.
                for k in 0..8u64 {
                    let fb = u64::from(p) + k * 4;
                    for c in 0..4u64 {
                        h.write_next(&record_payload(fb * 4 + c, RECORD)).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    check_global(&pf, 128);
}

#[test]
fn self_scheduled_pipeline() {
    let v = vol();
    let pf = ParallelFile::create(&v, "ss", Organization::SelfScheduledSeq, RECORD, RPB).unwrap();
    // Producers race; consumers then drain exactly once.
    crossbeam::thread::scope(|s| {
        for _ in 0..3 {
            let w = pf.self_sched_writer().unwrap();
            s.spawn(move |_| {
                for _ in 0..40 {
                    let idx = w.write_next(&[0u8; RECORD]).unwrap();
                    // Tag the record with its own slot index so content
                    // is index-derived regardless of which writer won.
                    w.claimed(); // (exercise the accessor)
                    let _ = idx;
                }
            });
        }
    })
    .unwrap();
    let w = pf.self_sched_writer().unwrap();
    assert_eq!(w.finish().unwrap(), 120);
    // Overwrite each slot with payload(slot) via GDA-style raw access so
    // readers can verify content deterministically.
    for i in 0..120u64 {
        pf.raw()
            .write_record(i, &record_payload(i, RECORD))
            .unwrap();
    }
    let served = std::sync::Mutex::new(std::collections::HashSet::new());
    crossbeam::thread::scope(|s| {
        for _ in 0..4 {
            let r = pf.self_sched_reader().unwrap();
            let served = &served;
            s.spawn(move |_| {
                let mut buf = vec![0u8; RECORD];
                while let Some(i) = r.read_next(&mut buf).unwrap() {
                    assert_eq!(buf, record_payload(i, RECORD));
                    assert!(served.lock().unwrap().insert(i));
                }
            });
        }
    })
    .unwrap();
    assert_eq!(served.into_inner().unwrap().len(), 120);
}

#[test]
fn global_direct_random_access() {
    let v = vol();
    let pf = ParallelFile::create(&v, "gda", Organization::GlobalDirect, RECORD, RPB).unwrap();
    let h = pf.direct_handle().unwrap().with_cache(32);
    // Writes in a scrambled order.
    let mut order: Vec<u64> = (0..200).collect();
    let mut state = 12345u64;
    for i in (1..order.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    for &i in &order {
        h.write_record(i, &record_payload(i, RECORD)).unwrap();
    }
    h.flush().unwrap();
    check_global(&pf, 200);
}

#[test]
fn partitioned_direct_multiple_passes() {
    let v = vol();
    let org = Organization::PartitionedDirect { partitions: 2 };
    let pf = ParallelFile::create_sized(&v, "pda", org, RECORD, RPB, 128).unwrap();
    crossbeam::thread::scope(|s| {
        for p in 0..2 {
            let h = pf.partition_handle(p).unwrap();
            s.spawn(move |_| {
                let n = h.len();
                // Pass 1: forward writes; pass 2: backward verify+update.
                for i in 0..n {
                    let (lo, _) = h.range();
                    h.write_at(i, &record_payload(lo + i, RECORD)).unwrap();
                }
                let mut buf = vec![0u8; RECORD];
                for i in (0..n).rev() {
                    let (lo, _) = h.range();
                    h.read_at(i, &mut buf).unwrap();
                    assert_eq!(buf, record_payload(lo + i, RECORD));
                }
            });
        }
    })
    .unwrap();
    check_global(&pf, 128);
}
