//! The paper's quantitative *shapes*, asserted as tests — small, fast
//! versions of the E2/E5/E6/E7/E12 simulator experiments, so that any
//! regression in the substrate that would change the reproduction's
//! conclusions fails CI rather than silently producing different tables.

use pario::disk::SchedPolicy;
use pario::layout::{Partitioned, Striped};
use pario::sim::{DiskReq, Op, Simulation};
use pario_bench::simx::{read_reqs, windowed_script, wren_bank, wren_capacity_blocks};
use pario_bench::BS;

fn stream_makespan(devices: usize, unit: u64, blocks: u64, window: usize) -> f64 {
    let layout = Striped::new(devices, unit);
    let mut sim = Simulation::new();
    wren_bank(&mut sim, devices, SchedPolicy::Fifo);
    sim.add_proc(windowed_script(read_reqs(&layout, 0, blocks, 16), window));
    sim.run().makespan.as_secs_f64()
}

/// E2: striping a type-S stream over D drives speeds it up ~Dx.
#[test]
fn e2_shape_striping_scales() {
    let blocks = 4 * 1024 * 1024 / BS as u64; // 4 MiB
    let one = stream_makespan(1, 16, blocks, 2);
    let four = stream_makespan(4, 16, blocks, 8);
    let speedup = one / four;
    assert!(
        (3.5..4.5).contains(&speedup),
        "striping speedup at 4 drives should be ~4x, got {speedup:.2}x"
    );
}

/// E5: the PS global view is pinned to one drive — striped wins ~Dx.
#[test]
fn e5_shape_ps_global_view_serial() {
    let blocks = 4 * 1024 * 1024 / BS as u64;
    let striped = stream_makespan(4, 16, blocks, 8);
    let ps = {
        let layout = Partitioned::uniform(blocks, 4, 4);
        let mut sim = Simulation::new();
        wren_bank(&mut sim, 4, SchedPolicy::Fifo);
        sim.add_proc(windowed_script(read_reqs(&layout, 0, blocks, 16), 8));
        sim.run().makespan.as_secs_f64()
    };
    let gap = ps / striped;
    assert!(
        gap > 3.0,
        "PS global view should be ~4x slower than striped, got {gap:.2}x"
    );
}

/// E6: far-apart contiguous regions on a shared drive cost seeks that
/// local interleaving avoids.
#[test]
fn e6_shape_allocation_policy_matters() {
    let run = |interleaved: bool| -> f64 {
        let mut sim = Simulation::new();
        wren_bank(&mut sim, 1, SchedPolicy::Fifo);
        let slots = 4u64;
        let chunk = 16u64;
        // Contiguous regions spread across the platter, like separate
        // partitions of a big file.
        let region = wren_capacity_blocks() / slots;
        for slot in 0..slots {
            let ops: Vec<Op> = (0..16u64)
                .map(|k| {
                    let addr = if interleaved {
                        (k * slots + slot) * chunk
                    } else {
                        slot * region + k * chunk
                    };
                    Op::Io(vec![DiskReq::read(0, addr, chunk as u32)])
                })
                .collect();
            sim.add_proc(ops);
        }
        sim.run().makespan.as_secs_f64()
    };
    let contiguous = run(false);
    let interleaved = run(true);
    assert!(
        contiguous > interleaved * 1.2,
        "far-apart contiguous allocation should pay seeks: {contiguous:.3}s vs {interleaved:.3}s"
    );
}

/// E7: under a hot-spot, whole-block placement saturates one drive while
/// declustering balances.
#[test]
fn e7_shape_declustering_balances_hotspots() {
    let run = |declustered: bool| -> (f64, f64) {
        let layout = if declustered {
            Striped::declustered(4)
        } else {
            Striped::whole_block(4, 8)
        };
        let mut sim = Simulation::new();
        wren_bank(&mut sim, 4, SchedPolicy::Fifo);
        // 8 processes hammer file block 3 (on one drive under whole-block).
        for _ in 0..8 {
            let ops: Vec<Op> = (0..24)
                .map(|_| Op::Io(read_reqs(&layout, 3 * 8, 4 * 8, 8)))
                .collect();
            sim.add_proc(ops);
        }
        let r = sim.run();
        let busies: Vec<f64> = r.devices.iter().map(|d| d.busy.as_secs_f64()).collect();
        let mean = busies.iter().sum::<f64>() / 4.0;
        let max = busies.iter().cloned().fold(0.0, f64::max);
        (r.makespan.as_secs_f64(), max / mean)
    };
    let (wb_time, wb_imb) = run(false);
    let (dc_time, dc_imb) = run(true);
    assert!(
        wb_imb > 3.0,
        "whole-block hot spot expected, got {wb_imb:.2}"
    );
    assert!(dc_imb < 1.2, "declustering should balance, got {dc_imb:.2}");
    assert!(
        wb_time > dc_time * 1.5,
        "declustering should win under a hot spot: {wb_time:.2}s vs {dc_time:.2}s"
    );
}

/// E12: an IS cluster at or past the read-ahead budget serialises the
/// global view to one drive's rate.
#[test]
fn e12_shape_cluster_vs_budget() {
    let blocks = 4 * 1024 * 1024 / BS as u64;
    let budget_reqs = 4usize; // 4 requests x 8 blocks = 32-block budget
    let run = |cluster: u64| -> f64 {
        let layout = Striped::interleaved(4, cluster);
        let mut sim = Simulation::new();
        wren_bank(&mut sim, 4, SchedPolicy::Fifo);
        sim.add_proc(windowed_script(
            read_reqs(&layout, 0, blocks, 8),
            budget_reqs,
        ));
        sim.run().makespan.as_secs_f64()
    };
    let small = run(8); // cluster well under the budget
    let big = run(64); // cluster twice the budget
    assert!(
        big > small * 2.5,
        "oversized clusters should collapse throughput: {big:.2}s vs {small:.2}s"
    );
}
