//! Soak: one volume, every organization active at once from concurrent
//! threads — the "mix of sequential and parallel programs" environment
//! the paper's §2 assumes — followed by whole-volume verification and a
//! persistence cycle.

use pario::core::{Organization, ParallelFile};
use pario::disk::{DeviceRef, FileDisk};
use pario::fs::Volume;
use pario::workloads::record_payload;

const RECORD: usize = 128;
const RPB: usize = 4;

fn device_paths() -> Vec<std::path::PathBuf> {
    (0..4)
        .map(|i| {
            let mut p = std::env::temp_dir();
            p.push(format!("pario-soak-{}-{i}.img", std::process::id()));
            p
        })
        .collect()
}

#[test]
fn all_organizations_concurrently_on_one_volume() {
    let paths = device_paths();
    let open = |create: bool| -> Vec<DeviceRef> {
        paths
            .iter()
            .map(|p| {
                let d = if create {
                    FileDisk::create(p, 2048, 512).unwrap()
                } else {
                    FileDisk::open(p, 512).unwrap()
                };
                std::sync::Arc::new(d) as DeviceRef
            })
            .collect()
    };

    {
        let v = Volume::new(open(true)).unwrap();
        let s = ParallelFile::create(&v, "s", Organization::Sequential, RECORD, RPB).unwrap();
        let ps = ParallelFile::create_sized(
            &v,
            "ps",
            Organization::PartitionedSeq { partitions: 4 },
            RECORD,
            RPB,
            64,
        )
        .unwrap();
        let is = ParallelFile::create(
            &v,
            "is",
            Organization::InterleavedSeq { processes: 4 },
            RECORD,
            RPB,
        )
        .unwrap();
        let ss =
            ParallelFile::create(&v, "ss", Organization::SelfScheduledSeq, RECORD, RPB).unwrap();
        let gda = ParallelFile::create(&v, "gda", Organization::GlobalDirect, RECORD, RPB).unwrap();
        let pda = ParallelFile::create_sized(
            &v,
            "pda",
            Organization::PartitionedDirect { partitions: 4 },
            RECORD,
            RPB,
            64,
        )
        .unwrap();

        // Everything at once: 4 PS writers, 4 IS writers, 3 SS producers,
        // 2 GDA writers, 4 PDA writers, and an S streamer — 18 threads on
        // one volume.
        crossbeam::thread::scope(|scope| {
            for p in 0..4u32 {
                let mut h = ps.partition_handle(p).unwrap();
                scope.spawn(move |_| {
                    let (lo, hi) = h.range();
                    for g in lo..hi {
                        h.write_next(&record_payload(g, RECORD)).unwrap();
                    }
                });
                let mut h = is.interleaved_handle(p).unwrap();
                scope.spawn(move |_| {
                    for k in 0..4u64 {
                        let fb = u64::from(p) + k * 4;
                        for c in 0..RPB as u64 {
                            h.write_next(&record_payload(1000 + fb * RPB as u64 + c, RECORD))
                                .unwrap();
                        }
                    }
                });
                let h = pda.partition_handle(p).unwrap();
                scope.spawn(move |_| {
                    for i in (0..h.len()).rev() {
                        let (lo, _) = h.range();
                        h.write_at(i, &record_payload(2000 + lo + i, RECORD))
                            .unwrap();
                    }
                });
            }
            for _ in 0..3 {
                let w = ss.self_sched_writer().unwrap();
                scope.spawn(move |_| {
                    for _ in 0..10 {
                        w.write_next(&[7u8; RECORD]).unwrap();
                    }
                });
            }
            for t in 0..2u64 {
                let h = gda.direct_handle().unwrap();
                scope.spawn(move |_| {
                    for k in 0..16u64 {
                        let i = t * 16 + k;
                        h.write_record(i, &record_payload(3000 + i, RECORD))
                            .unwrap();
                    }
                });
            }
            let s_raw = s.raw().clone();
            scope.spawn(move |_| {
                let mut w = pario::fs::GlobalWriter::append(s_raw);
                for i in 0..48u64 {
                    w.write_record(&record_payload(4000 + i, RECORD)).unwrap();
                }
                w.finish().unwrap();
            });
        })
        .unwrap();
        ss.self_sched_writer().unwrap().finish().unwrap();
        v.sync_meta().unwrap();
    }

    // Remount and verify every file.
    let v = Volume::mount(open(false)).unwrap();
    assert_eq!(v.list().len(), 6);
    let check = |name: &str, base: u64, n: u64| {
        let pf = ParallelFile::open(&v, name).unwrap();
        assert_eq!(pf.len_records(), n, "{name} length");
        let mut r = pf.global_reader();
        let mut buf = vec![0u8; RECORD];
        let mut i = 0u64;
        while r.read_record(&mut buf).unwrap() {
            assert_eq!(buf, record_payload(base + i, RECORD), "{name} record {i}");
            i += 1;
        }
        assert_eq!(i, n);
    };
    check("ps", 0, 64);
    check("is", 1000, 64);
    check("pda", 2000, 64);
    check("gda", 3000, 32);
    check("s", 4000, 48);
    let ss = ParallelFile::open(&v, "ss").unwrap();
    assert_eq!(ss.len_records(), 30);

    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}
