//! Integration: the `pario` command-line utility end to end — format a
//! volume on file-backed devices, create and fill files in several
//! organizations, list, cat, convert, scrub, simulate a drive swap, and
//! rebuild.

use std::path::PathBuf;

use pario::cli;

fn tmpdir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pario-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn cleanup(p: &PathBuf) {
    let _ = std::fs::remove_dir_all(p);
}

#[test]
fn full_cli_workflow() {
    let dir = tmpdir("flow");

    // mkvol
    let out = cli::mkvol(&dir, 4, 512, 512).unwrap();
    assert!(out.contains("4 devices"), "{out}");
    // Double-format refused.
    assert!(cli::mkvol(&dir, 4, 512, 512).is_err());

    // create + fill in several organizations.
    cli::create(&dir, "stream", "S", 128, 4, None).unwrap();
    cli::create(&dir, "grid", "PS:4", 128, 4, Some(64)).unwrap();
    cli::create(&dir, "queue", "SS", 128, 4, None).unwrap();
    cli::fill(&dir, "stream", 40).unwrap();
    cli::fill(&dir, "grid", 64).unwrap();
    cli::fill(&dir, "queue", 16).unwrap();

    // ls shows all three with their organizations.
    let listing = cli::ls(&dir).unwrap();
    for needle in ["stream", "grid", "queue", "PS:4", "SS"] {
        assert!(listing.contains(needle), "missing {needle} in:\n{listing}");
    }

    // cat prints records.
    let shown = cli::cat(&dir, "grid", 2, 3).unwrap();
    assert_eq!(shown.lines().count(), 3);
    assert!(shown.contains("       2  "));

    // convert PS -> IS and re-list.
    let out = cli::convert(&dir, "grid", "grid.is", "IS:4").unwrap();
    assert!(out.contains("64 records"), "{out}");
    assert!(cli::ls(&dir).unwrap().contains("grid.is"));

    // rm removes durably.
    cli::rm(&dir, "queue").unwrap();
    assert!(!cli::ls(&dir).unwrap().contains("queue"));

    // Everything persisted: a fresh open sees the same state.
    let v = cli::open_volume(&dir).unwrap();
    assert_eq!(
        v.list(),
        vec![
            "grid".to_string(),
            "grid.is".to_string(),
            "stream".to_string()
        ]
    );

    cleanup(&dir);
}

#[test]
fn parity_scrub_and_rebuild() {
    let dir = tmpdir("parity");
    cli::mkvol(&dir, 4, 512, 512).unwrap();
    cli::create(&dir, "prot", "GDA+parity:3:rotated", 512, 1, None).unwrap();
    cli::fill(&dir, "prot", 30).unwrap();

    let out = cli::scrub_volume(&dir).unwrap();
    assert!(out.contains("prot: clean"), "{out}");

    // "Replace" device 2 with a blank image of the same shape.
    let img = dir.join("dev2.img");
    let len = std::fs::metadata(&img).unwrap().len();
    std::fs::write(&img, vec![0u8; len as usize]).unwrap();

    // The scrub sees the torn stripes…
    let out = cli::scrub_volume(&dir).unwrap();
    assert!(out.contains("torn"), "{out}");
    // …and rebuild repairs them.
    let out = cli::rebuild(&dir, 2).unwrap();
    assert!(out.contains("rebuilt from parity"), "{out}");
    let out = cli::scrub_volume(&dir).unwrap();
    assert!(out.contains("prot: clean"), "{out}");

    // Data is exact after the swap+rebuild.
    let v = cli::open_volume(&dir).unwrap();
    let pf = pario::core::ParallelFile::open(&v, "prot").unwrap();
    let mut buf = vec![0u8; 512];
    for i in 0..30u64 {
        pf.raw().read_record(i, &mut buf).unwrap();
        assert_eq!(buf, pario::workloads::record_payload(i, 512), "record {i}");
    }
    cleanup(&dir);
}

#[test]
fn run_dispatch_and_errors() {
    let dir = tmpdir("dispatch");
    let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };

    // help via no args and explicit.
    assert!(cli::run(&[]).unwrap().contains("USAGE"));
    assert!(cli::run(&s(&["help"])).unwrap().contains("mkvol"));

    // Unknown command and missing args are errors, not panics.
    assert!(cli::run(&s(&["frobnicate"])).is_err());
    assert!(cli::run(&s(&["mkvol"])).is_err());
    assert!(cli::run(&s(&["mkvol", dir.to_str().unwrap(), "x", "y", "z"])).is_err());

    // Happy path through run().
    cli::run(&s(&["mkvol", dir.to_str().unwrap(), "2", "256", "512"])).unwrap();
    cli::run(&s(&[
        "create",
        dir.to_str().unwrap(),
        "f",
        "GDA",
        "256",
        "2",
    ]))
    .unwrap();
    cli::run(&s(&["fill", dir.to_str().unwrap(), "f", "8"])).unwrap();
    let out = cli::run(&s(&["cat", dir.to_str().unwrap(), "f"])).unwrap();
    assert_eq!(out.lines().count(), 8);

    // Bad organization string.
    assert!(cli::run(&s(&[
        "create",
        dir.to_str().unwrap(),
        "g",
        "WEIRD:9",
        "256",
        "2",
    ]))
    .is_err());
    // PS without size.
    assert!(cli::run(&s(&[
        "create",
        dir.to_str().unwrap(),
        "g",
        "PS:2",
        "256",
        "2",
    ]))
    .is_err());

    cleanup(&dir);
}
