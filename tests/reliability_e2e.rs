//! Integration: end-to-end failure and recovery across the whole stack —
//! mixed files on one volume, a drive dies, degraded service continues,
//! the replacement is rebuilt, and the unprotected file is the casualty
//! the paper predicts.

use std::sync::Arc;

use pario::core::{Organization, ParallelFile};
use pario::disk::{DeviceRef, MemDisk};
use pario::fs::{FileSpec, Volume, VolumeConfig};
use pario::layout::LayoutSpec;
use pario::reliability::{rebuild_device, rebuild_parity_slot, scrub, ChecksumDevice};
use pario::workloads::record_payload;

const BS: usize = 512;

#[test]
fn volume_wide_failure_and_rebuild() {
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 6,
        device_blocks: 1024,
        block_size: BS,
    })
    .unwrap();

    // Three files with different protection levels, all touching device 1.
    let parity = ParallelFile::create_with_layout(
        &v,
        "parity.dat",
        Organization::GlobalDirect,
        BS,
        1,
        LayoutSpec::Parity {
            data_devices: 3,
            rotated: true,
        },
        None,
    )
    .unwrap();
    let shadowed = ParallelFile::create_with_layout(
        &v,
        "shadowed.dat",
        Organization::Sequential,
        BS,
        1,
        LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
            devices: 3,
            unit: 1,
        })),
        None,
    )
    .unwrap();
    let plain = ParallelFile::create(&v, "plain.dat", Organization::Sequential, BS, 1).unwrap();

    for i in 0..30u64 {
        parity
            .raw()
            .write_record(i, &record_payload(i, BS))
            .unwrap();
        shadowed
            .raw()
            .write_record(i, &record_payload(100 + i, BS))
            .unwrap();
        plain
            .raw()
            .write_record(i, &record_payload(200 + i, BS))
            .unwrap();
    }

    // Device 1 dies. Parity + shadowed files keep serving; plain loses
    // the records striped onto it.
    v.device(1).fail();
    let mut buf = vec![0u8; BS];
    for i in 0..30u64 {
        parity.raw().read_record(i, &mut buf).unwrap();
        assert_eq!(buf, record_payload(i, BS));
        shadowed.raw().read_record(i, &mut buf).unwrap();
        assert_eq!(buf, record_payload(100 + i, BS));
    }
    let lost = (0..30u64)
        .filter(|&i| plain.raw().read_record(i, &mut buf).is_err())
        .count();
    assert!(lost > 0, "the unprotected file must lose records");

    // Replace device 1 with a blank drive and rebuild the volume.
    v.device(1).heal();
    let zero = vec![0u8; BS];
    for b in 0..v.device(1).num_blocks() {
        v.device(1).write_block(b, &zero).unwrap();
    }
    let report = rebuild_device(&v, 1).unwrap();
    assert_eq!(report.parity_rebuilt.len(), 1);
    assert_eq!(report.shadow_resynced.len(), 1);
    assert_eq!(report.unprotected, vec!["plain.dat".to_string()]);

    // Everything protected is exact again, directly (no degraded paths).
    assert!(scrub(parity.raw()).unwrap().is_empty());
    for i in 0..30u64 {
        parity.raw().read_record(i, &mut buf).unwrap();
        assert_eq!(buf, record_payload(i, BS));
        shadowed.raw().read_record(i, &mut buf).unwrap();
        assert_eq!(buf, record_payload(100 + i, BS));
    }
}

#[test]
fn bit_rot_corrected_through_full_stack() {
    // Checksummed devices under a parity file: a flipped bit is detected
    // on read and healed by reconstruction + rewrite.
    let raw: Vec<Arc<MemDisk>> = (0..4)
        .map(|i| Arc::new(MemDisk::named(&format!("m{i}"), 1024, BS)))
        .collect();
    let wrapped: Vec<DeviceRef> = raw
        .iter()
        .map(|m| Arc::new(ChecksumDevice::new(Arc::clone(m) as DeviceRef)) as DeviceRef)
        .collect();
    let v = Volume::new(wrapped).unwrap();
    let f = v
        .create_file(FileSpec::new(
            "d",
            BS,
            1,
            LayoutSpec::Parity {
                data_devices: 3,
                rotated: false,
            },
        ))
        .unwrap();
    for i in 0..30u64 {
        f.write_record(i, &record_payload(i, BS)).unwrap();
    }
    // Corrupt several bits on different devices/blocks.
    let meta = f.meta_snapshot();
    for (slot, dblock, bit) in [(0usize, 1u64, 7usize), (1, 4, 1000), (2, 9, 3)] {
        let abs = pario::fs::resolve(&meta.extents[slot], dblock);
        raw[slot].corrupt_bit(abs, bit);
    }
    let mut buf = vec![0u8; BS];
    for i in 0..30u64 {
        f.read_record(i, &mut buf).unwrap();
        assert_eq!(buf, record_payload(i, BS), "record {i}");
    }
    // Scrub-and-repair heals the corrupt blocks in place.
    let repaired = pario::reliability::repair(&f).unwrap();
    assert_eq!(repaired, 3);
    assert!(scrub(&f).unwrap().is_empty());
    // Direct (non-degraded) reads now succeed everywhere.
    for i in 0..30u64 {
        f.read_record(i, &mut buf).unwrap();
        assert_eq!(buf, record_payload(i, BS), "repaired record {i}");
    }
}

#[test]
fn concurrent_writers_during_failure() {
    // Writers keep writing while a device is down; after heal+rebuild,
    // all their data is present.
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: BS,
    })
    .unwrap();
    let f = Arc::new(
        v.create_file(FileSpec::new(
            "hot",
            BS,
            1,
            LayoutSpec::Parity {
                data_devices: 3,
                rotated: true,
            },
        ))
        .unwrap(),
    );
    f.ensure_capacity_records(64).unwrap();
    v.device(2).fail();
    crossbeam::thread::scope(|s| {
        for t in 0..4u64 {
            let f = Arc::clone(&f);
            s.spawn(move |_| {
                for k in 0..16u64 {
                    let i = t * 16 + k;
                    f.write_record(i, &record_payload(i, BS)).unwrap();
                }
            });
        }
    })
    .unwrap();
    // Degraded reads see everything.
    let mut buf = vec![0u8; BS];
    for i in 0..64u64 {
        f.read_record(i, &mut buf).unwrap();
        assert_eq!(buf, record_payload(i, BS), "degraded record {i}");
    }
    // Heal, blank, rebuild, verify directly.
    v.device(2).heal();
    let zero = vec![0u8; BS];
    for b in 0..v.device(2).num_blocks() {
        v.device(2).write_block(b, &zero).unwrap();
    }
    rebuild_parity_slot(&f, 2).unwrap();
    assert!(scrub(&f).unwrap().is_empty());
    for i in 0..64u64 {
        f.read_record(i, &mut buf).unwrap();
        assert_eq!(buf, record_payload(i, BS), "rebuilt record {i}");
    }
}
