//! Integration: parallel files are *standard* files — they "outlive the
//! execution of the parallel programs which use them". A volume on
//! file-backed devices is written by one "program run", unmounted, and
//! remounted by another; organizations, partition maps, and data all
//! survive.

use std::path::PathBuf;

use pario::core::{Organization, ParallelFile};
use pario::disk::{DeviceRef, FileDisk};
use pario::fs::Volume;
use pario::workloads::record_payload;

const RECORD: usize = 128;

fn device_paths(tag: &str) -> Vec<PathBuf> {
    (0..3)
        .map(|i| {
            let mut p = std::env::temp_dir();
            p.push(format!("pario-it-{}-{tag}-{i}.img", std::process::id()));
            p
        })
        .collect()
}

fn open_devices(paths: &[PathBuf], create: bool) -> Vec<DeviceRef> {
    paths
        .iter()
        .map(|p| {
            let d = if create {
                FileDisk::create(p, 512, 512).unwrap()
            } else {
                FileDisk::open(p, 512).unwrap()
            };
            std::sync::Arc::new(d) as DeviceRef
        })
        .collect()
}

#[test]
fn full_lifecycle_across_mounts() {
    let paths = device_paths("lifecycle");

    // ---- Program run 1: create and fill two files, then unmount.
    {
        let v = Volume::new(open_devices(&paths, true)).unwrap();
        let ps = ParallelFile::create_sized(
            &v,
            "grid.ps",
            Organization::PartitionedSeq { partitions: 3 },
            RECORD,
            4,
            96,
        )
        .unwrap();
        for p in 0..3 {
            let mut h = ps.partition_handle(p).unwrap();
            let (lo, hi) = h.range();
            for g in lo..hi {
                h.write_next(&record_payload(g, RECORD)).unwrap();
            }
        }
        let ss =
            ParallelFile::create(&v, "log.ss", Organization::SelfScheduledSeq, RECORD, 4).unwrap();
        let w = ss.self_sched_writer().unwrap();
        for i in 0..20u64 {
            w.write_next(&record_payload(1000 + i, RECORD)).unwrap();
        }
        w.finish().unwrap();
        v.sync_meta().unwrap();
    }

    // ---- Program run 2: remount, verify, extend, unmount.
    {
        let v = Volume::mount(open_devices(&paths, false)).unwrap();
        assert_eq!(v.list(), vec!["grid.ps".to_string(), "log.ss".to_string()]);

        let ps = ParallelFile::open(&v, "grid.ps").unwrap();
        assert_eq!(
            ps.organization(),
            Organization::PartitionedSeq { partitions: 3 }
        );
        let mut buf = vec![0u8; RECORD];
        for g in 0..96u64 {
            ps.raw().read_record(g, &mut buf).unwrap();
            assert_eq!(buf, record_payload(g, RECORD), "record {g}");
        }

        let ss = ParallelFile::open(&v, "log.ss").unwrap();
        assert_eq!(ss.len_records(), 20);
        // Append more through the global view.
        let mut w = ss.global_writer();
        for i in 20..30u64 {
            w.write_record(&record_payload(1000 + i, RECORD)).unwrap();
        }
        w.finish().unwrap();
        v.sync_meta().unwrap();
    }

    // ---- Program run 3 (a sequential tool): read everything globally.
    {
        let v = Volume::mount(open_devices(&paths, false)).unwrap();
        let ss = ParallelFile::open(&v, "log.ss").unwrap();
        assert_eq!(ss.len_records(), 30);
        let mut r = ss.global_reader();
        let mut buf = vec![0u8; RECORD];
        let mut i = 0u64;
        while r.read_record(&mut buf).unwrap() {
            assert_eq!(buf, record_payload(1000 + i, RECORD));
            i += 1;
        }
        assert_eq!(i, 30);
        // Remove a file and persist that too.
        v.remove("grid.ps").unwrap();
        v.sync_meta().unwrap();
    }
    {
        let v = Volume::mount(open_devices(&paths, false)).unwrap();
        assert_eq!(v.list(), vec!["log.ss".to_string()]);
    }

    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn mount_refuses_mismatched_block_size() {
    let paths = device_paths("badbs");
    {
        Volume::new(open_devices(&paths, true)).unwrap();
    }
    // Reopen with a different (but dividing) block size: the superblock
    // must reject the mismatch.
    let devs: Vec<DeviceRef> = paths
        .iter()
        .map(|p| std::sync::Arc::new(FileDisk::open(p, 256).unwrap()) as DeviceRef)
        .collect();
    assert!(Volume::mount(devs).is_err());
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}
