//! Integration: the paper's three answers to internal-view mismatch all
//! preserve content — adapters, global views, and conversion utilities —
//! across every pair of organizations.

use pario::core::{convert, convert_parallel, views, Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};
use pario::workloads::record_payload;

const RECORD: usize = 128;
const RPB: usize = 4;
const TOTAL: u64 = 96;

fn vol() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 4096,
        block_size: 512,
    })
    .unwrap()
}

fn make(v: &Volume, name: &str, org: Organization) -> ParallelFile {
    let pf = ParallelFile::create_sized(v, name, org, RECORD, RPB, TOTAL).unwrap();
    let mut w = pario::fs::GlobalWriter::truncate(pf.raw().clone()).unwrap();
    for i in 0..TOTAL {
        w.write_record(&record_payload(i, RECORD)).unwrap();
    }
    w.finish().unwrap();
    pf
}

fn all_orgs() -> Vec<Organization> {
    vec![
        Organization::Sequential,
        Organization::PartitionedSeq { partitions: 3 },
        Organization::InterleavedSeq { processes: 3 },
        Organization::SelfScheduledSeq,
        Organization::GlobalDirect,
        Organization::PartitionedDirect { partitions: 3 },
    ]
}

#[test]
fn convert_every_pair() {
    let v = vol();
    for (i, src_org) in all_orgs().into_iter().enumerate() {
        let src = make(&v, &format!("src{i}"), src_org);
        for (j, dst_org) in all_orgs().into_iter().enumerate() {
            let name = format!("dst{i}-{j}");
            let dst = convert(&v, &src, &name, dst_org).unwrap();
            assert_eq!(dst.organization(), dst_org);
            assert_eq!(dst.len_records(), TOTAL);
            let mut r = dst.global_reader();
            let mut buf = vec![0u8; RECORD];
            let mut k = 0u64;
            while r.read_record(&mut buf).unwrap() {
                assert_eq!(
                    buf,
                    record_payload(k, RECORD),
                    "{src_org}->{dst_org} rec {k}"
                );
                k += 1;
            }
            assert_eq!(k, TOTAL);
            v.remove(&name).unwrap();
        }
        v.remove(&format!("src{i}")).unwrap();
    }
}

#[test]
fn parallel_conversion_equals_sequential() {
    let v = vol();
    let src = make(&v, "src", Organization::PartitionedSeq { partitions: 3 });
    let a = convert(&v, &src, "a", Organization::InterleavedSeq { processes: 4 }).unwrap();
    let b = convert_parallel(
        &v,
        &src,
        "b",
        Organization::InterleavedSeq { processes: 4 },
        4,
    )
    .unwrap();
    let mut ra = a.global_reader();
    let mut rb = b.global_reader();
    let mut ba = vec![0u8; RECORD];
    let mut bb = vec![0u8; RECORD];
    loop {
        let xa = ra.read_record(&mut ba).unwrap();
        let xb = rb.read_record(&mut bb).unwrap();
        assert_eq!(xa, xb);
        if !xa {
            break;
        }
        assert_eq!(ba, bb);
    }
}

#[test]
fn forced_views_cover_everything_once() {
    let v = vol();
    // A PS file consumed through forced IS views and vice versa.
    let ps = make(&v, "ps", Organization::PartitionedSeq { partitions: 3 });
    let mut seen = vec![false; TOTAL as usize];
    for p in 0..4 {
        let mut h = views::force_interleaved(&ps, p, 4).unwrap();
        let mut buf = vec![0u8; RECORD];
        loop {
            let idx = h.current_record();
            if !h.read_next(&mut buf).unwrap() {
                break;
            }
            assert_eq!(buf, record_payload(idx, RECORD));
            assert!(!std::mem::replace(&mut seen[idx as usize], true));
        }
    }
    assert!(seen.iter().all(|&s| s));

    let is = make(&v, "is", Organization::InterleavedSeq { processes: 4 });
    let mut count = 0u64;
    for p in 0..3 {
        let mut h = views::force_partition(&is, p, 3).unwrap();
        let (lo, _) = h.range();
        let mut buf = vec![0u8; RECORD];
        let mut local = 0u64;
        while h.read_next(&mut buf).unwrap() {
            assert_eq!(buf, record_payload(lo + local, RECORD));
            local += 1;
            count += 1;
        }
    }
    assert_eq!(count, TOTAL);
}

#[test]
fn conversion_chain_is_lossless() {
    // S -> PS -> IS -> GDA -> SS -> PDA -> S: content unchanged.
    let v = vol();
    let mut cur = make(&v, "chain0", Organization::Sequential);
    let chain = [
        Organization::PartitionedSeq { partitions: 2 },
        Organization::InterleavedSeq { processes: 4 },
        Organization::GlobalDirect,
        Organization::SelfScheduledSeq,
        Organization::PartitionedDirect { partitions: 4 },
        Organization::Sequential,
    ];
    for (i, org) in chain.into_iter().enumerate() {
        cur = convert(&v, &cur, &format!("chain{}", i + 1), org).unwrap();
    }
    let mut r = cur.global_reader();
    let mut buf = vec![0u8; RECORD];
    let mut k = 0u64;
    while r.read_record(&mut buf).unwrap() {
        assert_eq!(buf, record_payload(k, RECORD));
        k += 1;
    }
    assert_eq!(k, TOTAL);
}
