//! Integration: an entire volume operated behind dedicated I/O
//! processors (one node thread per drive, the paper's §4 suggestion) —
//! every organization works unchanged, and the node queues observe the
//! traffic.

use pario::core::{Organization, ParallelFile};
use pario::disk::{mem_array, IoNode};
use pario::fs::Volume;
use pario::workloads::record_payload;

#[test]
fn full_stack_behind_io_processors() {
    let (nodes, handles) = IoNode::spawn_bank(mem_array(4, 1024, 512));
    let v = Volume::new(handles).unwrap();

    // A self-scheduled file written by racing threads, all I/O flowing
    // through the node threads.
    let pf = ParallelFile::create(&v, "q", Organization::SelfScheduledSeq, 128, 4).unwrap();
    crossbeam::thread::scope(|s| {
        for _ in 0..4 {
            let w = pf.self_sched_writer().unwrap();
            s.spawn(move |_| {
                for _ in 0..30 {
                    let idx = w.write_next(&[0u8; 128]).unwrap();
                    let _ = idx;
                }
            });
        }
    })
    .unwrap();
    pf.self_sched_writer().unwrap().finish().unwrap();
    assert_eq!(pf.len_records(), 120);
    for i in 0..120u64 {
        pf.raw().write_record(i, &record_payload(i, 128)).unwrap();
    }

    // Read back through the global view.
    let mut r = pf.global_reader();
    let mut buf = vec![0u8; 128];
    let mut i = 0u64;
    while r.read_record(&mut buf).unwrap() {
        assert_eq!(buf, record_payload(i, 128));
        i += 1;
    }
    assert_eq!(i, 120);

    // Every node serviced traffic; queues drained.
    for (d, node) in nodes.iter().enumerate() {
        let s = node.stats();
        assert!(s.serviced > 0, "node {d} idle");
        assert_eq!(s.in_flight, 0, "node {d} queue not drained");
    }
}
