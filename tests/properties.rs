//! Cross-crate property tests: for arbitrary geometries, data, and
//! organizations, what goes in through any internal view comes out
//! through the global view, byte for byte.

use proptest::prelude::*;

use pario::core::{Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};
use pario::layout::LayoutSpec;

const BS: usize = 256;

fn vol(devices: usize) -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices,
        device_blocks: 2048,
        block_size: BS,
    })
    .unwrap()
}

fn payload(seed: u64, i: u64, size: usize) -> Vec<u8> {
    (0..size)
        .map(|j| {
            (seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(i * 131 + j as u64)
                % 251) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any aligned geometry, any organization: global write -> global
    /// read round trip.
    #[test]
    fn global_round_trip(
        seed in 0u64..1000,
        rpb_pow in 0u32..3,
        rec_pow in 0u32..3,
        n in 1u64..120,
        org_idx in 0usize..6,
        devices in 1usize..5,
    ) {
        // record_size * rpb must be a multiple of BS for PS/PDA/IS.
        let record = BS >> rec_pow;          // 256, 128, 64
        let rpb = (1usize << rec_pow) << rpb_pow; // keeps product >= BS
        let orgs = [
            Organization::Sequential,
            Organization::PartitionedSeq { partitions: 3 },
            Organization::InterleavedSeq { processes: 3 },
            Organization::SelfScheduledSeq,
            Organization::GlobalDirect,
            Organization::PartitionedDirect { partitions: 3 },
        ];
        let org = orgs[org_idx];
        let v = vol(devices);
        let pf = ParallelFile::create_sized(&v, "f", org, record, rpb, n).unwrap();
        let mut w = pario::fs::GlobalWriter::truncate(pf.raw().clone()).unwrap();
        for i in 0..n {
            w.write_record(&payload(seed, i, record)).unwrap();
        }
        prop_assert_eq!(w.finish().unwrap(), n);
        let mut r = pf.global_reader();
        let mut buf = vec![0u8; record];
        let mut i = 0u64;
        while r.read_record(&mut buf).unwrap() {
            prop_assert_eq!(&buf, &payload(seed, i, record), "record {}", i);
            i += 1;
        }
        prop_assert_eq!(i, n);
    }

    /// Random single-record writes through a GDA handle (cached or not)
    /// agree with a shadow model.
    #[test]
    fn gda_matches_shadow_model(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0u64..64, 0u64..1000), 1..80),
        cached in proptest::bool::ANY,
    ) {
        let v = vol(4);
        let pf = ParallelFile::create(&v, "g", Organization::GlobalDirect, 96, 8).unwrap();
        let h = if cached {
            pf.direct_handle().unwrap().with_cache(8)
        } else {
            pf.direct_handle().unwrap()
        };
        let mut model: std::collections::HashMap<u64, Vec<u8>> = Default::default();
        for &(slot, tag) in &ops {
            let data = payload(seed, tag, 96);
            h.write_record(slot, &data).unwrap();
            model.insert(slot, data);
        }
        let mut buf = vec![0u8; 96];
        for (&slot, data) in &model {
            h.read_record(slot, &mut buf).unwrap();
            prop_assert_eq!(&buf, data, "slot {}", slot);
        }
        // After flush the uncached view agrees too.
        h.flush().unwrap();
        let h2 = pf.direct_handle().unwrap();
        for (&slot, data) in &model {
            h2.read_record(slot, &mut buf).unwrap();
            prop_assert_eq!(&buf, data, "flushed slot {}", slot);
        }
    }

    /// Parity-protected files reconstruct exactly under any single
    /// device failure, for arbitrary data.
    #[test]
    fn parity_single_failure_lossless(
        seed in 0u64..1000,
        n in 1u64..60,
        dead in 0usize..4,
        rotated in proptest::bool::ANY,
    ) {
        let v = vol(4);
        let f = v.create_file(pario::fs::FileSpec::new(
            "p",
            BS,
            1,
            LayoutSpec::Parity { data_devices: 3, rotated },
        )).unwrap();
        for i in 0..n {
            f.write_record(i, &payload(seed, i, BS)).unwrap();
        }
        v.device(dead).fail();
        let mut buf = vec![0u8; BS];
        for i in 0..n {
            f.read_record(i, &mut buf).unwrap();
            prop_assert_eq!(&buf, &payload(seed, i, BS), "record {}", i);
        }
    }

    /// The allocator + layout stack never aliases: two files on one
    /// volume never disturb each other.
    #[test]
    fn files_are_isolated(
        seed in 0u64..1000,
        na in 1u64..60,
        nb in 1u64..60,
        unit_a in 1u64..4,
        unit_b in 1u64..4,
    ) {
        let v = vol(3);
        let a = v.create_file(pario::fs::FileSpec::new(
            "a", BS, 1, LayoutSpec::Striped { devices: 3, unit: unit_a },
        )).unwrap();
        let b = v.create_file(pario::fs::FileSpec::new(
            "b", BS, 1, LayoutSpec::Striped { devices: 3, unit: unit_b },
        )).unwrap();
        // Interleaved writes to both files.
        for i in 0..na.max(nb) {
            if i < na { a.write_record(i, &payload(seed, i, BS)).unwrap(); }
            if i < nb { b.write_record(i, &payload(seed + 1, i, BS)).unwrap(); }
        }
        let mut buf = vec![0u8; BS];
        for i in 0..na {
            a.read_record(i, &mut buf).unwrap();
            prop_assert_eq!(&buf, &payload(seed, i, BS));
        }
        for i in 0..nb {
            b.read_record(i, &mut buf).unwrap();
            prop_assert_eq!(&buf, &payload(seed + 1, i, BS));
        }
    }
}
