//! Markdown-ish table rendering and JSON result persistence.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned table accumulated row by row.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "column count");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned pipes.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            out.push('|');
            for i in 0..ncols {
                let _ = write!(out, " {:>w$} |", cells[i], w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serialise as a JSON array of objects keyed by header.
    pub fn to_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let map: serde_json::Map<String, serde_json::Value> = self
                    .headers
                    .iter()
                    .zip(row)
                    .map(|(h, c)| (h.clone(), serde_json::Value::String(c.clone())))
                    .collect();
                serde_json::Value::Object(map)
            })
            .collect();
        serde_json::Value::Array(rows)
    }
}

/// Persist a table (best-effort) under `results/<name>.json` relative to
/// the working directory; prints a note on success, stays silent when the
/// directory does not exist.
pub fn save_json(name: &str, table: &Table) {
    let dir = Path::new("results");
    if !dir.is_dir() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(&table.to_json()) {
        if std::fs::write(&path, s).is_ok() {
            println!("(saved {})", path.display());
        }
    }
}

/// A flat benchmark summary accumulated key by key, persisted as
/// `BENCH_<name>.json` in the working directory — the repo root when
/// run through `run_experiments.sh` or CI. Unlike the `results/` tables
/// these are machine-readable objects for regression tracking.
#[derive(Default)]
pub struct Bench {
    map: serde_json::Map<String, serde_json::Value>,
}

impl Bench {
    /// An empty summary.
    pub fn new() -> Bench {
        Bench::default()
    }

    /// Record a floating-point metric.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Bench {
        self.map.insert(
            key.to_string(),
            serde_json::Value::Number(serde_json::Number::F64(v)),
        );
        self
    }

    /// Record an integer metric.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Bench {
        self.map.insert(
            key.to_string(),
            serde_json::Value::Number(serde_json::Number::U64(v)),
        );
        self
    }

    /// Record a string field.
    pub fn label(&mut self, key: &str, v: &str) -> &mut Bench {
        self.map
            .insert(key.to_string(), serde_json::Value::String(v.to_string()));
        self
    }

    /// The exact JSON text [`Bench::save`] writes. Exposed so tools
    /// that consume these summaries (`xtask bench-diff`) can be tested
    /// against the real emitter rather than a hand-written imitation.
    pub fn json(&self) -> String {
        let value = serde_json::Value::Object(self.map.clone());
        serde_json::to_string_pretty(&value)
            .expect("a flat map of numbers and strings always serializes")
    }

    /// Persist (best-effort) as `BENCH_<name>.json`.
    pub fn save(&self, name: &str) {
        let path = format!("BENCH_{name}.json");
        if std::fs::write(&path, self.json()).is_ok() {
            println!("(saved {path})");
        }
    }
}

/// Format a byte rate human-readably.
pub fn rate(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e6 {
        format!("{:.2} MB/s", bytes_per_sec / 1e6)
    } else if bytes_per_sec >= 1e3 {
        format!("{:.1} KB/s", bytes_per_sec / 1e3)
    } else {
        format!("{bytes_per_sec:.0} B/s")
    }
}

/// Format seconds human-readably.
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "x".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert_eq!(lines[1].matches('|').count(), 3);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn json_shape() {
        let mut t = Table::new(&["k"]);
        t.row(&["v".into()]);
        let j = t.to_json();
        assert_eq!(j[0]["k"], "v");
    }

    #[test]
    fn formatters() {
        assert_eq!(rate(2_500_000.0), "2.50 MB/s");
        assert_eq!(rate(1_500.0), "1.5 KB/s");
        assert_eq!(rate(10.0), "10 B/s");
        assert_eq!(secs(2.5), "2.500 s");
        assert_eq!(secs(0.002), "2.000 ms");
        assert_eq!(secs(0.0000005), "0.5 us");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }
}
