//! E9 — §5: "a serious mismatch occurs … if a file created with a PS
//! organization needs to be read later with an IS format. One
//! alternative would be … a software interface to present the alternate
//! view when needed, but with degraded performance. A related idea would
//! be to force either the creator or the consumer to use the global view
//! instead … A third possibility is to supply conversion utilities to
//! copy from one format to the other, but this could be expensive for
//! large files. Each of these solutions could be useful, depending on
//! the situation."
//!
//! All three strategies are priced on the simulator for a 64 MiB PS file
//! consumed by 4 IS processes, including the pass-count crossover that
//! decides among them.

use pario_bench::simx::{read_reqs, windowed_script, wren_bank};
use pario_bench::table::{save_json, secs, Table};
use pario_bench::{banner, BS};
use pario_disk::SchedPolicy;
use pario_layout::{Partitioned, Striped};
use pario_sim::{DiskReq, Op, ReqKind, Simulation};

const FILE_BYTES: u64 = 64 * 1024 * 1024;
const PROCS: usize = 4;
const DEVICES: usize = 4;
const FB: u64 = 8; // one 32 KiB file block = 8 volume blocks

fn blocks() -> u64 {
    FILE_BYTES / BS as u64
}

/// (a) Adapter: IS access pattern forced over the PS placement. All four
/// processes sweep the partitions *together*, block by strided block.
fn adapter_pass() -> f64 {
    let ps = Partitioned::uniform(blocks(), PROCS, DEVICES);
    let mut sim = Simulation::new();
    wren_bank(&mut sim, DEVICES, SchedPolicy::Fifo);
    let file_blocks = blocks() / FB;
    for p in 0..PROCS as u64 {
        let mut ops = Vec::new();
        let mut fb = p;
        while fb < file_blocks {
            ops.push(Op::Io(read_reqs(&ps, fb * FB, (fb + 1) * FB, FB)));
            fb += PROCS as u64;
        }
        sim.add_proc(ops);
    }
    sim.run().makespan.as_secs_f64()
}

/// (b) Global view: one sequential reader over the PS placement.
fn global_pass() -> f64 {
    let ps = Partitioned::uniform(blocks(), PROCS, DEVICES);
    let mut sim = Simulation::new();
    wren_bank(&mut sim, DEVICES, SchedPolicy::Fifo);
    sim.add_proc(windowed_script(read_reqs(&ps, 0, blocks(), 16), 8));
    sim.run().makespan.as_secs_f64()
}

/// (c1) Conversion: read the PS file globally while writing the IS copy
/// (interleaved placement at a disjoint device region), overlapped.
fn convert_cost() -> f64 {
    let ps = Partitioned::uniform(blocks(), PROCS, DEVICES);
    let is = Striped::interleaved(DEVICES, FB);
    let base = blocks(); // IS copy lives above the PS file on each drive
    let mut sim = Simulation::new();
    wren_bank(&mut sim, DEVICES, SchedPolicy::Fifo);
    let mut ops = Vec::new();
    let window = 16u64;
    let mut l = 0;
    while l < blocks() {
        let hi = (l + window).min(blocks());
        let mut batch = read_reqs(&ps, l, hi, 16);
        for r in read_reqs(&is, l, hi, 16) {
            batch.push(DiskReq {
                device: r.device,
                block: r.block + base / DEVICES as u64,
                nblocks: r.nblocks,
                kind: ReqKind::Write,
            });
        }
        ops.push(Op::IoAsync(batch));
        ops.push(Op::WaitAll);
        l = hi;
    }
    sim.add_proc(ops);
    sim.run().makespan.as_secs_f64()
}

/// (c2) A native IS pass after conversion: each process streams its own
/// clusters from its own drive.
fn native_is_pass() -> f64 {
    let is = Striped::interleaved(DEVICES, FB);
    let mut sim = Simulation::new();
    wren_bank(&mut sim, DEVICES, SchedPolicy::Fifo);
    let file_blocks = blocks() / FB;
    for p in 0..PROCS as u64 {
        let mut reqs = Vec::new();
        let mut fb = p;
        while fb < file_blocks {
            reqs.extend(read_reqs(&is, fb * FB, (fb + 1) * FB, FB));
            fb += PROCS as u64;
        }
        sim.add_proc(windowed_script(reqs, 2));
    }
    sim.run().makespan.as_secs_f64()
}

fn main() {
    banner(
        "E9 (internal-view mismatch: PS file read as IS)",
        "adapter view = degraded performance; global view = serial; \
         conversion = expensive once, fast thereafter",
    );
    let adapter = adapter_pass();
    let global = global_pass();
    let convert = convert_cost();
    let native = native_is_pass();

    let mut t = Table::new(&["strategy", "first pass", "each later pass"]);
    t.row(&[
        "(a) adapter IS-over-PS".into(),
        secs(adapter),
        secs(adapter),
    ]);
    t.row(&[
        "(b) global view (1 reader)".into(),
        secs(global),
        secs(global),
    ]);
    t.row(&[
        "(c) convert, then native IS".into(),
        secs(convert + native),
        secs(native),
    ]);
    t.print();
    save_json("e9_view_mismatch", &t);

    println!("\nTotal cost by number of passes over the data:");
    let mut t = Table::new(&["passes", "adapter", "global", "convert+native", "best"]);
    for k in 1..=5u32 {
        let a = adapter * f64::from(k);
        let g = global * f64::from(k);
        let c = convert + native * f64::from(k);
        let best = if a <= g && a <= c {
            "adapter"
        } else if c <= a && c <= g {
            "convert"
        } else {
            "global"
        };
        t.row(&[k.to_string(), secs(a), secs(g), secs(c), best.to_string()]);
    }
    t.print();
    save_json("e9_crossover", &t);
    println!(
        "\nShape: the adapter's strided sweep gangs all processes onto \
         one partition's drive at a time, degrading it toward the serial \
         global view; conversion pays a one-time copy and then runs at \
         device-per-process speed, winning once the data is read more \
         than a couple of times — 'the conversion overhead must be \
         weighed against the performance improvements'."
    );
}
