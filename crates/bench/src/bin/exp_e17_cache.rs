//! E17 — the volume-wide shared buffer cache tier.
//!
//! The paper (§4) ranks buffering software "just as important as the
//! layout of data on disks". Two claims about the [`VolumeCache`] tier
//! in front of the executor bank:
//!
//! 1. **Hot reuse across sessions.** Eight server sessions hammer a hot
//!    working set of GDA records on delay-modelled devices. With the
//!    shared cache tier the second and later touches of a block are
//!    frame copies instead of device requests; aggregate throughput
//!    must be at least 2x the uncached volume, with the hit ratio and
//!    the p50/p99 client latencies reported from the server histogram.
//! 2. **Spill keeps writers unblocked.** A producer dirties far more
//!    blocks than the frame budget on a slow home device. Without a
//!    scratch device every eviction waits out a home writeback; with
//!    one, overflow goes to fast scratch and the producer finishes in a
//!    fraction of the time. A final flush lands every byte regardless.
//!
//! Results land in `results/e17_cache.json` and the flat benchmark
//! summary in `BENCH_e17_cache.json` at the repo root.
//!
//! [`VolumeCache`]: pario_fs::VolumeCache

use std::sync::Arc;
use std::time::{Duration, Instant};

use pario_bench::table::{save_json, Bench, Table};
use pario_bench::{banner, BS};
use pario_core::{Organization, ParallelFile};
use pario_disk::{DeviceRef, MemDisk};
use pario_fs::{Volume, VolumeCacheConfig};
use pario_server::{quantile_nanos, Saturation, Server, ServerConfig, ServerStats};

/// Modelled device service time: large enough that the device sleeps
/// (workers genuinely overlap) and a frame copy is decisively cheaper.
const DELAY: Duration = Duration::from_micros(300);
const SESSIONS: usize = 8;
/// Hot working set, in one-block records; sized well under the frame
/// budget so steady state is all hits.
const HOT_RECORDS: u64 = 48;
const READS_PER_SESSION: usize = 300;
const FRAMES: usize = 96;

fn delayed_devices(n: usize) -> Vec<DeviceRef> {
    (0..n)
        .map(|i| {
            Arc::new(MemDisk::named(&format!("mem{i}"), 2048, BS).with_delay(DELAY)) as DeviceRef
        })
        .collect()
}

/// Eight sessions read the hot set in deterministic pseudo-random order
/// through the server; returns (elapsed seconds, server stats).
fn hot_read_lane(server: &Server) -> (f64, ServerStats) {
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for c in 0..SESSIONS {
            let sess = server.connect();
            s.spawn(move |_| {
                let g = sess.open_direct("hot").unwrap();
                let mut buf = vec![0u8; BS];
                let mut x = c as u64 * 0x9E37_79B9 + 1;
                for _ in 0..READS_PER_SESSION {
                    // xorshift over the hot set: every session walks its
                    // own order, all touching the same records.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let r = x % HOT_RECORDS;
                    g.read_record(r, &mut buf).unwrap();
                    assert_eq!(buf[0], (r % 251) as u8, "torn record {r}");
                }
            });
        }
    })
    .unwrap();
    (t0.elapsed().as_secs_f64(), server.stats())
}

/// Build the hot-set server; `cached` attaches the volume cache tier.
fn hot_server(cached: bool) -> Server {
    let volume = Volume::new(delayed_devices(4)).unwrap();
    let volume = if cached {
        volume
            .enable_cache(VolumeCacheConfig::write_back(FRAMES))
            .unwrap()
    } else {
        volume
    };
    let pf = ParallelFile::create(&volume, "hot", Organization::GlobalDirect, BS, 1).unwrap();
    let h = pf.direct_handle().unwrap();
    for r in 0..HOT_RECORDS {
        h.write_record(r, &[(r % 251) as u8; BS]).unwrap();
    }
    Server::new(
        volume,
        ServerConfig {
            max_in_flight: SESSIONS,
            saturation: Saturation::Block,
            ..ServerConfig::default()
        },
    )
}

fn fmt_quantile(stats: &ServerStats, q: f64) -> String {
    match quantile_nanos(&stats.latency, q) {
        Some(ns) => format!("{:.0}us", ns as f64 / 1e3),
        None => "-".to_string(),
    }
}

/// Dirty `blocks` distinct blocks through the raw span path; returns
/// elapsed producer seconds (flush excluded — that is the point).
fn spill_producer(volume: &Volume, blocks: u64) -> f64 {
    let pf = ParallelFile::create(volume, "burst", Organization::GlobalDirect, BS, 1).unwrap();
    let raw = pf.raw().clone();
    raw.ensure_capacity_records(blocks).unwrap();
    let data = vec![7u8; BS];
    let t0 = Instant::now();
    for b in 0..blocks {
        raw.write_span(b * BS as u64, &data).unwrap();
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    banner(
        "E17: volume-wide shared buffer cache (hot reuse, coalescing, spill)",
        "a shared buffer tier in front of the I/O processors turns \
         cross-session hot reuse into frame copies and keeps unbounded \
         writers off the critical path by spilling overflow to scratch",
    );

    // -- Hot-reuse lane --------------------------------------------------
    let uncached = hot_server(false);
    let (base_secs, base_stats) = hot_read_lane(&uncached);
    let cached = hot_server(true);
    let (hot_secs, hot_stats) = hot_read_lane(&cached);
    let speedup = base_secs / hot_secs;
    let cache = cached.volume().cache_stats().expect("cache enabled");
    let total_ops = (SESSIONS * READS_PER_SESSION) as f64;

    let mut t = Table::new(&["lane", "elapsed", "ops/s", "p50", "p99", "hit ratio"]);
    t.row(&[
        "uncached".into(),
        format!("{:.1}ms", base_secs * 1e3),
        format!("{:.0}", total_ops / base_secs),
        fmt_quantile(&base_stats, 0.5),
        fmt_quantile(&base_stats, 0.99),
        "-".into(),
    ]);
    t.row(&[
        "volume cache".into(),
        format!("{:.1}ms", hot_secs * 1e3),
        format!("{:.0}", total_ops / hot_secs),
        fmt_quantile(&hot_stats, 0.5),
        fmt_quantile(&hot_stats, 0.99),
        format!("{:.3}", cache.hit_ratio()),
    ]);

    // -- Spill lane ------------------------------------------------------
    const BURST: u64 = 128;
    const BUDGET: usize = 8;
    let home_only = Volume::new(delayed_devices(1))
        .unwrap()
        .enable_cache(VolumeCacheConfig::write_back(BUDGET))
        .unwrap();
    let blocked_secs = spill_producer(&home_only, BURST);

    let scratch: DeviceRef = Arc::new(MemDisk::named("scratch", 2048, BS));
    let spilling = Volume::new(delayed_devices(1))
        .unwrap()
        .enable_cache(VolumeCacheConfig::write_back(BUDGET).with_spill(scratch))
        .unwrap();
    let spill_secs = spill_producer(&spilling, BURST);
    let spill_stats = spilling.cache_stats().expect("cache enabled");
    spilling.flush_cache().unwrap();
    let spill_win = blocked_secs / spill_secs;

    // -- Coalescing lane -------------------------------------------------
    // The no-spill volume evicted all but its 8 frames during the burst;
    // a cold sequential scan therefore misses on long contiguous runs,
    // which the cache must fold into vectored submits instead of
    // per-block device requests.
    let burst_file = home_only.open("burst").unwrap();
    let mut scan = vec![0u8; BURST as usize * BS];
    burst_file.read_span(0, &mut scan).unwrap();
    assert!(scan.iter().all(|&b| b == 7), "burst scan torn");
    let coalesced = home_only
        .cache_stats()
        .expect("cache enabled")
        .coalesced_reads;

    t.row(&[
        format!("burst, no spill ({BURST} blk, {BUDGET} frames)"),
        format!("{:.1}ms", blocked_secs * 1e3),
        format!("{:.0}", BURST as f64 / blocked_secs),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        format!("burst, spill ({} spills)", spill_stats.spills),
        format!("{:.1}ms", spill_secs * 1e3),
        format!("{:.0}", BURST as f64 / spill_secs),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.print();
    save_json("e17_cache", &t);

    Bench::new()
        .label("experiment", "e17_cache")
        .int("sessions", SESSIONS as u64)
        .int("reads_per_session", READS_PER_SESSION as u64)
        .int("hot_records", HOT_RECORDS)
        .int("frames", FRAMES as u64)
        .num("uncached_ops_per_sec", total_ops / base_secs)
        .num("cached_ops_per_sec", total_ops / hot_secs)
        .num("speedup", speedup)
        .num("hit_ratio", cache.hit_ratio())
        .int("coalesced_reads", coalesced)
        .int(
            "p50_nanos",
            quantile_nanos(&hot_stats.latency, 0.5).unwrap_or(0),
        )
        .int(
            "p99_nanos",
            quantile_nanos(&hot_stats.latency, 0.99).unwrap_or(0),
        )
        .int(
            "uncached_p50_nanos",
            quantile_nanos(&base_stats.latency, 0.5).unwrap_or(0),
        )
        .int(
            "uncached_p99_nanos",
            quantile_nanos(&base_stats.latency, 0.99).unwrap_or(0),
        )
        .int("spill_blocks", BURST)
        .int("spill_frame_budget", BUDGET as u64)
        .int("spills", spill_stats.spills)
        .num("producer_secs_no_spill", blocked_secs)
        .num("producer_secs_with_spill", spill_secs)
        .num("spill_speedup", spill_win)
        .save("e17_cache");

    println!("\nasserted facts:");
    let mut facts = Table::new(&["fact", "value", "required"]);
    facts.row(&[
        "hot-reuse speedup, cached vs uncached".into(),
        format!("{speedup:.2}x"),
        ">= 2.0x".into(),
    ]);
    facts.row(&[
        "steady-state hit ratio".into(),
        format!("{:.3}", cache.hit_ratio()),
        ">= 0.5".into(),
    ]);
    facts.row(&[
        "dirty overflow spilled to scratch".into(),
        spill_stats.spills.to_string(),
        "> 0".into(),
    ]);
    facts.row(&[
        "cold-scan misses coalesced into vectored submits".into(),
        coalesced.to_string(),
        "> 0".into(),
    ]);
    facts.row(&[
        "producer speedup with spill vs home writeback".into(),
        format!("{spill_win:.2}x"),
        "> 1.5x".into(),
    ]);
    facts.print();

    assert!(
        speedup >= 2.0,
        "cache must double hot-reuse throughput (got {speedup:.2}x)"
    );
    assert!(
        cache.hit_ratio() >= 0.5,
        "hot set must mostly hit (got {:.3})",
        cache.hit_ratio()
    );
    assert!(spill_stats.spills > 0, "burst must overflow to scratch");
    assert!(coalesced > 0, "cold scan must coalesce adjacent misses");
    assert!(
        spill_win > 1.5,
        "spill must keep the producer off the home device \
         ({blocked_secs:.4}s vs {spill_secs:.4}s)"
    );
    println!("\nE17 assertions passed.");
}
