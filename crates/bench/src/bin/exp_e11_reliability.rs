//! E11 — §5 reliability: the MTBF arithmetic, parity survival of a
//! single drive failure, single-bit error correction, parity's
//! inapplicability to independently-updated layouts, shadowing's cost,
//! and the partial-rollback consistency trap.

use std::sync::Arc;

use pario_bench::banner;
use pario_bench::table::{save_json, Table};
use pario_disk::{DeviceRef, MemDisk};
use pario_fs::{FileSpec, Volume, VolumeConfig};
use pario_layout::LayoutSpec;
use pario_reliability as rel;

const BS: usize = 1024;

fn mtbf_table() {
    println!("(1) System MTBF, 30,000 h per device (paper's §5 numbers):");
    let mut t = Table::new(&[
        "devices",
        "system MTBF (h)",
        "failures/year",
        "days between",
        "Monte-Carlo MTTF (h)",
    ]);
    for row in rel::paper_table(&[1, 10, 100]) {
        let mc = rel::monte_carlo_mttf(rel::PAPER_DEVICE_MTBF_HOURS, row.devices, 3000, 7);
        t.row(&[
            row.devices.to_string(),
            format!("{:.0}", row.system_mtbf_hours),
            format!("{:.2}", row.failures_per_year),
            format!("{:.1}", row.days_between_failures),
            format!("{mc:.0}"),
        ]);
    }
    t.print();
    save_json("e11_mtbf", &t);
    println!(
        "-> 10 devices fail every ~3,000 h (\"about 3 times per year\"); \
         100 devices more than once every two weeks.\n"
    );
}

fn parity_survives_failure() {
    println!("(2) Parity striping survives a complete drive failure:");
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 5,
        device_blocks: 512,
        block_size: BS,
    })
    .unwrap();
    let f = v
        .create_file(FileSpec::new(
            "data",
            BS,
            1,
            LayoutSpec::Parity {
                data_devices: 4,
                rotated: true,
            },
        ))
        .unwrap();
    for r in 0..64u64 {
        f.write_record(r, &vec![(r + 1) as u8; BS]).unwrap();
    }
    let writes_after_fill: u64 = (0..5).map(|d| v.device(d).counters().writes).sum();
    v.device(2).fail();
    let mut buf = vec![0u8; BS];
    let mut ok = 0;
    for r in 0..64u64 {
        f.read_record(r, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == (r + 1) as u8));
        ok += 1;
    }
    println!("   drive 2 failed: all {ok}/64 records readable (degraded XOR reads)");
    v.device(2).heal();
    let zero = vec![0u8; BS];
    for b in 0..v.device(2).num_blocks() {
        v.device(2).write_block(b, &zero).unwrap();
    }
    let rebuilt = rel::rebuild_parity_slot(&f, 2).unwrap();
    println!("   replacement drive rebuilt: {rebuilt} blocks reconstructed by XOR");
    for r in 0..64u64 {
        f.read_record(r, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == (r + 1) as u8));
    }
    println!("   post-rebuild verification: exact");
    // RMW write amplification: each logical write = 1 data write + 1
    // parity write (+ 2 reads).
    println!(
        "   parity write cost: {} device writes for 64 logical writes \
         (2x amplification + read-modify-write reads)\n",
        writes_after_fill
    );
}

fn bit_error_corrected() {
    println!("(3) Single-bit error: detected by checksums, corrected by parity:");
    // Keep typed handles to the raw media so a bit can be flipped UNDER
    // the checksum layer (true media corruption).
    let raw: Vec<Arc<MemDisk>> = (0..4)
        .map(|i| Arc::new(MemDisk::named(&format!("m{i}"), 512, BS)))
        .collect();
    let wrapped: Vec<DeviceRef> = raw
        .iter()
        .map(|m| Arc::new(rel::ChecksumDevice::new(Arc::clone(m) as DeviceRef)) as DeviceRef)
        .collect();
    let v = Volume::new(wrapped).unwrap();
    let f = v
        .create_file(FileSpec::new(
            "data",
            BS,
            1,
            LayoutSpec::Parity {
                data_devices: 3,
                rotated: false,
            },
        ))
        .unwrap();
    for r in 0..12u64 {
        f.write_record(r, &vec![(r + 10) as u8; BS]).unwrap();
    }
    let meta = f.meta_snapshot();
    let abs = pario_fs::resolve(&meta.extents[1], 2);
    raw[1].corrupt_bit(abs, 4242);
    println!("   flipped bit 4242 of device 1, block {abs}");
    let mut buf = vec![0u8; BS];
    // Record 7 (stripe 2, position 1) lives on that block.
    f.read_record(7, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 17));
    println!(
        "   read of the affected record: checksum flagged corruption, \
         parity reconstruction returned the exact data\n"
    );
}

fn stale_parity_for_independent_updates() {
    println!("(4) Parity is NOT applicable to independently-accessed layouts:");
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 512,
        block_size: BS,
    })
    .unwrap();
    let f = v
        .create_file(FileSpec::new(
            "ps-style",
            BS,
            1,
            LayoutSpec::Parity {
                data_devices: 3,
                rotated: false,
            },
        ))
        .unwrap();
    for r in 0..24u64 {
        f.write_record(r, &vec![1u8; BS]).unwrap();
    }
    // PS/IS-style independent access: processes write "their" device
    // directly, skipping the cross-device parity RMW (which would
    // serialise them — defeating the point of independent access).
    f.write_device_block(0, 3, &vec![9u8; BS]).unwrap();
    f.write_device_block(1, 5, &vec![9u8; BS]).unwrap();
    let bad = rel::scrub(&f).unwrap();
    println!(
        "   two independent per-device updates bypassing parity RMW -> \
         scrub flags stripes {bad:?} as unprotected"
    );
    println!(
        "   (maintaining parity would serialise the independent writers \
         through a stripe lock: the paper's reason it \"does not appear \
         to be applicable\")\n"
    );
}

fn shadow_cost_and_recovery() {
    println!("(5) Shadowing: instant recovery, doubled hardware and writes:");
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 512,
        block_size: BS,
    })
    .unwrap();
    let f = v
        .create_file(FileSpec::new(
            "sh",
            BS,
            1,
            LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                devices: 2,
                unit: 1,
            })),
        ))
        .unwrap();
    for r in 0..32u64 {
        f.write_record(r, &vec![(r + 1) as u8; BS]).unwrap();
    }
    let writes: u64 = (0..4).map(|d| v.device(d).counters().writes).sum();
    println!("   32 logical writes -> {writes} device writes (2x, every block mirrored)");
    v.device(0).fail();
    let mut buf = vec![0u8; BS];
    for r in 0..32u64 {
        f.read_record(r, &mut buf).unwrap();
    }
    println!("   primary drive failed: all reads served by shadows, zero rebuild needed");
    v.device(0).heal();
    let n = rel::resync_shadow(&f, 0).unwrap();
    println!("   replacement re-synced from mirror: {n} blocks copied\n");
}

fn rollback_consistency() {
    println!("(6) Restoring one drive from backup tears consistency:");
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 512,
        block_size: BS,
    })
    .unwrap();
    let f = v
        .create_file(FileSpec::new(
            "p",
            BS,
            1,
            LayoutSpec::Parity {
                data_devices: 3,
                rotated: true,
            },
        ))
        .unwrap();
    for r in 0..24u64 {
        f.write_record(r, &vec![3u8; BS]).unwrap();
    }
    let backups: Vec<Vec<u8>> = (0..4)
        .map(|d| rel::snapshot_device(&v.device(d)).unwrap())
        .collect();
    for r in 0..24u64 {
        f.write_record(r, &vec![4u8; BS]).unwrap();
    }
    rel::restore_device(&v.device(1), &backups[1]).unwrap();
    let torn = rel::scrub(&f).unwrap();
    println!(
        "   device 1 alone restored from backup: {} stripes torn",
        torn.len()
    );
    for d in [0usize, 2, 3] {
        rel::restore_device(&v.device(d), &backups[d]).unwrap();
    }
    let after = rel::scrub(&f).unwrap();
    println!(
        "   all devices rolled back to the same point: {} stripes torn — \
         \"all of the disks will have to be rolled back\"\n",
        after.len()
    );
    assert!(after.is_empty());
}

fn failure_campaign() {
    println!("(7) One simulated year of exponential failures (seeded):");
    let mut t = Table::new(&[
        "devices",
        "failures in 1 yr (seed 1)",
        "(seed 2)",
        "(seed 3)",
    ]);
    for devices in [10usize, 100] {
        let counts: Vec<String> = (1..=3)
            .map(|seed| {
                rel::failure_schedule(devices, rel::PAPER_DEVICE_MTBF_HOURS, 8760.0, seed)
                    .len()
                    .to_string()
            })
            .collect();
        t.row(&[
            devices.to_string(),
            counts[0].clone(),
            counts[1].clone(),
            counts[2].clone(),
        ]);
    }
    t.print();
    save_json("e11_campaign", &t);
}

fn main() {
    banner(
        "E11 (reliability)",
        "MTBF falls linearly with device count; parity rides out one \
         failed drive (striped layouts only); shadowing doubles cost; \
         partial restores tear consistency",
    );
    mtbf_table();
    parity_survives_failure();
    bit_error_corrected();
    stale_parity_for_independent_updates();
    shadow_cost_and_recovery();
    rollback_consistency();
    failure_campaign();
}
