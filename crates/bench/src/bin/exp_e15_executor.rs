//! E15 — the volume I/O executor. Two claims:
//!
//! 1. **Persistent workers beat spawn-per-request fan-out.** The paper's
//!    "dedicated I/O processors" (§4) are long-lived: a request is an
//!    enqueue on a live worker, not a thread birth. This experiment pits
//!    the executor's submit/wait path against the pre-executor strategy
//!    (spawn one scoped thread per device run, join them all) on the same
//!    delay-modelled memory devices. The win must show on *small*
//!    multi-device spans — where spawn cost rivals service time and the
//!    old code therefore fell back to serial loops — while staying at
//!    least even on large spans where spawn cost amortises.
//! 2. **Queue-aware dispatch beats FIFO on a seeking disk.** Each worker
//!    dispatches its backlog through a [`SchedPolicy`]; on the modelled
//!    1989 Wren drive, SSTF/SCAN cut seek time against FIFO for the same
//!    scattered request set (virtual time, no wall-clock noise).
//!
//! Lanes are medians over many iterations; results land in
//! `results/e15_executor.json` (part 1) and
//! `results/e15_executor_sched.json` (part 2).

use std::sync::Arc;
use std::time::{Duration, Instant};

use pario_bench::table::{save_json, Bench, Table};
use pario_bench::{banner, BS};
use pario_disk::{DeviceRef, DiskGeometry, IoNode, MemDisk, ModeledDisk, SchedPolicy, Ticket};
use pario_sim::{DiskReq, Script, Simulation};

/// Modelled service time per device request (the 1989 request-count
/// regime: fixed per-access cost dominates).
const DELAY: Duration = Duration::from_micros(30);
const DEVICES: usize = 4;

fn device_bank() -> Vec<DeviceRef> {
    (0..DEVICES)
        .map(|i| {
            Arc::new(MemDisk::named(&format!("m{i}"), 4096, BS).with_delay(DELAY)) as DeviceRef
        })
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// One request through the pre-executor strategy: spawn a scoped thread
/// per device run, join them all.
fn spawn_lane(devs: &[DeviceRef], per_dev_blocks: usize, iters: usize) -> f64 {
    let mut samples = Vec::with_capacity(iters);
    let mut bufs: Vec<Vec<u8>> = (0..DEVICES)
        .map(|_| vec![0u8; per_dev_blocks * BS])
        .collect();
    for _ in 0..iters {
        let t0 = Instant::now();
        crossbeam::thread::scope(|s| {
            for (d, buf) in devs.iter().zip(bufs.iter_mut()) {
                s.spawn(move |_| d.read_blocks_at(0, buf).unwrap());
            }
        })
        .unwrap();
        samples.push(t0.elapsed().as_secs_f64());
    }
    median(samples)
}

/// The same request through persistent workers: enqueue one submission
/// per device, wait the tickets.
fn executor_lane(handles: &[DeviceRef], per_dev_blocks: usize, iters: usize) -> f64 {
    let mut samples = Vec::with_capacity(iters);
    let mut bufs: Vec<Box<[u8]>> = (0..DEVICES)
        .map(|_| vec![0u8; per_dev_blocks * BS].into_boxed_slice())
        .collect();
    for _ in 0..iters {
        let t0 = Instant::now();
        let tickets: Vec<Ticket<Box<[u8]>>> = handles
            .iter()
            .zip(bufs.drain(..))
            .map(|(h, buf)| h.submit_read_blocks(0, buf))
            .collect();
        bufs = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        samples.push(t0.elapsed().as_secs_f64());
    }
    median(samples)
}

/// Returns the executor-vs-spawn speedup at the smallest and largest
/// span sizes for the flat benchmark summary.
fn part1() -> (f64, f64) {
    let devs = device_bank();
    let (_nodes, handles) = IoNode::spawn_bank(devs.clone());
    let mut t = Table::new(&[
        "span",
        "blocks/dev",
        "spawn-per-call",
        "executor",
        "speedup",
    ]);
    let mut small_speedup = 0.0;
    let mut large_speedup = 0.0;
    // (total span blocks, iterations): small spans are where the old
    // code's serial fallback lived; large spans amortise spawn cost.
    for &(total, iters) in &[(4usize, 401usize), (16, 301), (64, 201), (256, 101)] {
        let per_dev = total / DEVICES;
        let spawn = spawn_lane(&devs, per_dev, iters);
        let exec = executor_lane(&handles, per_dev, iters);
        let speedup = spawn / exec;
        t.row(&[
            format!("{total} blk"),
            per_dev.to_string(),
            format!("{:.1}us", spawn * 1e6),
            format!("{:.1}us", exec * 1e6),
            format!("{speedup:.2}x"),
        ]);
        if total == 4 {
            small_speedup = speedup;
            assert!(
                exec < spawn,
                "executor must beat spawn-per-call on small multi-device \
                 spans (exec {exec:.6}s vs spawn {spawn:.6}s)"
            );
        }
        if total == 256 {
            large_speedup = speedup;
        }
        assert!(
            exec <= spawn * 1.10,
            "executor must stay within 10% of spawn-per-call at {total} \
             blocks (exec {exec:.6}s vs spawn {spawn:.6}s)"
        );
    }
    t.print();
    save_json("e15_executor", &t);
    (small_speedup, large_speedup)
}

/// Returns (FIFO, SSTF) makespans in seconds for the summary.
fn part2() -> (f64, f64) {
    let run = |policy: SchedPolicy| {
        let mut sim = Simulation::new();
        let disk = ModeledDisk::new(DiskGeometry::wren_1989(), policy, BS);
        let cap = disk.capacity_blocks();
        let dev = sim.add_device(Box::new(disk));
        // 6 processes each dump 24 scattered reads into the queue at
        // once, so each dispatch decision sees a deep backlog.
        for p in 0..6u64 {
            let reqs: Vec<DiskReq> = (0..24u64)
                .map(|i| DiskReq::read(dev, (p * 7919 + i * 104729) % cap, 1))
                .collect();
            sim.add_proc(Script::new().io_async(reqs).wait_all().build());
        }
        sim.run().makespan
    };
    let fifo = run(SchedPolicy::Fifo);
    let mut sstf_secs = 0.0;
    let mut t = Table::new(&["policy", "makespan", "vs FIFO"]);
    for (name, policy) in [
        ("FIFO", SchedPolicy::Fifo),
        ("SSTF", SchedPolicy::Sstf),
        ("SCAN", SchedPolicy::Scan),
        ("C-SCAN", SchedPolicy::CScan),
    ] {
        let mk = run(policy);
        t.row(&[
            name.to_string(),
            format!("{:.1}ms", mk.as_millis_f64()),
            format!("{:.2}x", fifo.as_secs_f64() / mk.as_secs_f64()),
        ]);
        if matches!(policy, SchedPolicy::Sstf) {
            sstf_secs = mk.as_secs_f64();
        }
        if matches!(policy, SchedPolicy::Sstf | SchedPolicy::Scan) {
            assert!(
                mk < fifo,
                "{name} must beat FIFO on a scattered backlog \
                 ({:.2}ms vs {:.2}ms)",
                mk.as_millis_f64(),
                fifo.as_millis_f64()
            );
        }
    }
    t.print();
    save_json("e15_executor_sched", &t);
    (fifo.as_secs_f64(), sstf_secs)
}

fn main() {
    banner(
        "I/O executor (persistent per-device workers)",
        "dedicated I/O processors: requests are enqueued on long-lived \
         per-device workers instead of spawning a thread per device run, \
         and each worker dispatches its backlog by seek-aware policy",
    );
    let (small_speedup, large_speedup) = part1();
    println!("\nDispatch policy on the modelled 1989 drive (virtual time):");
    let (fifo_secs, sstf_secs) = part2();

    Bench::new()
        .label("experiment", "e15_executor")
        .int("devices", DEVICES as u64)
        .num("small_span_speedup_vs_spawn", small_speedup)
        .num("large_span_speedup_vs_spawn", large_speedup)
        .num("fifo_makespan_secs", fifo_secs)
        .num("sstf_makespan_secs", sstf_secs)
        .num("sstf_speedup_vs_fifo", fifo_secs / sstf_secs)
        .save("e15_executor");
}
