//! E16 — online fault management. One claim, end to end: a shadowed
//! volume under an injected fail-stop keeps serving its foreground
//! workload through the *entire* fault cycle — brownout, detection,
//! and an online rebuild — and foreground throughput never drops to
//! zero while the rebuild's throttled bursts share the stripes.
//!
//! The timeline is sampled at a fixed interval and bucketed by phase
//! (healthy → degraded → rebuilding → recovered); per-phase throughput
//! lands in `results/e16_faults.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use pario_bench::banner;
use pario_bench::table::{save_json, Bench, Table};
use pario_disk::{mem_array, FaultDevice, FaultPlan};
use pario_fs::{FileSpec, HealthState, Volume};
use pario_layout::LayoutSpec;
use pario_reliability::{rebuild_device_online, RebuildThrottle};

const BS: usize = 256;
const RECORDS: u64 = 256;
const WORKERS: u64 = 4;
const FAULT_DEV: usize = 1;
const SAMPLE: Duration = Duration::from_millis(5);

const HEALTHY: usize = 0;
const DEGRADED: usize = 1;
const REBUILDING: usize = 2;
const RECOVERED: usize = 3;
const PHASES: [&str; 4] = ["healthy", "degraded", "rebuilding", "recovered"];

fn main() {
    banner(
        "E16 (online fault management)",
        "a shadowed volume rides out an injected fail-stop: foreground \
         reads and writes keep flowing while the device is detected, \
         declared Failed, and rebuilt online through throttled bursts",
    );

    let mut devices = mem_array(4, 2048, BS);
    let (fault, wrapped) = FaultDevice::wrap(
        devices[FAULT_DEV].clone(),
        FaultPlan {
            seed: 0xe16,
            transient_rate: 0.01,
            fail_after: Some(4000),
            ..FaultPlan::default()
        },
    );
    devices[FAULT_DEV] = wrapped;
    fault.set_armed(false);

    let v = Volume::new(devices).unwrap();
    let f = v
        .create_file(FileSpec::new(
            "data",
            BS,
            1,
            LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                devices: 2,
                unit: 1,
            })),
        ))
        .unwrap();
    for r in 0..RECORDS {
        f.write_record(r, &vec![(r + 1) as u8; BS]).unwrap();
    }

    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let phase = AtomicUsize::new(HEALTHY);
    // (elapsed, phase at sample time, cumulative ops) every SAMPLE tick.
    let timeline: parking_lot::Mutex<Vec<(Duration, usize, u64)>> =
        parking_lot::Mutex::new(Vec::new());
    let t0 = Instant::now();

    // Hoisted out of the scope for the flat benchmark summary.
    let mut detect_secs = 0.0;
    let mut rebuild_secs = 0.0;
    let mut resynced_blocks = 0u64;

    crossbeam::thread::scope(|s| {
        for w in 0..WORKERS {
            let (f, stop, ops) = (f.clone(), &stop, &ops);
            s.spawn(move |_| {
                let base = w * (RECORDS / WORKERS);
                let span = RECORDS / WORKERS;
                let mut buf = vec![0u8; BS];
                let mut k = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let r = base + k % span;
                    f.write_record(r, &vec![(r + 1) as u8; BS]).unwrap();
                    f.read_record(base + (k * 5 + 1) % span, &mut buf).unwrap();
                    ops.fetch_add(2, Ordering::Relaxed);
                    k += 1;
                }
            });
        }
        {
            let (stop, ops, phase, timeline) = (&stop, &ops, &phase, &timeline);
            s.spawn(move |_| {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(SAMPLE);
                    timeline.lock().push((
                        t0.elapsed(),
                        phase.load(Ordering::SeqCst),
                        ops.load(Ordering::Relaxed),
                    ));
                }
            });
        }

        // Phase 1: a healthy baseline, fault schedule disarmed.
        std::thread::sleep(Duration::from_millis(120));

        // Phase 2: arm the schedule; the workload trips the fail-stop
        // and the health board learns of it from I/O error feedback.
        phase.store(DEGRADED, Ordering::SeqCst);
        fault.set_armed(true);
        let armed_at = Instant::now();
        while v.device_health(FAULT_DEV) != HealthState::Failed {
            assert!(
                armed_at.elapsed() < Duration::from_secs(30),
                "fail-stop never reached the health board: {:?}",
                v.health_snapshot()
            );
            std::thread::yield_now();
        }
        let detect = armed_at.elapsed();
        // Let the degraded regime run visibly before repair begins.
        std::thread::sleep(Duration::from_millis(120));

        // Phase 3: online rebuild, throttled so foreground I/O keeps
        // flowing between bursts.
        phase.store(REBUILDING, Ordering::SeqCst);
        let rb0 = Instant::now();
        let report = rebuild_device_online(
            &v,
            FAULT_DEV,
            RebuildThrottle {
                burst_blocks: 8,
                pause: Duration::from_millis(2),
            },
        )
        .unwrap();
        let rebuild_took = rb0.elapsed();
        assert_eq!(v.device_health(FAULT_DEV), HealthState::Healthy);

        // Phase 4: recovered steady state.
        phase.store(RECOVERED, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(120));
        stop.store(true, Ordering::SeqCst);

        detect_secs = detect.as_secs_f64();
        rebuild_secs = rebuild_took.as_secs_f64();
        resynced_blocks = report.shadow_resynced.iter().map(|(_, n)| n).sum::<u64>();
        println!(
            "fail-stop detected in {detect:?}; online rebuild re-synced \
             {resynced_blocks} blocks in {rebuild_took:?} ({:?} of transient \
             errors seen)\n",
            fault.counts().transients,
        );
    })
    .unwrap();

    // Bucket the timeline by phase.
    let samples = std::mem::take(&mut *timeline.lock());
    let mut t = Table::new(&["phase", "duration (ms)", "ops", "kops/s", "min 5ms slice"]);
    let mut rebuild_min = u64::MAX;
    for (p, name) in PHASES.iter().enumerate() {
        let in_phase: Vec<&(Duration, usize, u64)> =
            samples.iter().filter(|(_, ph, _)| *ph == p).collect();
        if in_phase.len() < 2 {
            continue;
        }
        let dur = in_phase.last().unwrap().0 - in_phase[0].0;
        let done = in_phase.last().unwrap().2 - in_phase[0].2;
        let min_slice = in_phase
            .windows(2)
            .map(|w| w[1].2 - w[0].2)
            .min()
            .unwrap_or(0);
        if p == REBUILDING {
            rebuild_min = min_slice;
        }
        t.row(&[
            name.to_string(),
            format!("{:.0}", dur.as_secs_f64() * 1e3),
            done.to_string(),
            format!("{:.1}", done as f64 / dur.as_secs_f64() / 1e3),
            min_slice.to_string(),
        ]);
    }
    t.print();
    save_json("e16_faults", &t);

    Bench::new()
        .label("experiment", "e16_faults")
        .int("records", RECORDS)
        .int("workers", WORKERS)
        .num("detect_secs", detect_secs)
        .num("rebuild_secs", rebuild_secs)
        .int("resynced_blocks", resynced_blocks)
        .int(
            "rebuild_min_ops_per_slice",
            if rebuild_min == u64::MAX {
                0
            } else {
                rebuild_min
            },
        )
        .int("total_ops", ops.load(Ordering::Relaxed))
        .save("e16_faults");

    // The headline claim: no 5ms slice of the rebuild phase saw zero
    // foreground operations — the throttle kept the stripes shared.
    assert!(
        rebuild_min != u64::MAX,
        "rebuild finished too fast to sample; lower burst_blocks"
    );
    assert!(
        rebuild_min > 0,
        "foreground throughput dropped to zero during the online rebuild"
    );
    println!(
        "\n-> foreground never stalled: every 5ms slice of the rebuild \
         completed >= {rebuild_min} ops"
    );

    let snap = v.health_snapshot();
    println!(
        "-> device {FAULT_DEV} history: {:?}",
        snap[FAULT_DEV].transitions
    );
}
