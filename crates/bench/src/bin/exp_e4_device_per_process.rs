//! E4 — §4: "Types PS and IS have obvious implementations if there is
//! one device per process. In the first case, one device is allocated to
//! each block; in the second case, blocks are interleaved across the
//! devices. This differs from normal disk striping, since processes are
//! free to proceed at different rates."
//!
//! P processes each stream their own portion of a file on a P-drive
//! bank, under PS and IS placements, with per-process compute between
//! blocks drawn unevenly so rates genuinely differ. The contrast case is
//! the same workload forced onto a single shared drive.

use pario_bench::simx::{compute_io_script, read_reqs, wren_bank};
use pario_bench::table::{rate, save_json, secs, Table};
use pario_bench::{banner, BS};
use pario_disk::SchedPolicy;
use pario_layout::{Partitioned, Striped};
use pario_sim::{DiskReq, SimTime, Simulation};

/// Data per process (weak scaling: the file grows with the process
/// count, each process always streams this much from its own drive).
const BYTES_PER_PROC: u64 = 8 * 1024 * 1024;
const CLUSTER: u64 = 16; // IS cluster = 64 KiB

fn run_case(
    name: &str,
    devices: usize,
    nprocs: usize,
    per_proc_reqs: Vec<Vec<DiskReq>>,
    compute_scale: bool,
    t: &mut Table,
) {
    let mut sim = Simulation::new();
    wren_bank(&mut sim, devices, SchedPolicy::Fifo);
    for (p, reqs) in per_proc_reqs.into_iter().enumerate() {
        // Uneven rates: odd processes think 4 ms per request, even
        // processes 1 ms — private drives let them diverge freely.
        let compute = if compute_scale {
            SimTime::from_ms(1 + 3 * (p as u64 % 2))
        } else {
            SimTime::ZERO
        };
        sim.add_proc(compute_io_script(reqs, compute));
    }
    let r = sim.run();
    let time = r.makespan.as_secs_f64();
    let bytes = BYTES_PER_PROC * nprocs as u64;
    t.row(&[
        name.to_string(),
        nprocs.to_string(),
        devices.to_string(),
        secs(time),
        rate(bytes as f64 / time),
    ]);
}

fn main() {
    banner(
        "E4 (device per process: PS and IS)",
        "with one device per process, PS and IS give each process a \
         private drive and processes proceed at their own rates",
    );
    let mut t = Table::new(&["case", "procs", "devices", "makespan", "aggregate"]);
    for &p in &[1usize, 2, 4, 8] {
        let blocks = BYTES_PER_PROC / BS as u64 * p as u64;
        // PS: process i streams its contiguous partition (on device i).
        let ps = Partitioned::uniform(blocks, p, p);
        let per: Vec<Vec<DiskReq>> = (0..p)
            .map(|i| {
                let (lo, hi) = ps.partition_range(i);
                read_reqs(&ps, lo, hi, CLUSTER)
            })
            .collect();
        run_case(&format!("PS {p} dev/proc"), p, p, per, true, &mut t);

        // IS: process i streams clusters i, i+p, ... (device i).
        let is = Striped::interleaved(p, CLUSTER);
        let per: Vec<Vec<DiskReq>> = (0..p as u64)
            .map(|i| {
                let mut reqs = Vec::new();
                let clusters = blocks / CLUSTER;
                let mut c = i;
                while c < clusters {
                    reqs.extend(read_reqs(&is, c * CLUSTER, (c + 1) * CLUSTER, CLUSTER));
                    c += p as u64;
                }
                reqs
            })
            .collect();
        run_case(&format!("IS {p} dev/proc"), p, p, per, true, &mut t);
    }

    // Contrast: 4 processes sharing ONE device (PS partitions stacked).
    let blocks = BYTES_PER_PROC / BS as u64 * 4;
    let ps1 = Partitioned::uniform(blocks, 4, 1);
    let per: Vec<Vec<DiskReq>> = (0..4)
        .map(|i| {
            let (lo, hi) = ps1.partition_range(i);
            read_reqs(&ps1, lo, hi, CLUSTER)
        })
        .collect();
    run_case("PS 4 procs, 1 shared dev", 1, 4, per, true, &mut t);

    t.print();
    save_json("e4_device_per_process", &t);
    println!(
        "\nShape: with a drive per process the makespan stays flat as \
         processes (and data) scale together — aggregate bandwidth grows \
         linearly; forcing four processes onto one shared drive \
         multiplies the makespan several-fold."
    );
}
