//! E20 — crash recovery: what the intent journal costs, and what it
//! buys.
//!
//! The dual-slot superblock plus write-ahead intent journal make the
//! volume's metadata crash-consistent at every write boundary (the
//! `crash_recovery` integration sweep is the proof). This experiment
//! quantifies the deal:
//!
//! * **Steady-state journaling overhead.** Overwrites of already-
//!   allocated blocks never touch the journal, so the steady-state
//!   write path must cost (almost) nothing extra: the journal-on /
//!   journal-off throughput ratio is asserted `<=` [`OVERHEAD_BOUND`].
//!   The growing lane (every append allocates, journals, and flushes)
//!   reports the worst-case price for contrast.
//! * **Recovery time.** Mounting a volume with pending intent records
//!   replays them onto the fallback checkpoint; the lane measures a
//!   dirty mount against a clean one and reports the per-record replay
//!   cost. Recovery must actually recover: the dirty mount replays a
//!   known record count and ends with the full directory intact.
//! * **Crash sweep.** A bounded rerun of the boundary sweep (every
//!   [`SWEEP_STRIDE`]th boundary, clean and torn) — each crash must
//!   remount with synced data intact, and the lane records how many
//!   boundaries were exercised.
//!
//! Set `E20_SMOKE=1` for a CI-sized run (same lanes and assertions,
//! smaller populations).

use std::sync::Arc;
use std::time::Instant;

use pario_bench::banner;
use pario_bench::table::{save_json, secs, Bench, Table};
use pario_disk::{mem_array, BlockDevice, DeviceRef, FaultDevice, FaultPlan, MemDisk};
use pario_fs::{FileSpec, Volume};
use pario_layout::LayoutSpec;

/// Block size for every lane: small enough that metadata traffic is a
/// visible fraction of the workload.
const BS: usize = 512;
/// Record size (one record per block keeps the arithmetic obvious).
const RECORD: usize = 512;
/// Maximum steady-state slowdown the journal may cost (ratio of
/// journal-on time to journal-off time).
const OVERHEAD_BOUND: f64 = 1.10;
/// The crash-sweep lane exercises every this-many-th write boundary.
const SWEEP_STRIDE: u64 = 5;

fn smoke() -> bool {
    std::env::var("E20_SMOKE").is_ok()
}

fn volume(devices: usize, blocks: u64) -> Volume {
    let devs: Vec<DeviceRef> = (0..devices)
        .map(|i| Arc::new(MemDisk::named(&format!("mem{i}"), blocks, BS)) as DeviceRef)
        .collect();
    Volume::new(devs).unwrap()
}

fn striped() -> LayoutSpec {
    LayoutSpec::Striped {
        devices: 4,
        unit: 1,
    }
}

/// Best-of-`trials` wall time for `work` — in-memory runs are fast
/// enough that scheduler noise dominates a single sample.
fn best_of<F: FnMut()>(trials: usize, mut work: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        work();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Steady-state lane: overwrite a preallocated file's records with the
/// journal on and off. Overwrites allocate nothing, so the two paths
/// must be near-identical. The two volumes are prepared up front and
/// the trials interleaved, so clock drift and cold caches hit both
/// sides equally.
fn steady_lane(records: u64, passes: u64) -> (f64, f64) {
    let payload = vec![0xA5u8; RECORD];
    let prepare = |journaling: bool| {
        let v = volume(4, 8192);
        v.set_meta_journaling(journaling).unwrap();
        let f = v
            .create_file(FileSpec::new("steady", RECORD, 1, striped()))
            .unwrap();
        for r in 0..records {
            f.write_record(r, &payload).unwrap();
        }
        v.sync_meta().unwrap();
        (v, f)
    };
    let (_von, fon) = prepare(true);
    let (_voff, foff) = prepare(false);
    let mut run = |f: &pario_fs::RawFile| {
        for _ in 0..passes {
            for r in 0..records {
                f.write_record(r, &payload).unwrap();
            }
        }
    };
    // One untimed warmup each, then alternating best-of-five.
    run(&fon);
    run(&foff);
    let (mut on, mut off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let t0 = Instant::now();
        run(&fon);
        on = on.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        run(&foff);
        off = off.min(t0.elapsed().as_secs_f64());
    }
    (on, off)
}

/// Growing lane: every file is created from nothing and appended past
/// its allocation over and over — the worst case for the journal, since
/// each growth appends and flushes an intent record.
fn grow_lane(files: u64, records: u64) -> (f64, f64) {
    let time_with = |journaling: bool| {
        let payload = vec![0x5Au8; RECORD];
        best_of(3, || {
            let v = volume(4, 8192);
            v.set_meta_journaling(journaling).unwrap();
            for i in 0..files {
                let f = v
                    .create_file(FileSpec::new(&format!("g{i}"), RECORD, 1, striped()))
                    .unwrap();
                for r in 0..records {
                    f.write_record(r, &payload).unwrap();
                }
            }
        })
    };
    (time_with(true), time_with(false))
}

/// Recovery lane: time a clean mount, then a dirty mount that must
/// replay `dirty_ops` intent records. Returns (clean secs, dirty secs,
/// records replayed, files after recovery).
fn recovery_lane(base_files: u64, dirty_ops: u64) -> (f64, f64, u64, usize) {
    let devices = mem_array(4, 8192, BS);
    let payload = vec![1u8; RECORD];
    {
        let v = Volume::new(devices.clone()).unwrap();
        for i in 0..base_files {
            let f = v
                .create_file(FileSpec::new(&format!("base{i}"), RECORD, 1, striped()))
                .unwrap();
            f.write_record(0, &payload).unwrap();
        }
        v.sync_meta().unwrap();
    }
    // Clean mount: both slots valid, no pending journal records.
    let t0 = Instant::now();
    let v = Volume::mount(devices.clone()).unwrap();
    let clean = t0.elapsed().as_secs_f64();
    assert_eq!(v.mount_report().unwrap().replayed_records, 0);

    // Dirty it: creates + growth after the checkpoint, then "crash"
    // (abandon) so nothing checkpoints the journal away.
    for i in 0..dirty_ops {
        let f = v
            .create_file(FileSpec::new(&format!("dirty{i}"), RECORD, 1, striped()))
            .unwrap();
        f.write_record(0, &payload).unwrap();
    }
    let pending = v.meta_status().journal_pending_records;
    v.abandon();
    drop(v);

    let t0 = Instant::now();
    let v = Volume::mount(devices).unwrap();
    let dirty = t0.elapsed().as_secs_f64();
    let report = v.mount_report().unwrap();
    assert!(
        report.replayed_records > 0 && report.replayed_records <= pending,
        "dirty mount must replay the pending intent records \
         (pending {pending}, replayed {})",
        report.replayed_records
    );
    let files = v.list().len();
    assert_eq!(
        files,
        (base_files + dirty_ops) as usize,
        "recovery must restore every journaled create"
    );
    (clean, dirty, report.replayed_records, files)
}

/// Bounded crash sweep: run a create/write/sync workload over shared-
/// clock fault devices, crashing at every `stride`-th boundary (clean
/// and torn) and remounting. Returns (boundaries total, crashes
/// exercised). Panics if any remount fails or loses synced data.
fn sweep_lane(stride: u64) -> (u64, u64) {
    let payload = |r: u64| vec![r as u8 + 1; RECORD];
    let run = |crash_at: Option<u64>, torn: bool| -> (Vec<DeviceRef>, Vec<Arc<FaultDevice>>, u64) {
        let clock = FaultDevice::write_clock();
        let mut devices = Vec::new();
        let mut faults = Vec::new();
        for base in mem_array(4, 2048, BS) {
            let (h, w) = FaultDevice::wrap_with_clock(
                base,
                FaultPlan {
                    crash_after_writes: crash_at,
                    crash_torn: torn,
                    ..FaultPlan::default()
                },
                Arc::clone(&clock),
            );
            faults.push(h);
            devices.push(w);
        }
        for f in &faults {
            f.set_armed(false);
        }
        let v = Volume::new(devices.clone()).unwrap();
        for f in &faults {
            f.set_armed(true);
        }
        let work = || -> pario_fs::Result<()> {
            let a = v.create_file(FileSpec::new("a", RECORD, 1, striped()))?;
            for r in 0..8 {
                a.write_record(r, &payload(r))?;
            }
            v.sync_meta()?;
            let b = v.create_file(FileSpec::new("b", RECORD, 1, striped()))?;
            for r in 0..12 {
                b.write_record(r, &payload(r))?;
            }
            v.sync_meta()?;
            Ok(())
        };
        let _ = work();
        for f in &faults {
            f.set_armed(false);
        }
        let boundaries = faults[0].write_boundaries();
        v.abandon();
        drop(v);
        (devices, faults, boundaries)
    };
    let (_, _, total) = run(None, false);
    let mut exercised = 0;
    for torn in [false, true] {
        let mut b = 0;
        while b < total {
            let (devices, faults, _) = run(Some(b), torn);
            for f in &faults {
                f.heal();
            }
            let v = Volume::mount(devices)
                .unwrap_or_else(|e| panic!("boundary {b} torn={torn}: remount failed: {e}"));
            // Anything synced before the crash must read back exactly.
            if v.list().iter().any(|n| n == "a") {
                let a = v.open("a").unwrap();
                let mut buf = vec![0u8; RECORD];
                for r in 0..a.len_records().min(8) {
                    a.read_record(r, &mut buf).unwrap();
                    assert_eq!(buf, payload(r), "boundary {b} torn={torn}: a/{r}");
                }
            }
            exercised += 1;
            b += stride;
        }
    }
    (total, exercised)
}

fn main() {
    banner(
        "E20: crash recovery — journal overhead and mount-time replay",
        "the write-ahead intent journal keeps metadata crash-consistent \
         for free on the steady-state write path (allocation-heavy \
         appends pay the flush), and mount-time replay recovers a dirty \
         volume in milliseconds",
    );
    let (records, passes, gfiles, grecs, base_files, dirty_ops) = if smoke() {
        (256, 16, 6, 48, 8, 6)
    } else {
        (512, 32, 12, 96, 24, 16)
    };

    // -- Lane 1: steady-state overwrite overhead ------------------------
    let (on, off) = steady_lane(records, passes);
    let steady_ratio = on / off;
    let total_writes = records * passes;
    println!(
        "\nsteady state ({total_writes} overwrites of {records} preallocated records):\n\
         \x20 journal on   {}  ({:.0} writes/s)\n\
         \x20 journal off  {}  ({:.0} writes/s)\n\
         \x20 overhead {:.1}% (bound {:.0}%)",
        secs(on),
        total_writes as f64 / on,
        secs(off),
        total_writes as f64 / off,
        (steady_ratio - 1.0) * 100.0,
        (OVERHEAD_BOUND - 1.0) * 100.0,
    );

    // -- Lane 2: allocation-heavy appends (the honest worst case) -------
    let (gon, goff) = grow_lane(gfiles, grecs);
    let grow_ratio = gon / goff;
    println!(
        "growing ({gfiles} files x {grecs} appended records, every one allocating):\n\
         \x20 journal on   {}\n\
         \x20 journal off  {}\n\
         \x20 overhead {:.1}% (reported, not bounded: each grow journals + flushes)",
        secs(gon),
        secs(goff),
        (grow_ratio - 1.0) * 100.0,
    );

    // -- Lane 3: recovery time ------------------------------------------
    let (clean, dirty, replayed, files) = recovery_lane(base_files, dirty_ops);
    println!(
        "recovery ({base_files} checkpointed files + {dirty_ops} un-checkpointed creates):\n\
         \x20 clean mount  {}\n\
         \x20 dirty mount  {}  ({replayed} intent records replayed, {files} files intact)",
        secs(clean),
        secs(dirty),
    );

    // -- Lane 4: bounded crash sweep ------------------------------------
    let stride = if smoke() {
        SWEEP_STRIDE * 2
    } else {
        SWEEP_STRIDE
    };
    let (boundaries, crashes) = sweep_lane(stride);
    println!(
        "crash sweep: {crashes} crash points over {boundaries} write boundaries \
         (stride {stride}, clean + torn) all remounted with synced data intact"
    );

    let mut t = Table::new(&["lane", "journal on", "journal off", "overhead"]);
    t.row(&[
        "steady overwrite".into(),
        secs(on),
        secs(off),
        format!("{:+.1}%", (steady_ratio - 1.0) * 100.0),
    ]);
    t.row(&[
        "grow/append".into(),
        secs(gon),
        secs(goff),
        format!("{:+.1}%", (grow_ratio - 1.0) * 100.0),
    ]);
    t.row(&[
        "mount (clean/dirty)".into(),
        secs(dirty),
        secs(clean),
        format!("{replayed} records replayed"),
    ]);
    println!();
    t.print();
    save_json("e20_recovery", &t);

    Bench::new()
        .label("experiment", "e20_recovery")
        .num("steady_journal_on_secs", on)
        .num("steady_journal_off_secs", off)
        .num("steady_overhead_ratio", steady_ratio)
        .num("grow_journal_on_secs", gon)
        .num("grow_journal_off_secs", goff)
        .num("grow_overhead_ratio", grow_ratio)
        .num("mount_clean_secs", clean)
        .num("mount_dirty_secs", dirty)
        .int("mount_replayed_records", replayed)
        .int("sweep_boundaries", boundaries)
        .int("sweep_crash_points", crashes)
        .save("e20_recovery");

    assert!(
        steady_ratio <= OVERHEAD_BOUND,
        "steady-state journaling overhead must stay within \
         {:.0}% (got {:.1}%)",
        (OVERHEAD_BOUND - 1.0) * 100.0,
        (steady_ratio - 1.0) * 100.0
    );
    assert!(
        crashes > 0 && boundaries > 0,
        "the sweep must exercise crash points"
    );
    println!(
        "\nE20 assertions hold: steady-state overhead {:.1}% <= {:.0}%, \
         {replayed}-record replay recovered the volume, {crashes} crash \
         points survived.",
        (steady_ratio - 1.0) * 100.0,
        (OVERHEAD_BOUND - 1.0) * 100.0
    );
}
