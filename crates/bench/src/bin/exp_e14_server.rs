//! E14 — the service layer under multi-client load.
//!
//! A `pario-server` fronts a 4-device striped volume whose devices run
//! behind I/O-node processors with a modelled per-request service time.
//! Independent client threads connect sessions and hammer one
//! self-scheduled file; the experiment demonstrates, and *asserts*:
//!
//! * **Exactly-once across sessions** — 8 clients drain the SS file
//!   through the server's shared cursor: every record delivered to
//!   exactly one client, none torn, none skipped.
//! * **Scaling** — 8 clients achieve at least 3x the aggregate
//!   throughput of 1 client (the 4 devices serve claims in parallel;
//!   two-phase reservation keeps the cursor off the critical path).
//! * **Admission control** — under 4x oversubscription (16 clients,
//!   limit 4) the queue-depth high water never exceeds the configured
//!   limit, and the blocked clients observably queue.
//! * **Reject policy** — the same oversubscription with `Saturation::
//!   Reject` surfaces `Busy` to clients, who retry without ever losing
//!   or duplicating a record.
//!
//! A second table sweeps client counts and access modes (two-phase vs.
//! big-lock SS, plus a Zipf-skewed closed-loop GDA update lane) with
//! latency quantiles from the server histogram and the device-side
//! queue-wait/service split from the I/O-node counters.

use std::collections::HashSet;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pario_bench::table::{save_json, Bench, Table};
use pario_bench::{banner, BS};
use pario_core::{Organization, ParallelFile};
use pario_disk::{DeviceRef, MemDisk};
use pario_fs::Volume;
use pario_server::{Saturation, Server, ServerConfig, ServerError, ServerStats};
use pario_workloads::ClosedLoop;

/// Modelled service time per device request. At 400µs the device sleeps
/// (rather than busy-waits), so the four I/O-node workers genuinely
/// overlap even on a single-core host — which is exactly the regime the
/// experiment is about: throughput limited by device service time.
const DELAY: Duration = Duration::from_micros(400);
/// Records in the self-scheduled file (one volume block each).
const RECORDS: u64 = 1500;

fn delayed_server(max_in_flight: usize, saturation: Saturation) -> Server {
    let devices: Vec<DeviceRef> = (0..4)
        .map(|i| {
            Arc::new(MemDisk::named(&format!("mem{i}"), 2048, BS).with_delay(DELAY)) as DeviceRef
        })
        .collect();
    let volume = Volume::new_with_io_nodes(devices).unwrap();
    Server::new(
        volume,
        ServerConfig {
            max_in_flight,
            saturation,
            ..ServerConfig::default()
        },
    )
}

fn rec_byte(idx: u64) -> u8 {
    (idx % 251) as u8
}

fn fill_ss(server: &Server, records: u64) {
    let pf = ParallelFile::create(
        server.volume(),
        "queue",
        Organization::SelfScheduledSeq,
        BS,
        1,
    )
    .unwrap();
    // Fill through the vectored span path (a handful of device requests)
    // so the timed lanes start from identical, cheaply produced state.
    let mut data = vec![0u8; records as usize * BS];
    for i in 0..records {
        data[i as usize * BS..(i as usize + 1) * BS].fill(rec_byte(i));
    }
    pf.raw().write_span(0, &data).unwrap();
    pf.raw().set_len_records(records).unwrap();
}

/// Drain the SS file with `clients` concurrent sessions. Returns elapsed
/// seconds and the final server stats; panics on any duplicate, torn, or
/// missing record.
fn drain_ss(server: &Server, clients: usize, naive: bool, retry_busy: bool) -> (f64, ServerStats) {
    let seen = Mutex::new(HashSet::with_capacity(RECORDS as usize));
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for _ in 0..clients {
            let sess = server.connect();
            let seen = &seen;
            s.spawn(move |_| {
                let q = if naive {
                    sess.open_self_sched_naive("queue").unwrap()
                } else {
                    sess.open_self_sched("queue").unwrap()
                };
                let mut buf = vec![0u8; BS];
                let mut local = Vec::new();
                loop {
                    match q.read_next(&mut buf) {
                        Ok(Some(idx)) => {
                            assert!(buf.iter().all(|&b| b == rec_byte(idx)), "torn record {idx}");
                            local.push(idx);
                        }
                        Ok(None) => break,
                        Err(ServerError::Busy) if retry_busy => std::thread::yield_now(),
                        Err(e) => panic!("read failed: {e}"),
                    }
                }
                let mut seen = seen.lock().unwrap();
                for idx in local {
                    assert!(seen.insert(idx), "record {idx} delivered twice");
                }
            });
        }
    })
    .unwrap();
    let secs = t0.elapsed().as_secs_f64();
    let seen = seen.into_inner().unwrap();
    assert_eq!(
        seen.len(),
        RECORDS as usize,
        "every record delivered exactly once"
    );
    (secs, server.stats())
}

fn fmt_ns(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.0}us", ns as f64 / 1e3),
        None => "-".to_string(),
    }
}

fn sweep_row(t: &mut Table, label: &str, clients: usize, secs: f64, base: f64, st: &ServerStats) {
    let io = st.io.as_ref().expect("devices run behind I/O nodes");
    t.row(&[
        label.to_string(),
        clients.to_string(),
        format!("{:.1}ms", secs * 1e3),
        format!("{:.0}", RECORDS as f64 / secs),
        format!("{:.2}x", base / secs),
        st.queue_depth_high_water.to_string(),
        fmt_ns(st.p50()),
        fmt_ns(st.p99()),
        fmt_ns(st.p999()),
        format!(
            "{:.0}/{:.0}ms",
            io.queue_wait_nanos as f64 / 1e6,
            io.service_nanos as f64 / 1e6
        ),
        st.fairness().map_or("-".into(), |f| format!("{f:.2}")),
    ]);
}

/// Zipf-skewed closed-loop GDA lane: every client runs its deterministic
/// (record, read|update) stream through locked server operations; hot
/// records contend on the byte-range locks.
fn gda_closed_loop(t: &mut Table, clients: u32) {
    let server = delayed_server(8, Saturation::Block);
    let pf =
        ParallelFile::create(server.volume(), "skewed", Organization::GlobalDirect, BS, 1).unwrap();
    let h = pf.direct_handle().unwrap();
    const GDA_RECORDS: u64 = 256;
    for r in 0..GDA_RECORDS {
        h.write_record(r, &[0; BS]).unwrap();
    }
    let wl = ClosedLoop {
        clients,
        records: GDA_RECORDS,
        ops_per_client: 250,
        theta: 0.9,
        write_fraction: 0.3,
        seed: 14,
    };
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for c in 0..clients {
            let sess = server.connect();
            let ops = wl.client_ops(c);
            s.spawn(move |_| {
                let g = sess.open_direct("skewed").unwrap();
                let mut buf = vec![0u8; BS];
                for (r, is_write) in ops {
                    if is_write {
                        // Locked read-modify-write of a per-record counter.
                        g.update(r, |bytes| {
                            let v = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                            bytes[..8].copy_from_slice(&(v + 1).to_le_bytes());
                        })
                        .unwrap();
                    } else {
                        g.read_record(r, &mut buf).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    let secs = t0.elapsed().as_secs_f64();
    let st = server.stats();
    // No increment may be lost to a racing writer: the per-record
    // counters must sum to exactly the number of update operations.
    let sess = server.connect();
    let g = sess.open_direct("skewed").unwrap();
    let mut buf = vec![0u8; BS];
    let mut total = 0u64;
    for r in 0..GDA_RECORDS {
        g.read_record(r, &mut buf).unwrap();
        total += u64::from_le_bytes(buf[..8].try_into().unwrap());
    }
    let expected: u64 = (0..clients)
        .map(|c| wl.client_ops(c).iter().filter(|&&(_, w)| w).count() as u64)
        .sum();
    assert_eq!(total, expected, "lost GDA increments under contention");
    let io = st.io.as_ref().unwrap();
    t.row(&[
        "GDA zipf closed-loop".to_string(),
        clients.to_string(),
        format!("{:.1}ms", secs * 1e3),
        format!("{:.0}", wl.total_ops() as f64 / secs),
        "-".to_string(),
        st.queue_depth_high_water.to_string(),
        fmt_ns(st.p50()),
        fmt_ns(st.p99()),
        fmt_ns(st.p999()),
        format!(
            "{:.0}/{:.0}ms",
            io.queue_wait_nanos as f64 / 1e6,
            io.service_nanos as f64 / 1e6
        ),
        st.fairness().map_or("-".into(), |f| format!("{f:.2}")),
    ]);
}

fn main() {
    banner(
        "E14: multi-client service layer (sessions, sharing, admission)",
        "independent client sessions share one server: SS cursors span \
         sessions exactly-once, throughput scales with devices, and a \
         bounded admission queue enforces the configured in-flight limit",
    );

    let mut sweep = Table::new(&[
        "mode",
        "clients",
        "elapsed",
        "rec/s",
        "speedup",
        "qd high",
        "p50",
        "p99",
        "p999",
        "dev wait/svc",
        "fairness",
    ]);

    // -- Scaling lane: 1..8 two-phase clients, limit 8 ------------------
    let mut base_secs = 0.0;
    let mut secs_at_8 = 0.0;
    for &clients in &[1usize, 2, 4, 8] {
        let server = delayed_server(8, Saturation::Block);
        fill_ss(&server, RECORDS);
        let (secs, st) = drain_ss(&server, clients, false, false);
        if clients == 1 {
            base_secs = secs;
        }
        if clients == 8 {
            secs_at_8 = secs;
        }
        sweep_row(&mut sweep, "SS two-phase", clients, secs, base_secs, &st);
        assert!(
            st.queue_depth_high_water <= 8,
            "admission bound violated in scaling lane"
        );
    }
    let speedup = base_secs / secs_at_8;

    // -- Big-lock contrast at 8 clients ---------------------------------
    let server = delayed_server(8, Saturation::Block);
    fill_ss(&server, RECORDS);
    let (naive_secs, st) = drain_ss(&server, 8, true, false);
    sweep_row(&mut sweep, "SS big-lock", 8, naive_secs, base_secs, &st);

    // -- Oversubscription lane: 16 clients, limit 4, blocking -----------
    let server = delayed_server(4, Saturation::Block);
    fill_ss(&server, RECORDS);
    let (over_secs, over_stats) = drain_ss(&server, 16, false, false);
    sweep_row(
        &mut sweep,
        "SS 4x oversub",
        16,
        over_secs,
        base_secs,
        &over_stats,
    );

    // -- Reject lane: same oversubscription, clients retry on Busy ------
    let server = delayed_server(4, Saturation::Reject);
    fill_ss(&server, RECORDS);
    let (reject_secs, reject_stats) = drain_ss(&server, 16, false, true);

    // Offered vs achieved: every Busy was an offered op the server shed;
    // total_admitted is what actually got through (goodput).
    let offered_rate = (reject_stats.total_admitted + reject_stats.rejected) as f64 / reject_secs;
    let achieved_rate = reject_stats.total_admitted as f64 / reject_secs;
    println!(
        "\nReject lane offered vs achieved: {offered_rate:.0} ops/s offered, \
         {achieved_rate:.0} ops/s admitted ({:.0}% goodput)",
        achieved_rate / offered_rate * 100.0
    );

    // -- Closed-loop GDA lanes ------------------------------------------
    gda_closed_loop(&mut sweep, 2);
    gda_closed_loop(&mut sweep, 8);

    sweep.print();
    save_json("e14_server_sweep", &sweep);

    // -- Asserted facts ---------------------------------------------------
    let io = over_stats.io.as_ref().expect("I/O-node stats available");
    println!("\nasserted facts:");
    let mut facts = Table::new(&["fact", "value", "required"]);
    facts.row(&[
        "SS records delivered exactly once (8 clients)".into(),
        RECORDS.to_string(),
        RECORDS.to_string(),
    ]);
    facts.row(&[
        "aggregate speedup, 8 clients vs 1".into(),
        format!("{speedup:.2}x"),
        ">= 3.0x".into(),
    ]);
    facts.row(&[
        "queue-depth high water at 4x oversubscription".into(),
        over_stats.queue_depth_high_water.to_string(),
        "<= 4 (the configured limit)".into(),
    ]);
    facts.row(&[
        "admission waiters observed (blocked clients)".into(),
        over_stats.wait_high_water.to_string(),
        "> 0".into(),
    ]);
    facts.row(&[
        "Busy rejections under Reject policy".into(),
        reject_stats.rejected.to_string(),
        "> 0".into(),
    ]);
    facts.row(&[
        "device queue wait attributed (I/O nodes)".into(),
        format!("{:.1}ms", io.queue_wait_nanos as f64 / 1e6),
        "> 0".into(),
    ]);
    facts.print();
    save_json("e14_server", &facts);

    Bench::new()
        .label("experiment", "e14_server")
        .int("records", RECORDS)
        .num("ss_speedup_8_vs_1", speedup)
        .num("ss_records_per_sec_8_clients", RECORDS as f64 / secs_at_8)
        .num("ss_records_per_sec_big_lock", RECORDS as f64 / naive_secs)
        .int(
            "oversub_queue_depth_high_water",
            over_stats.queue_depth_high_water as u64,
        )
        .int("oversub_wait_high_water", over_stats.wait_high_water as u64)
        .int("busy_rejections", reject_stats.rejected)
        .int("oversub_p50_nanos", over_stats.p50().unwrap_or(0))
        .int("oversub_p99_nanos", over_stats.p99().unwrap_or(0))
        .int("oversub_p999_nanos", over_stats.p999().unwrap_or(0))
        .int("oversub_total_admitted", over_stats.total_admitted)
        .num("reject_offered_ops_per_sec", offered_rate)
        .num("reject_achieved_ops_per_sec", achieved_rate)
        .save("e14_server");

    assert!(
        speedup >= 3.0,
        "8 SS clients must reach >=3x one client's throughput (got {speedup:.2}x)"
    );
    assert!(
        over_stats.queue_depth_high_water <= 4,
        "admission must bound in-flight ops at the limit (got {})",
        over_stats.queue_depth_high_water
    );
    assert!(
        over_stats.wait_high_water > 0,
        "4x oversubscription must visibly queue"
    );
    assert!(
        reject_stats.rejected > 0,
        "Reject policy must surface Busy under oversubscription"
    );
    assert!(io.queue_wait_nanos > 0 && io.service_nanos > 0);
    println!("\nE14 assertions passed.");
}
