//! E3 — §4: "Some care is needed in the self-scheduled version to assure
//! proper synchronization without unduly serializing access. The use of
//! predictable length records reduces the problem, since file pointers
//! can be adjusted and buffer areas reserved early in an I/O call,
//! thereby allowing the next call from another process to proceed before
//! the actual data transfer from the first call has completed."
//!
//! Real threads read an SS file whose devices have a calibrated service
//! delay. The naive baseline holds one lock across each whole I/O call;
//! the two-phase implementation reserves the cursor atomically and
//! transfers outside any lock. On a single CPU the transfers still
//! overlap because a thread waiting on a device sleeps.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pario_bench::banner;
use pario_bench::table::{save_json, secs, Table};
use pario_core::{Organization, ParallelFile};
use pario_disk::{DeviceRef, MemDisk};
use pario_fs::Volume;

const RECORD: usize = 4096;
const RECORDS: u64 = 96;
const DELAY: Duration = Duration::from_millis(2);

fn volume(devices: usize) -> Volume {
    let devs: Vec<DeviceRef> = (0..devices)
        .map(|i| {
            Arc::new(MemDisk::named(&format!("d{i}"), 512, RECORD).with_delay(DELAY)) as DeviceRef
        })
        .collect();
    Volume::new(devs).expect("volume")
}

fn run(threads: u32, naive: bool) -> Duration {
    let v = volume(4);
    let pf =
        ParallelFile::create(&v, "ss", Organization::SelfScheduledSeq, RECORD, 1).expect("create");
    // Fill without timing it.
    pf.raw().ensure_capacity_records(RECORDS).unwrap();
    for r in 0..RECORDS {
        pf.raw().write_record(r, &vec![r as u8; RECORD]).unwrap();
    }
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            let r = if naive {
                pf.self_sched_reader_naive().unwrap()
            } else {
                pf.self_sched_reader().unwrap()
            };
            s.spawn(move |_| {
                let mut buf = vec![0u8; RECORD];
                while let Some(idx) = r.read_next(&mut buf).unwrap() {
                    assert_eq!(buf[0], idx as u8);
                }
            });
        }
    })
    .unwrap();
    t0.elapsed()
}

fn main() {
    banner(
        "E3 (self-scheduled synchronization)",
        "two-phase pointer reservation lets the next process proceed \
         before the previous transfer completes; a big lock unduly \
         serializes access",
    );
    println!(
        "{RECORDS} records of {RECORD} B on 4 devices with {:?} service \
         time per block\n",
        DELAY
    );
    let mut t = Table::new(&[
        "threads",
        "big-lock (naive)",
        "two-phase",
        "two-phase speedup",
    ]);
    for threads in [1u32, 2, 4, 8] {
        let naive = run(threads, true);
        let twophase = run(threads, false);
        t.row(&[
            threads.to_string(),
            secs(naive.as_secs_f64()),
            secs(twophase.as_secs_f64()),
            format!("{:.2}x", naive.as_secs_f64() / twophase.as_secs_f64()),
        ]);
    }
    t.print();
    save_json("e3_selfsched", &t);
    println!(
        "\nShape: with one thread the two are equal; as threads grow the \
         big lock pins throughput to one transfer at a time while \
         two-phase overlaps transfers across devices."
    );
}
