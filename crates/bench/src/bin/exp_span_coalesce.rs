//! Span coalescing — §4's "transfer as much data as possible in each
//! access" applied to the span I/O path: instead of one device request
//! per volume block, a span is translated into maximal per-device runs
//! (one vectored request each), and independent runs proceed on their
//! devices in parallel.
//!
//! Three lanes over the same files and spans, on memory devices with a
//! modelled per-request service time (so request COUNT, not bandwidth,
//! dominates — the 1989 regime):
//!
//! * `per-block`   — one `read_lblock` per volume block (the old path),
//! * `coalesced`   — the span path with the device fan-out disabled,
//! * `coal+par`    — the span path as shipped (fan-out enabled).
//!
//! A second table replays the paper's global-view scenario: a 64 MiB
//! sequential scan through `GlobalReader`, reporting device requests per
//! block against the per-block baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pario_bench::table::{save_json, Table};
use pario_bench::{banner, BS};
use pario_disk::{DeviceRef, MemDisk};
use pario_fs::{FileSpec, GlobalReader, RawFile, Volume};
use pario_layout::LayoutSpec;

/// Modelled service time per device request.
const DELAY: Duration = Duration::from_micros(30);

fn delayed_volume(devices: usize, device_blocks: u64) -> Volume {
    let devs: Vec<DeviceRef> = (0..devices)
        .map(|i| {
            Arc::new(MemDisk::named(&format!("mem{i}"), device_blocks, BS).with_delay(DELAY))
                as DeviceRef
        })
        .collect();
    Volume::new(devs).unwrap()
}

fn total_reads(v: &Volume, devices: usize) -> (u64, u64) {
    let mut reqs = 0;
    let mut blocks = 0;
    for d in 0..devices {
        let c = v.device(d).counters();
        reqs += c.reads;
        blocks += c.blocks_read;
    }
    (reqs, blocks)
}

/// One measured lane: returns (seconds, device read requests issued).
fn lane(v: &Volume, devices: usize, f: impl FnOnce()) -> (f64, u64) {
    let (reqs0, _) = total_reads(v, devices);
    let t0 = Instant::now();
    f();
    let secs = t0.elapsed().as_secs_f64();
    let (reqs1, _) = total_reads(v, devices);
    (secs, reqs1 - reqs0)
}

fn sweep_case(t: &mut Table, name: &str, devices: usize, layout: LayoutSpec, span_blocks: u64) {
    let v = delayed_volume(devices, 8192);
    let f = v.create_file(FileSpec::new("f", BS, 1, layout)).unwrap();
    let bytes = span_blocks as usize * BS;
    let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
    f.write_span(0, &data).unwrap();

    let mut out = vec![0u8; bytes];
    let (t_pb, r_pb) = lane(&v, devices, || {
        for l in 0..span_blocks {
            f.read_lblock(l, &mut out[l as usize * BS..(l as usize + 1) * BS])
                .unwrap();
        }
    });
    assert_eq!(out, data);

    let serial = f.clone().with_span_parallel(false);
    let mut out = vec![0u8; bytes];
    let (t_co, r_co) = lane(&v, devices, || serial.read_span(0, &mut out).unwrap());
    assert_eq!(out, data);

    let mut out = vec![0u8; bytes];
    let (t_cp, r_cp) = lane(&v, devices, || f.read_span(0, &mut out).unwrap());
    assert_eq!(out, data);
    assert_eq!(r_co, r_cp, "fan-out must not change the request count");

    t.row(&[
        name.to_string(),
        devices.to_string(),
        span_blocks.to_string(),
        format!("{:.1}ms/{r_pb}", t_pb * 1e3),
        format!("{:.1}ms/{r_co}", t_co * 1e3),
        format!("{:.1}ms/{r_cp}", t_cp * 1e3),
        format!("{:.1}x", r_pb as f64 / r_co as f64),
        format!("{:.1}x", t_pb / t_cp),
    ]);
}

fn global_scan_case(t: &mut Table, devices: usize, unit: u64) {
    const FILE_BYTES: u64 = 64 * 1024 * 1024;
    let blocks = FILE_BYTES / BS as u64;
    let v = delayed_volume(devices, blocks / devices as u64 + 64);
    let f: RawFile = v
        .create_file(FileSpec::new(
            "scan",
            BS,
            1,
            LayoutSpec::Striped { devices, unit },
        ))
        .unwrap();
    // Fill through the coalesced span path in 1 MiB strides.
    let chunk = vec![7u8; 256 * BS];
    for i in 0..blocks / 256 {
        f.write_span(i * 256 * BS as u64, &chunk).unwrap();
    }
    f.set_len_records(blocks).unwrap();

    let (t_pb, r_pb) = lane(&v, devices, || {
        let mut buf = vec![0u8; BS];
        for l in 0..blocks {
            f.read_lblock(l, &mut buf).unwrap();
        }
    });
    let (t_gv, r_gv) = lane(&v, devices, || {
        let mut r = GlobalReader::new(f.clone());
        let mut rec = vec![0u8; BS];
        let mut n = 0u64;
        while r.read_record(&mut rec).unwrap() {
            n += 1;
        }
        assert_eq!(n, blocks);
    });
    let drop = r_pb as f64 / r_gv as f64;
    assert!(
        drop >= 4.0,
        "global-view scan must cut device requests >=4x (got {drop:.1}x)"
    );
    t.row(&[
        format!("striped u{unit}"),
        devices.to_string(),
        blocks.to_string(),
        format!("{:.0}ms/{r_pb}", t_pb * 1e3),
        format!("{:.0}ms/{r_gv}", t_gv * 1e3),
        format!("{drop:.1}x"),
        format!("{:.1}x", t_pb / t_gv),
    ]);
}

fn main() {
    banner(
        "span coalescing (vectored runs + device fan-out)",
        "transferring as much data as possible in each access: spans \
         become one vectored request per device run, and independent \
         runs proceed in parallel across devices",
    );

    let mut t = Table::new(&[
        "layout",
        "devs",
        "blocks",
        "per-block t/req",
        "coalesced t/req",
        "coal+par t/req",
        "req drop",
        "speedup",
    ]);
    for &devices in &[2usize, 4, 8] {
        for &span_blocks in &[64u64, 512, 2048] {
            sweep_case(
                &mut t,
                "striped u2",
                devices,
                LayoutSpec::Striped { devices, unit: 2 },
                span_blocks,
            );
        }
    }
    for &span_blocks in &[64u64, 512] {
        sweep_case(
            &mut t,
            "striped u8",
            4,
            LayoutSpec::Striped {
                devices: 4,
                unit: 8,
            },
            span_blocks,
        );
        sweep_case(
            &mut t,
            "shadowed u2",
            8,
            LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                devices: 4,
                unit: 2,
            })),
            span_blocks,
        );
        sweep_case(
            &mut t,
            "parity rot",
            4,
            LayoutSpec::Parity {
                data_devices: 3,
                rotated: true,
            },
            span_blocks,
        );
    }
    t.print();
    save_json("span_coalesce", &t);

    println!("\n64 MiB sequential scan through the global view:");
    let mut g = Table::new(&[
        "layout",
        "devs",
        "blocks",
        "per-block t/req",
        "global view t/req",
        "req drop",
        "speedup",
    ]);
    global_scan_case(&mut g, 4, 2);
    global_scan_case(&mut g, 4, 4);
    g.print();
    save_json("span_coalesce_global", &g);
}
