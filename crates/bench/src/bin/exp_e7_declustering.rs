//! E7 — §4, citing Livny et al.: "declustering of files across multiple
//! drives (disk striping) provides performance improvements in a
//! database context… by splitting blocks across multiple drives rather
//! than allocating whole blocks to individual drives, contention
//! problems caused by non-uniform access patterns are reduced."
//!
//! A Zipf-skewed block workload runs at several multiprogramming levels
//! over a 4-drive bank under the two placements: *whole-block* (each
//! 32 KiB file block on one drive) and *declustered* (each file block
//! split across all four drives).

use pario_bench::banner;
use pario_bench::simx::{read_reqs, wren_bank};
use pario_bench::table::{save_json, secs, Table};
use pario_disk::SchedPolicy;
use pario_layout::Striped;
use pario_sim::{Op, Simulation};
use pario_workloads::SkewedBlocks;

const DEVICES: usize = 4;
const FILE_BLOCKS: u64 = 512; // distinct 32 KiB file blocks
const VB_PER_FB: u64 = 8; // 32 KiB file block = 8 volume blocks
const REQUESTS: usize = 2000;

fn run(theta: f64, procs: u32, declustered: bool) -> (f64, f64) {
    let layout = if declustered {
        Striped::declustered(DEVICES)
    } else {
        Striped::whole_block(DEVICES, VB_PER_FB)
    };
    let trace = SkewedBlocks {
        blocks: FILE_BLOCKS,
        requests: REQUESTS,
        theta,
        write_fraction: 0.0,
        seed: 42,
    }
    .trace(procs);
    let mut sim = Simulation::new();
    wren_bank(&mut sim, DEVICES, SchedPolicy::Fifo);
    let per_proc = trace.per_process(procs);
    for accesses in per_proc {
        let ops: Vec<Op> = accesses
            .iter()
            .map(|a| {
                let lo = a.index * VB_PER_FB;
                Op::Io(read_reqs(&layout, lo, lo + VB_PER_FB, VB_PER_FB))
            })
            .collect();
        sim.add_proc(ops);
    }
    let r = sim.run();
    let makespan = r.makespan.as_secs_f64();
    // Load imbalance: hottest device busy time over mean busy time.
    let busies: Vec<f64> = r.devices.iter().map(|d| d.busy.as_secs_f64()).collect();
    let mean = busies.iter().sum::<f64>() / busies.len() as f64;
    let max = busies.iter().cloned().fold(0.0, f64::max);
    (makespan, max / mean)
}

fn main() {
    banner(
        "E7 (declustering vs whole-block placement)",
        "splitting blocks across drives reduces contention under \
         non-uniform access; whole-block placement concentrates hot \
         blocks on one drive",
    );
    println!(
        "{REQUESTS} reads of 32 KiB file blocks over {DEVICES} drives; \
         'imbalance' = hottest drive's busy time / mean\n"
    );
    let mut t = Table::new(&[
        "workload",
        "procs",
        "whole-block",
        "wb imbalance",
        "declustered",
        "dc imbalance",
        "declustering gain",
    ]);
    for &(theta, wname) in &[(0.0, "uniform"), (1.0, "skewed 1.0"), (2.0, "skewed 2.0")] {
        for &procs in &[1u32, 4, 8, 16] {
            let (wb, wb_imb) = run(theta, procs, false);
            let (dc, dc_imb) = run(theta, procs, true);
            t.row(&[
                wname.to_string(),
                procs.to_string(),
                secs(wb),
                format!("{wb_imb:.2}"),
                secs(dc),
                format!("{dc_imb:.2}"),
                format!("{:.2}x", wb / dc),
            ]);
        }
    }
    t.print();
    save_json("e7_declustering", &t);
    println!(
        "\nShape: declustering parallelises each transfer, so it wins \
         outright at low multiprogramming (~1.9x). At high uniform \
         concurrency whole-block placement amortises positioning better \
         and pulls ahead — but as skew concentrates the workload, its \
         hottest drive saturates (imbalance -> stripe width) and the \
         advantage collapses back toward declustering, which stays \
         perfectly balanced at every level. That crossover map is Livny \
         et al.'s result."
    );
}
