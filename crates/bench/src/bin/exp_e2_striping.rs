//! E2 — §4: "For file types S and SS, disk striping can be used to
//! spread the file across multiple drives, resulting in higher transfer
//! rates."
//!
//! A single process streams a 64 MiB type-S file from banks of 1..=16
//! period-correct drives on the discrete-event simulator, with enough
//! read-ahead to keep every drive busy. A second table ablates the
//! stripe unit at a fixed bank width.

use pario_bench::simx::{read_reqs, windowed_script, wren_bank};
use pario_bench::table::{rate, save_json, secs, Table};
use pario_bench::{banner, BS};
use pario_disk::SchedPolicy;
use pario_layout::Striped;
use pario_sim::Simulation;

const FILE_BYTES: u64 = 64 * 1024 * 1024;
const UNIT: u64 = 16; // 64 KiB stripe unit
const REQ: u64 = 16; // one request per stripe unit

fn stream(devices: usize, unit: u64, window: usize) -> (f64, f64, f64) {
    let blocks = FILE_BYTES / BS as u64;
    let layout = Striped::new(devices, unit);
    let mut sim = Simulation::new();
    wren_bank(&mut sim, devices, SchedPolicy::Fifo);
    let reqs = read_reqs(&layout, 0, blocks, REQ);
    sim.add_proc(windowed_script(reqs, window));
    let r = sim.run();
    let t = r.makespan.as_secs_f64();
    (t, FILE_BYTES as f64 / t, r.mean_utilization())
}

fn main() {
    banner(
        "E2 (striping scaling)",
        "striping a type S file across multiple drives raises transfer \
         rate roughly linearly",
    );

    let mut t = Table::new(&["devices", "read time", "throughput", "speedup", "mean util"]);
    let mut base = 0.0;
    for d in [1usize, 2, 4, 8, 16] {
        let (time, tput, util) = stream(d, UNIT, 2 * d);
        if d == 1 {
            base = time;
        }
        t.row(&[
            d.to_string(),
            secs(time),
            rate(tput),
            format!("{:.2}x", base / time),
            format!("{:.0}%", util * 100.0),
        ]);
    }
    t.print();
    save_json("e2_striping_devices", &t);

    println!("\nStripe-unit ablation at 8 devices (window 16 requests):");
    let mut t = Table::new(&["unit (blocks)", "unit bytes", "read time", "throughput"]);
    for unit in [1u64, 4, 16, 64, 256] {
        let (time, tput, _) = stream(8, unit, 16);
        t.row(&[
            unit.to_string(),
            format!("{} KiB", unit * BS as u64 / 1024),
            secs(time),
            rate(tput),
        ]);
    }
    t.print();
    save_json("e2_striping_unit", &t);
    println!(
        "\nShape: throughput scales with device count while the single \
         consumer can absorb it; very small units pay per-request \
         positioning overhead, very large units starve the window."
    );
}
