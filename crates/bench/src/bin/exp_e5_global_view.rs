//! E5 — §4: "Most of the implementation strategies … would also yield
//! performance improvements for sequential programs which access the
//! files using the global view. One exception is the PS organization, in
//! which all of the data would have to be read from the first disk,
//! followed by all of the data from the second disk, etc., with no
//! potential for parallelism."
//!
//! A single sequential reader consumes a 32 MiB file through the global
//! view under three placements on a 4-drive bank: striped (type S
//! default), interleaved (IS clusters), and partitioned (PS).

use pario_bench::simx::{read_reqs, windowed_script, wren_bank};
use pario_bench::table::{rate, save_json, secs, Table};
use pario_bench::{banner, BS};
use pario_disk::SchedPolicy;
use pario_layout::{Layout, Partitioned, Striped};
use pario_sim::Simulation;

const FILE_BYTES: u64 = 32 * 1024 * 1024;
const DEVICES: usize = 4;
const WINDOW: usize = 8;
const REQ: u64 = 16;

fn global_read(layout: &dyn Layout) -> (f64, f64, f64) {
    let blocks = FILE_BYTES / BS as u64;
    let mut sim = Simulation::new();
    wren_bank(&mut sim, DEVICES, SchedPolicy::Fifo);
    let reqs = read_reqs(layout, 0, blocks, REQ);
    sim.add_proc(windowed_script(reqs, WINDOW));
    let r = sim.run();
    let t = r.makespan.as_secs_f64();
    (t, FILE_BYTES as f64 / t, r.mean_utilization())
}

/// A small traced run (4 MiB, layout rebuilt at that size) rendered as
/// a device Gantt chart.
fn gantt_of(make: impl Fn(u64) -> Box<dyn Layout>) -> String {
    let blocks = 4 * 1024 * 1024 / BS as u64;
    let layout = make(blocks);
    let mut sim = Simulation::new();
    sim.enable_trace();
    wren_bank(&mut sim, DEVICES, SchedPolicy::Fifo);
    sim.add_proc(windowed_script(read_reqs(&*layout, 0, blocks, REQ), WINDOW));
    pario_bench::gantt::render(&sim.run(), 64)
}

fn main() {
    banner(
        "E5 (global view of PS vs striped)",
        "the global (sequential) view of a striped file enjoys I/O \
         parallelism; the PS organization's global view visits one disk \
         after another with none",
    );
    let blocks = FILE_BYTES / BS as u64;

    let striped = Striped::new(DEVICES, 16);
    let interleaved = Striped::interleaved(DEVICES, 64);
    let partitioned = Partitioned::uniform(blocks, DEVICES, DEVICES);

    let mut t = Table::new(&["placement", "read time", "throughput", "mean util", "vs PS"]);
    let (ps_t, ps_r, ps_u) = global_read(&partitioned);
    for (name, res) in [
        ("S  (striped, 64 KiB units)", global_read(&striped)),
        ("IS (interleaved clusters)", global_read(&interleaved)),
        ("PS (partitioned)", (ps_t, ps_r, ps_u)),
    ] {
        let (time, tput, util) = res;
        t.row(&[
            name.to_string(),
            secs(time),
            rate(tput),
            format!("{:.0}%", util * 100.0),
            format!("{:.2}x", ps_t / time),
        ]);
    }
    t.print();
    save_json("e5_global_view", &t);
    println!("\nDevice timelines for a 4 MiB read (█ = servicing):");
    println!(
        "striped:\n{}",
        gantt_of(|_| Box::new(Striped::new(DEVICES, 16)))
    );
    println!(
        "partitioned (PS):\n{}",
        gantt_of(|blocks| Box::new(Partitioned::uniform(blocks, DEVICES, DEVICES)))
    );
    println!(
        "\nShape: striped and interleaved placements overlap all four \
         drives under one sequential reader; the PS file is read one \
         partition (one drive) at a time, pinning throughput to a single \
         drive's rate — the paper's stated exception."
    );
}
