//! E10 — §5: "In many algorithms, data along partition boundaries is
//! needed by processes on both sides of the boundary… One way of dealing
//! with the problem is to replicate boundary data in both of the
//! adjacent partitions in the file. This will cause difficulties for the
//! global view… An alternative is to cache boundary data in memory (if
//! it will fit). This would be helpful if more than one pass is made
//! through the file."
//!
//! A 1-D Jacobi stencil over a PS file, three ways, on real devices with
//! traffic counters:
//!
//! 1. **naive** — every pass re-reads the partition plus a 1-cell halo
//!    from the neighbours and writes back;
//! 2. **deep halo cached in memory** — read once with halo = passes,
//!    compute all passes in memory (the valid region shrinks by one per
//!    pass), write once;
//! 3. **replicated file** — halo records physically duplicated into each
//!    partition, so every read is partition-local; the de-duplicating
//!    global reader restores a coherent view.
//!
//! Every variant's result is checked against the sequential reference.

use pario_bench::banner;
use pario_bench::table::{save_json, Table};
use pario_core::{create_replicated, read_partition_with_halo, Organization, ParallelFile};
use pario_fs::{Volume, VolumeConfig};
use pario_workloads::Stencil1D;

const CELLS: u64 = 4096;
const PARTS: u32 = 4;
const RECORD: usize = 64;
const RPB: usize = 4;
const PASSES: u32 = 3;

fn volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: PARTS as usize,
        device_blocks: 4096,
        block_size: RECORD * RPB,
    })
    .unwrap()
}

fn make_ps(v: &Volume, name: &str, s: &Stencil1D) -> ParallelFile {
    let org = Organization::PartitionedSeq { partitions: PARTS };
    let pf = ParallelFile::create_sized(v, name, org, RECORD, RPB, CELLS).unwrap();
    for p in 0..PARTS {
        let mut h = pf.partition_handle(p).unwrap();
        let (lo, hi) = h.range();
        for i in lo..hi {
            h.write_next(&s.record(i as usize, RECORD)).unwrap();
        }
    }
    pf
}

fn total_io(v: &Volume) -> (u64, u64) {
    let mut reads = 0;
    let mut writes = 0;
    for d in 0..v.num_devices() {
        let c = v.device(d).counters();
        reads += c.reads;
        writes += c.writes;
    }
    (reads, writes)
}

fn check(cells: &[f64], reference: &Stencil1D) {
    assert_eq!(cells.len(), reference.cells.len());
    for (i, (&a, &b)) in cells.iter().zip(&reference.cells).enumerate() {
        assert!((a - b).abs() < 1e-9, "cell {i}: {a} vs {b}");
    }
}

/// Strategy 1: per-pass halo re-read.
fn naive(v: &Volume, s0: &Stencil1D) -> (u64, u64, Vec<f64>) {
    let pf = make_ps(v, "naive", s0);
    let before = total_io(v);
    for _ in 0..PASSES {
        // Read phase (all processes), then write phase — a barrier
        // between them, as a parallel program would have.
        let mut updates: Vec<(u32, Vec<f64>)> = Vec::new();
        for p in 0..PARTS {
            let region = read_partition_with_halo(&pf, p, 1).unwrap();
            let (lo, hi) = region.own_range();
            let val = |i: u64| -> f64 {
                let j = i.clamp(
                    region.first_record(),
                    region.first_record() + region.len_records() - 1,
                );
                Stencil1D::parse(region.record(j))
            };
            let new: Vec<f64> = (lo..hi)
                .map(|i| {
                    let l = if i == 0 { val(0) } else { val(i - 1) };
                    let r = if i + 1 == CELLS { val(i) } else { val(i + 1) };
                    (l + val(i) + r) / 3.0
                })
                .collect();
            updates.push((p, new));
        }
        for (p, new) in updates {
            let h = pf.partition_handle(p).unwrap();
            for (k, val) in new.iter().enumerate() {
                let mut rec = vec![0u8; RECORD];
                rec[..8].copy_from_slice(&val.to_le_bytes());
                h.write_at(k as u64, &rec).unwrap();
            }
        }
    }
    let after = total_io(v);
    // Collect final state.
    let mut cells = vec![0.0; CELLS as usize];
    let mut r = pf.global_reader();
    let mut buf = vec![0u8; RECORD];
    let mut i = 0;
    while r.read_record(&mut buf).unwrap() {
        cells[i] = Stencil1D::parse(&buf);
        i += 1;
    }
    (after.0 - before.0, after.1 - before.1, cells)
}

/// Strategy 2: deep halo (width = PASSES) read once, computed in memory.
fn deep_halo(v: &Volume, s0: &Stencil1D) -> (u64, u64, Vec<f64>) {
    let pf = make_ps(v, "deep", s0);
    let before = total_io(v);
    let mut cells = vec![0.0; CELLS as usize];
    // All processes read before anyone writes back (in a real parallel
    // run the reads and the final writes are separated by the compute
    // phase anyway; processing sequentially here must not let partition
    // 0's results leak into partition 1's halo).
    let regions: Vec<_> = (0..PARTS)
        .map(|p| read_partition_with_halo(&pf, p, u64::from(PASSES)).unwrap())
        .collect();
    for (p, region) in regions.into_iter().enumerate() {
        let p = p as u32;
        let (own_lo, own_hi) = region.own_range();
        let first = region.first_record();
        let mut local: Vec<f64> = (0..region.len_records())
            .map(|k| Stencil1D::parse(region.record(first + k)))
            .collect();
        // k passes in memory; after each, one cell at each *interior*
        // edge of the local window becomes stale and is excluded by the
        // shrinking valid range.
        let n = local.len();
        for _ in 0..PASSES {
            let old = local.clone();
            let at = |i: isize| -> f64 {
                // Clamp only at the true file boundaries.
                let gi = first as isize + i;
                let gi = gi.clamp(0, CELLS as isize - 1);
                old[(gi - first as isize).clamp(0, n as isize - 1) as usize]
            };
            for i in 0..n as isize {
                local[i as usize] = (at(i - 1) + at(i) + at(i + 1)) / 3.0;
            }
        }
        // Only the own range is guaranteed valid after PASSES sweeps.
        let h = pf.partition_handle(p).unwrap();
        for gi in own_lo..own_hi {
            let val = local[(gi - first) as usize];
            let mut rec = vec![0u8; RECORD];
            rec[..8].copy_from_slice(&val.to_le_bytes());
            h.write_at(gi - own_lo, &rec).unwrap();
            cells[gi as usize] = val;
        }
    }
    let after = total_io(v);
    (after.0 - before.0, after.1 - before.1, cells)
}

/// Strategy 3: boundary records replicated in the file; each pass reads
/// only partition-local data (halo included), then the replicated file
/// is rebuilt for the next pass.
fn replicated(v: &Volume, s0: &Stencil1D) -> (u64, u64, u64, Vec<f64>) {
    let mut pf = make_ps(v, "rep-src", s0);
    let before = total_io(v);
    let mut overhead = 0;
    for pass in 0..PASSES {
        let rep = create_replicated(v, &format!("rep{pass}"), &pf, PARTS, 1).unwrap();
        overhead = rep.overhead_records();
        let next = make_ps(
            v,
            &format!("rep-next{pass}"),
            &Stencil1D {
                cells: vec![0.0; CELLS as usize],
            },
        );
        for p in 0..PARTS {
            let region = rep.read_partition(p).unwrap();
            let (lo, hi) = region.own_range();
            let val = |i: u64| -> f64 {
                let j = i.clamp(
                    region.first_record(),
                    region.first_record() + region.len_records() - 1,
                );
                Stencil1D::parse(region.record(j))
            };
            let h = next.partition_handle(p).unwrap();
            for i in lo..hi {
                let l = if i == 0 { val(0) } else { val(i - 1) };
                let r = if i + 1 == CELLS { val(i) } else { val(i + 1) };
                let out = (l + val(i) + r) / 3.0;
                let mut rec = vec![0u8; RECORD];
                rec[..8].copy_from_slice(&out.to_le_bytes());
                h.write_at(i - lo, &rec).unwrap();
            }
        }
        v.remove(&format!("rep{pass}")).unwrap();
        pf = next;
    }
    let after = total_io(v);
    let mut cells = vec![0.0; CELLS as usize];
    let mut r = pf.global_reader();
    let mut buf = vec![0u8; RECORD];
    let mut i = 0;
    while r.read_record(&mut buf).unwrap() {
        cells[i] = Stencil1D::parse(&buf);
        i += 1;
    }
    (after.0 - before.0, after.1 - before.1, overhead, cells)
}

fn main() {
    banner(
        "E10 (partition-boundary data)",
        "replicate boundary data in the file, or cache it in memory; \
         caching pays off over multiple passes, replication costs storage \
         and global-view coherence work",
    );
    println!(
        "{CELLS}-cell Jacobi stencil, {PARTS} partitions, {PASSES} passes; \
         all results verified against the sequential reference\n"
    );
    let s0 = Stencil1D::random(CELLS as usize, 11);
    let reference = s0.run(PASSES);

    let v = volume();
    let (nr, nw, cells) = naive(&v, &s0);
    check(&cells, &reference);
    let (dr, dw, cells) = deep_halo(&v, &s0);
    check(&cells, &reference);
    let (rr, rw, overhead, cells) = replicated(&v, &s0);
    check(&cells, &reference);

    let mut t = Table::new(&[
        "strategy",
        "block reads",
        "block writes",
        "storage overhead",
        "result",
    ]);
    t.row(&[
        "naive halo re-read /pass".into(),
        nr.to_string(),
        nw.to_string(),
        "0".into(),
        "exact".into(),
    ]);
    t.row(&[
        "deep halo, in-memory".into(),
        dr.to_string(),
        dw.to_string(),
        "0".into(),
        "exact".into(),
    ]);
    t.row(&[
        "replicated boundaries".into(),
        rr.to_string(),
        rw.to_string(),
        format!("{overhead} records"),
        "exact".into(),
    ]);
    t.print();
    save_json("e10_boundary", &t);
    println!(
        "\nShape: in-memory caching with a deep halo does one read and one \
         write regardless of pass count — the clear winner when the \
         partition fits in memory, as the paper suggests. Replication \
         makes every read partition-local but pays {overhead} duplicate \
         records per generation plus the copy traffic to maintain them; \
         its global view needs the de-duplicating reader."
    );
}
