//! E19 — the scale harness: open-loop load, the overload knee, and the
//! admission fast path.
//!
//! Every service-layer experiment so far was closed-loop: clients wait
//! for each reply, so offered load politely adapts to the service rate
//! and overload is invisible. E19 drives the server **open-loop** — a
//! fixed arrival schedule from [`OpenLoop`], a shared fetch-add cursor
//! so no scheduled arrival is stranded behind a slow worker, and per-op
//! latency measured from each operation's *intended* start (coordinated-
//! omission safe). The experiment demonstrates, and *asserts*:
//!
//! * **The admission fast path pays.** At 64 concurrent sessions over an
//!   8-permit limit, saturation throughput with the packed-atomic
//!   admission ([`AdmissionKind::Fast`]) beats the pre-optimization
//!   big-mutex + `notify_all` baseline ([`AdmissionKind::LegacyMutex`])
//!   by at least [`SPEEDUP_BOUND`]x — the herd of futile wakeups per
//!   freed permit is the measured difference.
//! * **The open-loop knee exists.** Sweeping offered rate from 0.25x to
//!   4x of measured saturation, p99 latency climbs a cliff past
//!   saturation (at least [`KNEE_BOUND`]x from the lowest to the highest
//!   rate) while sub-saturation goodput tracks the offered rate.
//! * **Goodput accounting adds up.** `AdmissionStats::total_admitted`
//!   equals the operations driven, so achieved rates come straight from
//!   the server, and the same counter crosses the wire in the `pario-net`
//!   lane's `StatsSummary`.
//!
//! Set `E19_SMOKE=1` for a CI-sized run (same lanes and assertions,
//! fewer operations per lane).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pario_bench::table::{save_json, Bench, Table};
use pario_bench::{banner, BS};
use pario_core::{Organization, ParallelFile};
use pario_disk::{DeviceRef, FaultDevice, FaultPlan, MemDisk};
use pario_fs::Volume;
use pario_layout::LayoutSpec;
use pario_net::{NetClient, NetConfig, NetServer};
use pario_server::{AdmissionKind, LatencyHistogram, Saturation, Server, ServerConfig};
use pario_workloads::{OpenLoop, OpenLoopPlan};

/// Concurrent sessions (and worker threads) driving the server — the
/// oversubscription the acceptance criterion names.
const SESSIONS: usize = 64;
/// Admission limit: 8x oversubscribed by the session population.
const LIMIT: usize = 8;
/// Records in the GDA file the load addresses.
const RECORDS: u64 = 2048;
/// Required saturation speedup of Fast over LegacyMutex admission.
const SPEEDUP_BOUND: f64 = 1.3;
/// Required p99 climb from the 0.25x lane to the 4x lane.
const KNEE_BOUND: f64 = 4.0;
/// Required goodput fraction of offered load below saturation.
const GOODPUT_BOUND: f64 = 0.7;
/// Required p99 climb across the net lane's below/above-saturation pair.
const NET_KNEE_BOUND: f64 = 1.5;
/// An offered rate far past any achievable throughput: the schedule is
/// due "immediately", so the run measures pure saturation throughput.
const FLOOD_RATE: f64 = 5e7;
/// TCP connections in the net lane.
const NET_CONNS: usize = 8;

fn smoke() -> bool {
    std::env::var("E19_SMOKE").is_ok()
}

/// A server over 4 undelayed in-memory devices (I/O-node fronted) with a
/// `RECORDS`-record GDA file — the per-op work is a block read, cheap
/// enough that the admission/completion path is what's being measured.
fn make_server(kind: AdmissionKind) -> Server {
    let devices: Vec<DeviceRef> = (0..4)
        .map(|i| Arc::new(MemDisk::named(&format!("mem{i}"), 2048, BS)) as DeviceRef)
        .collect();
    let volume = Volume::new_with_io_nodes(devices).unwrap();
    let pf = ParallelFile::create(&volume, "scale", Organization::GlobalDirect, BS, 1).unwrap();
    let data = vec![7u8; RECORDS as usize * BS];
    pf.raw().write_span(0, &data).unwrap();
    pf.raw().set_len_records(RECORDS).unwrap();
    Server::new(
        volume,
        ServerConfig {
            max_in_flight: LIMIT,
            saturation: Saturation::Block,
            admission: kind,
        },
    )
}

/// Park until `due_nanos` past `start`: sleep out large gaps, yield the
/// rest — 64 workers on small hosts must not spin-burn the core that
/// the server needs.
fn wait_until(start: Instant, due_nanos: u64) {
    loop {
        let now = start.elapsed().as_nanos() as u64;
        if now >= due_nanos {
            return;
        }
        let gap = due_nanos - now;
        if gap > 2_000_000 {
            std::thread::sleep(Duration::from_nanos(gap - 1_000_000));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Drive `plan` with `workers` threads pulling operations off a shared
/// fetch-add cursor. Each op waits for its intended start, runs, and
/// records latency **from the intended start** into `hist` — a stalled
/// server cannot hide the queueing delay it causes. `setup` builds each
/// worker's op closure (session, handle, buffer) on its own thread.
/// Returns elapsed seconds for the whole drain.
fn drive<S, F>(plan: &OpenLoopPlan, workers: usize, hist: &LatencyHistogram, setup: S) -> f64
where
    S: Fn(usize) -> F + Sync,
    F: FnMut(u64, bool),
{
    let cursor = AtomicU64::new(0);
    let total = plan.arrivals.len() as u64;
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let cursor = &cursor;
            let setup = &setup;
            s.spawn(move |_| {
                let mut op = setup(w);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let due = plan.arrivals[i as usize];
                    wait_until(t0, due);
                    let (rec, is_write) = plan.ops[i as usize];
                    op(rec, is_write);
                    let done = t0.elapsed().as_nanos() as u64;
                    hist.record(Duration::from_nanos(done.saturating_sub(due).max(1)));
                }
            });
        }
    })
    .unwrap();
    t0.elapsed().as_secs_f64()
}

/// One in-process lane: offer `ops` operations at `rate` against a fresh
/// server of the given admission kind; returns (achieved ops/sec, p50,
/// p99, p999, total_admitted).
fn inproc_lane(
    kind: AdmissionKind,
    rate: f64,
    ops: u64,
) -> (f64, Option<u64>, Option<u64>, Option<u64>, u64) {
    let server = make_server(kind);
    let wl = OpenLoop {
        rate,
        ops,
        records: RECORDS,
        theta: 0.0,
        write_fraction: 0.0,
        seed: 19,
    };
    let plan = wl.plan();
    let hist = LatencyHistogram::default();
    let secs = drive(&plan, SESSIONS, &hist, |_w| {
        let sess = server.connect();
        let g = sess.open_direct("scale").unwrap();
        let mut buf = vec![0u8; BS];
        move |r: u64, _wr: bool| g.read_record(r, &mut buf).unwrap()
    });
    let snap = hist.snapshot();
    let st = server.stats();
    assert_eq!(
        st.total_admitted, ops,
        "goodput accounting: every driven op admitted exactly once"
    );
    (
        ops as f64 / secs,
        pario_server::quantile_nanos(&snap, 0.5),
        pario_server::quantile_nanos(&snap, 0.99),
        pario_server::quantile_nanos(&snap, 0.999),
        st.total_admitted,
    )
}

fn fmt_ns(ns: Option<u64>) -> String {
    match ns {
        Some(ns) if ns >= 1_000_000 => format!("{:.1}ms", ns as f64 / 1e6),
        Some(ns) => format!("{:.0}us", ns as f64 / 1e3),
        None => "-".to_string(),
    }
}

fn main() {
    banner(
        "E19: open-loop scale harness and the admission throughput ceiling",
        "a fixed arrival schedule (coordinated-omission safe) finds the \
         server's saturation point and the latency cliff past it; the \
         packed-atomic admission path raises the ceiling over the old \
         big-mutex + notify_all implementation at 64 sessions",
    );
    let sat_ops: u64 = if smoke() { 4_000 } else { 16_000 };

    // -- Lane 1: saturation throughput, Fast vs LegacyMutex -------------
    let (legacy_sat, _, legacy_p99, _, _) =
        inproc_lane(AdmissionKind::LegacyMutex, FLOOD_RATE, sat_ops);
    let (fast_sat, _, fast_p99, _, _) = inproc_lane(AdmissionKind::Fast, FLOOD_RATE, sat_ops);
    let speedup = fast_sat / legacy_sat;
    println!(
        "\nsaturation at {SESSIONS} sessions over {LIMIT} permits ({sat_ops} ops):\n\
         \x20 legacy mutex+notify_all  {legacy_sat:.0} ops/s  p99 {}\n\
         \x20 fast packed-atomic       {fast_sat:.0} ops/s  p99 {}\n\
         \x20 speedup {speedup:.2}x (required >= {SPEEDUP_BOUND}x)",
        fmt_ns(legacy_p99),
        fmt_ns(fast_p99),
    );

    // -- Lane 2: offered-rate sweep over the fast server ----------------
    let multiples: &[(&str, f64)] = if smoke() {
        &[("x025", 0.25), ("x100", 1.0), ("x400", 4.0)]
    } else {
        &[
            ("x025", 0.25),
            ("x050", 0.5),
            ("x100", 1.0),
            ("x200", 2.0),
            ("x400", 4.0),
        ]
    };
    let mut sweep = Table::new(&[
        "offered",
        "rate/s",
        "achieved/s",
        "goodput",
        "p50",
        "p99",
        "p999",
    ]);
    let mut bench = Bench::new();
    bench
        .label("experiment", "e19_scale")
        .int("sessions", SESSIONS as u64)
        .int("limit", LIMIT as u64)
        .num("sat_legacy_ops_per_sec", legacy_sat)
        .num("sat_fast_ops_per_sec", fast_sat)
        .num("admission_saturation_speedup", speedup);
    let mut low_p99 = None;
    let mut high_p99 = None;
    let mut low_goodput = 0.0;
    for &(tag, m) in multiples {
        let rate = fast_sat * m;
        let ops = if smoke() {
            ((rate * 0.3) as u64).clamp(500, 4_000)
        } else {
            ((rate * 0.8) as u64).clamp(2_000, 20_000)
        };
        let (achieved, p50, p99, p999, _) = inproc_lane(AdmissionKind::Fast, rate, ops);
        let goodput = achieved / rate;
        if tag == "x025" {
            low_p99 = p99;
            low_goodput = goodput;
        }
        if tag == "x400" {
            high_p99 = p99;
        }
        sweep.row(&[
            format!("{m:.2}x sat"),
            format!("{rate:.0}"),
            format!("{achieved:.0}"),
            format!("{:.0}%", goodput * 100.0),
            fmt_ns(p50),
            fmt_ns(p99),
            fmt_ns(p999),
        ]);
        bench
            .num(&format!("sweep_{tag}_offered"), rate)
            .num(&format!("sweep_{tag}_achieved"), achieved)
            .int(&format!("sweep_{tag}_p50_nanos"), p50.unwrap_or(0))
            .int(&format!("sweep_{tag}_p99_nanos"), p99.unwrap_or(0))
            .int(&format!("sweep_{tag}_p999_nanos"), p999.unwrap_or(0));
    }
    println!("\noffered-rate sweep (fast admission, {SESSIONS} sessions):");
    sweep.print();
    save_json("e19_scale", &sweep);
    let knee = high_p99.unwrap_or(0) as f64 / low_p99.unwrap_or(1).max(1) as f64;
    println!("knee: p99 grows {knee:.1}x from 0.25x to 4x offered (required >= {KNEE_BOUND}x)");

    // -- Lane 3: the same discipline over pario-net ---------------------
    let net_sat_ops: u64 = if smoke() { 1_500 } else { 6_000 };
    let net_lane = |rate: f64, ops: u64| {
        let net = NetServer::bind_tcp(
            "127.0.0.1:0",
            make_server(AdmissionKind::Fast),
            NetConfig::default(),
        )
        .unwrap();
        let addr = net.local_addr().unwrap().to_string();
        let wl = OpenLoop {
            rate,
            ops,
            records: RECORDS,
            theta: 0.0,
            write_fraction: 0.0,
            seed: 91,
        };
        let plan = wl.plan();
        let hist = LatencyHistogram::default();
        let addr_ref = &addr;
        let secs = drive(&plan, NET_CONNS, &hist, |_w| {
            let client = NetClient::connect_tcp(addr_ref).unwrap();
            let g = client.open_direct("scale").unwrap();
            let mut buf = vec![0u8; BS];
            move |r: u64, _wr: bool| {
                g.read_record(r, &mut buf).unwrap();
                // `client` must outlive the handle: dropping it closes
                // the connection under the ops still in flight.
                let _ = &client;
            }
        });
        let snap = hist.snapshot();
        let admitted = NetClient::connect_tcp(&addr).unwrap().stats().unwrap();
        assert_eq!(admitted.total_admitted, ops, "remote goodput accounting");
        (ops as f64 / secs, pario_server::quantile_nanos(&snap, 0.99))
    };
    let (net_sat, _) = net_lane(FLOOD_RATE, net_sat_ops);
    let (net_low_achieved, net_low_p99) =
        net_lane(net_sat * 0.5, ((net_sat * 0.4) as u64).clamp(400, 6_000));
    let (_, net_high_p99) = net_lane(net_sat * 3.0, ((net_sat * 1.2) as u64).clamp(400, 8_000));
    let net_knee = net_high_p99.unwrap_or(0) as f64 / net_low_p99.unwrap_or(1).max(1) as f64;
    let mut net_t = Table::new(&["lane", "offered/s", "achieved/s", "p99"]);
    net_t.row(&[
        "saturation".into(),
        "flood".into(),
        format!("{net_sat:.0}"),
        "-".into(),
    ]);
    net_t.row(&[
        "0.5x sat".into(),
        format!("{:.0}", net_sat * 0.5),
        format!("{net_low_achieved:.0}"),
        fmt_ns(net_low_p99),
    ]);
    net_t.row(&[
        "3x sat".into(),
        format!("{:.0}", net_sat * 3.0),
        "-".into(),
        fmt_ns(net_high_p99),
    ]);
    println!("\nnet lane ({NET_CONNS} TCP connections, fast admission):");
    net_t.print();
    save_json("e19_net", &net_t);
    println!("net knee: p99 grows {net_knee:.1}x (required >= {NET_KNEE_BOUND}x)");

    // -- Lane 4: fault-armed rung — overload and degraded routing at
    // the same time. One shadow-pair device runs a transient schedule
    // with a mid-flood fail-stop; the open-loop flood keeps arriving
    // while the health board walks the device to Failed and reads
    // reroute to the surviving shadow. The rung measures what the
    // saturation ceiling costs when the array is simultaneously
    // overloaded and degraded.
    let degraded_ops: u64 = if smoke() { 2_000 } else { 8_000 };
    let mut devices: Vec<DeviceRef> = (0..4)
        .map(|i| Arc::new(MemDisk::named(&format!("dmem{i}"), 2048, BS)) as DeviceRef)
        .collect();
    let (fault, wrapped) = FaultDevice::wrap(
        devices[1].clone(),
        FaultPlan {
            seed: 1919,
            transient_rate: 0.05,
            fail_after: Some(degraded_ops / 8),
            ..FaultPlan::default()
        },
    );
    devices[1] = wrapped;
    fault.set_armed(false);
    let volume = Volume::new(devices).unwrap();
    let pf = ParallelFile::create_with_layout(
        &volume,
        "scale",
        Organization::GlobalDirect,
        BS,
        1,
        LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
            devices: 2,
            unit: 1,
        })),
        None,
    )
    .unwrap();
    pf.raw()
        .write_span(0, &vec![7u8; RECORDS as usize * BS])
        .unwrap();
    pf.raw().set_len_records(RECORDS).unwrap();
    let server = Server::new(
        volume.clone(),
        ServerConfig {
            max_in_flight: LIMIT,
            saturation: Saturation::Block,
            admission: AdmissionKind::Fast,
        },
    );
    fault.set_armed(true);
    let wl = OpenLoop {
        rate: FLOOD_RATE,
        ops: degraded_ops,
        records: RECORDS,
        theta: 0.0,
        write_fraction: 0.0,
        seed: 119,
    };
    let plan = wl.plan();
    let hist = LatencyHistogram::default();
    let degraded_secs = drive(&plan, SESSIONS, &hist, |_w| {
        let sess = server.connect();
        let g = sess.open_direct("scale").unwrap();
        let mut buf = vec![0u8; BS];
        move |r: u64, _wr: bool| g.read_record(r, &mut buf).unwrap()
    });
    fault.set_armed(false);
    let degraded_sat = degraded_ops as f64 / degraded_secs;
    let degraded_p99 = pario_server::quantile_nanos(&hist.snapshot(), 0.99);
    let counts = fault.counts();
    let degraded_ratio = degraded_sat / fast_sat;
    println!(
        "\nfault-armed rung ({SESSIONS} sessions flooding a shadowed volume):\n\
         \x20 degraded saturation  {degraded_sat:.0} ops/s  p99 {}  \
         ({:.0}% of the healthy ceiling)\n\
         \x20 schedule: {} transients, fail-stop after {} ops \
         ({} refused post-trip), every read completed via rerouting",
        fmt_ns(degraded_p99),
        degraded_ratio * 100.0,
        counts.transients,
        degraded_ops / 8,
        counts.failed_ops,
    );
    assert!(
        counts.transients > 0 && counts.failed_ops > 0,
        "the fault schedule must actually bite mid-flood \
         (transients {}, refused {})",
        counts.transients,
        counts.failed_ops
    );
    assert!(
        volume.is_degraded(),
        "the fail-stop must surface on the health board during overload"
    );

    bench
        .num("knee_p99_ratio", knee)
        .num("sweep_x025_goodput", low_goodput)
        .num("net_sat_ops_per_sec", net_sat)
        .num("net_knee_p99_ratio", net_knee)
        .int("net_low_p99_nanos", net_low_p99.unwrap_or(0))
        .int("net_high_p99_nanos", net_high_p99.unwrap_or(0))
        .num("degraded_sat_ops_per_sec", degraded_sat)
        .num("degraded_vs_healthy_ratio", degraded_ratio)
        .int("degraded_p99_nanos", degraded_p99.unwrap_or(0))
        .int("degraded_transients", counts.transients)
        .int("degraded_refused_ops", counts.failed_ops)
        .save("e19_scale");

    // The headline claims, asserted so CI catches a regression.
    assert!(
        speedup >= SPEEDUP_BOUND,
        "fast admission must raise saturation throughput >= {SPEEDUP_BOUND}x \
         over the legacy mutex+notify_all path at {SESSIONS} sessions \
         (got {speedup:.2}x)"
    );
    assert!(
        knee >= KNEE_BOUND,
        "open-loop p99 must climb >= {KNEE_BOUND}x past saturation \
         (got {knee:.1}x)"
    );
    assert!(
        low_goodput >= GOODPUT_BOUND,
        "below saturation, achieved rate must track offered \
         (got {:.0}%)",
        low_goodput * 100.0
    );
    assert!(
        net_knee >= NET_KNEE_BOUND,
        "the net lane must show the same overload cliff \
         (got {net_knee:.1}x)"
    );
    println!("\nE19 assertions hold: admission speedup, overload knee, goodput accounting.");
}
