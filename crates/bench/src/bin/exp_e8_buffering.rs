//! E8 — §4: "Initial experiments using the S and SS organizations have
//! shown that buffering overheads can be a significant factor in
//! limiting speedups. The sequential organizations can mitigate this
//! effect through the use of multiple buffering and dedicated I/O
//! processors. Since the order of accesses is predictable, reading ahead
//! and deferred writing can be used to overlap I/O operations with
//! computation."
//!
//! Real threads: a consumer computes over blocks prefetched by a
//! dedicated I/O thread ([`ReadAhead`]) from a device with a calibrated
//! service time. The buffer count sweeps 1 (synchronous) to 8; the
//! compute:I/O ratio sweeps around the balanced point where overlap pays
//! the most. A write-behind mirror runs the deferred-write side.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pario_bench::banner;
use pario_bench::table::{save_json, secs, Table};
use pario_buffer::{ReadAhead, WriteBehind};
use pario_disk::{DeviceRef, MemDisk};

const BLOCK: usize = 4096;
const BLOCKS: u64 = 24;
const IO_MS: u64 = 2;

fn spin(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

fn device() -> DeviceRef {
    Arc::new(MemDisk::new(BLOCKS, BLOCK).with_delay(Duration::from_millis(IO_MS)))
}

fn read_side(nbufs: usize, compute: Duration) -> Duration {
    let dev = device();
    let mut ra = ReadAhead::new(dev, (0..BLOCKS).collect(), nbufs);
    let t0 = Instant::now();
    while let Some(res) = ra.next() {
        let (_, buf) = res.expect("read");
        spin(compute);
        ra.recycle(buf);
    }
    t0.elapsed()
}

fn write_side(nbufs: usize, compute: Duration) -> Duration {
    let dev = device();
    let wb = WriteBehind::new(dev, nbufs);
    let t0 = Instant::now();
    for b in 0..BLOCKS {
        let mut buf = wb.buffer();
        spin(compute); // produce the block
        buf.fill(b as u8);
        wb.submit(b, buf);
    }
    wb.finish().expect("flush");
    t0.elapsed()
}

fn main() {
    banner(
        "E8 (multiple buffering and I/O overlap)",
        "single buffering serialises I/O and computation; double/multiple \
         buffering on a dedicated I/O thread overlaps them, up to 2x at a \
         balanced compute:I/O ratio",
    );
    println!(
        "{BLOCKS} blocks of {BLOCK} B, device service {IO_MS} ms per \
         block (slept, as a real device would); compute is spun\n"
    );

    println!("Read-ahead:");
    let mut t = Table::new(&[
        "compute:I/O",
        "1 buffer",
        "2 buffers",
        "4 buffers",
        "8 buffers",
        "best speedup",
    ]);
    for &(num, den, label) in &[(1u64, 2u64, "0.5"), (1, 1, "1.0"), (2, 1, "2.0")] {
        let compute = Duration::from_millis(IO_MS * num / den);
        let times: Vec<Duration> = [1usize, 2, 4, 8]
            .iter()
            .map(|&n| read_side(n, compute))
            .collect();
        let best = times[1..]
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(f64::MAX, f64::min);
        t.row(&[
            label.to_string(),
            secs(times[0].as_secs_f64()),
            secs(times[1].as_secs_f64()),
            secs(times[2].as_secs_f64()),
            secs(times[3].as_secs_f64()),
            format!("{:.2}x", times[0].as_secs_f64() / best),
        ]);
    }
    t.print();
    save_json("e8_readahead", &t);

    println!("\nWrite-behind (deferred writing), compute:I/O = 1.0:");
    let mut t = Table::new(&["buffers", "wall time", "speedup vs 1"]);
    let compute = Duration::from_millis(IO_MS);
    let base = write_side(1, compute);
    for &n in &[1usize, 2, 4] {
        let d = write_side(n, compute);
        t.row(&[
            n.to_string(),
            secs(d.as_secs_f64()),
            format!("{:.2}x", base.as_secs_f64() / d.as_secs_f64()),
        ]);
    }
    t.print();
    save_json("e8_writebehind", &t);
    println!(
        "\nShape: at compute:I/O = 1 double buffering approaches the ideal \
         2x (overlap hides whichever side is shorter); away from the \
         balanced point the bound is (compute+io)/max(compute,io). Extra \
         buffers beyond two add little for steady rates — they absorb \
         burstiness, not throughput."
    );
}
