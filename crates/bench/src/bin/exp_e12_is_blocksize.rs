//! E12 — §4: "IS type files would have a similar problem [to PS's
//! serialized global view] if block sizes approached or exceeded the
//! buffer space available."
//!
//! A sequential reader with a *fixed buffer budget* consumes an IS file
//! through the global view while the IS cluster (file block) size sweeps
//! past the budget. While clusters are small, the read-ahead window
//! spans several devices and overlaps them; once one cluster exceeds the
//! whole budget, the window sits inside a single device at a time and
//! throughput collapses to one drive.

use pario_bench::simx::{read_reqs, windowed_script, wren_bank};
use pario_bench::table::{rate, save_json, secs, Table};
use pario_bench::{banner, BS};
use pario_disk::SchedPolicy;
use pario_layout::Striped;
use pario_sim::Simulation;

const FILE_BYTES: u64 = 32 * 1024 * 1024;
const DEVICES: usize = 4;
/// Buffer budget: 32 volume blocks (128 KiB) of read-ahead window.
const BUDGET_BLOCKS: u64 = 32;
const REQ: u64 = 8; // 32 KiB per request

fn run(cluster_blocks: u64) -> (f64, f64, f64) {
    let blocks = FILE_BYTES / BS as u64;
    let layout = Striped::interleaved(DEVICES, cluster_blocks);
    let mut sim = Simulation::new();
    wren_bank(&mut sim, DEVICES, SchedPolicy::Fifo);
    let reqs = read_reqs(&layout, 0, blocks, REQ);
    // The window is the buffer budget expressed in requests.
    let window = (BUDGET_BLOCKS / REQ).max(1) as usize;
    sim.add_proc(windowed_script(reqs, window));
    let r = sim.run();
    let t = r.makespan.as_secs_f64();
    (t, FILE_BYTES as f64 / t, r.mean_utilization())
}

fn main() {
    banner(
        "E12 (IS global view vs buffer space)",
        "the IS global view parallelises while clusters fit the buffer \
         space; clusters at or beyond the buffer budget serialise it",
    );
    println!(
        "4 drives, 32 MiB file, read-ahead budget {} blocks \
         ({} KiB)\n",
        BUDGET_BLOCKS,
        BUDGET_BLOCKS * BS as u64 / 1024
    );
    let mut t = Table::new(&[
        "cluster (blocks)",
        "cluster / budget",
        "read time",
        "throughput",
        "mean util",
    ]);
    for cluster in [4u64, 8, 16, 32, 64, 128] {
        let (time, tput, util) = run(cluster);
        t.row(&[
            cluster.to_string(),
            format!("{:.2}", cluster as f64 / BUDGET_BLOCKS as f64),
            secs(time),
            rate(tput),
            format!("{:.0}%", util * 100.0),
        ]);
    }
    t.print();
    save_json("e12_is_blocksize", &t);
    println!(
        "\nShape: throughput falls as the cluster grows toward the \
         budget and bottoms out at a single drive's rate once one \
         cluster consumes the whole window — the paper's predicted \
         failure mode for large IS blocks."
    );
}
