//! E1 — regenerate **Figure 1**: "Internal organizations of sequential
//! parallel files. Blocks are labeled to indicate representative access
//! patterns for three processes."
//!
//! Drives the real handle types of `pario-core` over a 12-file-block file
//! with three processes, records which process touches each file block,
//! and renders the four subfigures. Assertions verify the defining
//! property of each organization.

use pario_bench::banner;
use pario_core::{Organization, ParallelFile};
use pario_fs::{Volume, VolumeConfig};

const RECORD: usize = 64;
const RPB: usize = 4; // records per file block
const BLOCKS: u64 = 12;
const RECORDS: u64 = BLOCKS * RPB as u64;
const PROCS: u32 = 3;

fn volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 3,
        device_blocks: 512,
        block_size: RECORD * RPB, // one volume block per file block
    })
    .expect("volume")
}

/// Pretty-print a block→process map in the figure's style.
fn render(title: &str, owner: &[Option<u32>]) {
    print!("{title:<28} ");
    for o in owner {
        match o {
            Some(p) => print!("[P{}]", p + 1),
            None => print!("[  ]"),
        }
    }
    println!();
}

fn fill(pf: &ParallelFile) {
    let mut w = pf.global_writer();
    for r in 0..RECORDS {
        w.write_record(&[r as u8; RECORD]).expect("write");
    }
    w.finish().expect("finish");
}

/// (a) Type S: the whole file read in order by a single process.
fn figure_s(v: &Volume) -> Vec<Option<u32>> {
    let pf = ParallelFile::create(v, "fig-s", Organization::Sequential, RECORD, RPB).unwrap();
    fill(&pf);
    let mut owner = vec![None; BLOCKS as usize];
    let mut r = pf.global_reader();
    let mut buf = vec![0u8; RECORD];
    let mut idx = 0u64;
    while r.read_record(&mut buf).unwrap() {
        owner[(idx / RPB as u64) as usize] = Some(0);
        idx += 1;
    }
    assert_eq!(idx, RECORDS);
    assert!(
        owner.iter().all(|&o| o == Some(0)),
        "S: one process, all blocks"
    );
    owner
}

/// (b) Type PS: contiguous blocks, one partition per process.
fn figure_ps(v: &Volume) -> Vec<Option<u32>> {
    let org = Organization::PartitionedSeq { partitions: PROCS };
    let pf = ParallelFile::create_sized(v, "fig-ps", org, RECORD, RPB, RECORDS).unwrap();
    // Each process writes its own partition.
    let mut owner = vec![None; BLOCKS as usize];
    for p in 0..PROCS {
        let mut h = pf.partition_handle(p).unwrap();
        let (lo, hi) = h.range();
        for g in lo..hi {
            h.write_next(&[g as u8; RECORD]).unwrap();
            owner[(g / RPB as u64) as usize] = Some(p);
        }
    }
    // Defining property: each process's blocks are contiguous.
    for p in 0..PROCS {
        let idxs: Vec<usize> = owner
            .iter()
            .enumerate()
            .filter(|(_, &o)| o == Some(p))
            .map(|(i, _)| i)
            .collect();
        assert!(
            idxs.windows(2).all(|w| w[1] == w[0] + 1),
            "PS: partition {p} contiguous"
        );
    }
    owner
}

/// (c) Type IS: blocks at a constant stride of three.
fn figure_is(v: &Volume) -> Vec<Option<u32>> {
    let org = Organization::InterleavedSeq { processes: PROCS };
    let pf = ParallelFile::create(v, "fig-is", org, RECORD, RPB).unwrap();
    let mut owner = vec![None; BLOCKS as usize];
    for p in 0..PROCS {
        let mut h = pf.interleaved_handle(p).unwrap();
        for _ in 0..BLOCKS / u64::from(PROCS) {
            for c in 0..RPB as u64 {
                let fb = h.current_record() / RPB as u64;
                h.write_next(&[c as u8; RECORD]).unwrap();
                owner[fb as usize] = Some(p);
            }
        }
    }
    for (fb, &o) in owner.iter().enumerate() {
        assert_eq!(o, Some(fb as u32 % PROCS), "IS: stride-3 ownership");
    }
    owner
}

/// (d) Type SS: the next record goes to whichever process asks next.
/// Per the paper, "this organization makes most sense when there is a
/// single record per block", so this subfigure uses one record per
/// block and a fixed (but irregular) arrival order — any order is
/// legal; the file guarantees exhaustive, exactly-once delivery.
fn figure_ss(v: &Volume) -> Vec<Option<u32>> {
    let block_bytes = RECORD * RPB;
    let pf = ParallelFile::create(
        v,
        "fig-ss",
        Organization::SelfScheduledSeq,
        block_bytes, // one record per file block
        1,
    )
    .unwrap();
    let mut w = pf.global_writer();
    for r in 0..BLOCKS {
        w.write_record(&vec![r as u8; block_bytes]).expect("write");
    }
    w.finish().expect("finish");
    let readers: Vec<_> = (0..PROCS)
        .map(|_| pf.self_sched_reader().unwrap())
        .collect();
    let arrival = [1u32, 0, 2, 0, 1, 2, 1, 2, 0, 2, 0, 1];
    let mut owner = vec![None; BLOCKS as usize];
    let mut buf = vec![0u8; block_bytes];
    let mut served = 0u64;
    for &p in &arrival {
        let idx = readers[p as usize]
            .read_next(&mut buf)
            .unwrap()
            .expect("record available");
        assert_eq!(buf[0], idx as u8, "content matches the claimed record");
        owner[idx as usize] = Some(p);
        served += 1;
    }
    assert_eq!(served, BLOCKS, "SS: every record served exactly once");
    let mut more = vec![0u8; block_bytes];
    assert!(
        readers[0].read_next(&mut more).unwrap().is_none(),
        "exhausted"
    );
    owner
}

fn main() {
    banner(
        "E1 / Figure 1",
        "the four sequential parallel file organizations and their \
         access patterns for three processes",
    );
    let v = volume();
    println!(
        "{} file blocks of {} records each; three processes\n",
        BLOCKS, RPB
    );
    render("(a) Sequential (S):", &figure_s(&v));
    render("(b) Partitioned (PS):", &figure_ps(&v));
    render("(c) Interleaved (IS):", &figure_is(&v));
    render("(d) Self-scheduled (SS):", &figure_ss(&v));
    println!(
        "\nAll four organization invariants verified: S single-reader, \
         PS contiguity, IS stride, SS exactly-once coverage."
    );
}
