//! E18 — the network service layer against the in-process baseline.
//!
//! The same 8-client self-scheduled drain E14 runs in-process is run
//! again through `pario-net`: eight TCP connections to one `NetServer`,
//! each pipelining claims under its credit window. The experiment
//! demonstrates, and *asserts*:
//!
//! * **Semantics survive the wire** — the remote drain delivers every
//!   record exactly once, none torn, exactly like the in-process suite.
//! * **Pipelining hides the network** — on a volume whose devices model
//!   a 400µs service time, remote aggregate throughput lands within
//!   [`REMOTE_FACTOR_BOUND`]x of in-process sessions: device time, not
//!   round trips, stays the bottleneck.
//! * **Connections scale** — a 1→8 connection sweep shows aggregate
//!   throughput climbing with connection count while the server's
//!   latency histogram (p50/p99/p999, fetched over the wire) stays
//!   bounded.
//! * **Depth matters on fast media** — on an *undelayed* volume, where
//!   the round trip is the dominant cost, raising the pipeline depth
//!   1→32 on a single connection raises throughput; synchronous
//!   request/response is the slow shape, not the network itself.

use std::collections::HashSet;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pario_bench::table::{save_json, Bench, Table};
use pario_bench::{banner, BS};
use pario_core::{Organization, ParallelFile};
use pario_disk::{DeviceRef, MemDisk};
use pario_fs::Volume;
use pario_net::{NetClient, NetConfig, NetServer, StatsSummary};
use pario_server::{Server, ServerConfig};

/// Modelled device service time for the "device-bound" lanes (matches
/// E14, so the in-process baseline is directly comparable).
const DELAY: Duration = Duration::from_micros(400);
/// Records in the self-scheduled file for the device-bound lanes.
const RECORDS: u64 = 1200;
/// Records for the undelayed depth-contrast lane (cheap per record, so
/// more of them for a stable measurement).
const FAST_RECORDS: u64 = 4000;
/// The stated bound: pipelined remote throughput must land within this
/// factor of in-process sessions on the device-bound workload.
const REMOTE_FACTOR_BOUND: f64 = 2.0;
/// Pipeline depth the remote drains run at (within the default credit
/// window of 32).
const DEPTH: usize = 8;

fn rec_byte(idx: u64) -> u8 {
    (idx % 251) as u8
}

fn make_server(records: u64, delayed: bool) -> Server {
    let devices: Vec<DeviceRef> = (0..4)
        .map(|i| {
            let d = MemDisk::named(&format!("mem{i}"), 2048, BS);
            let d = if delayed { d.with_delay(DELAY) } else { d };
            Arc::new(d) as DeviceRef
        })
        .collect();
    let volume = Volume::new_with_io_nodes(devices).unwrap();
    let pf = ParallelFile::create(&volume, "queue", Organization::SelfScheduledSeq, BS, 1).unwrap();
    let mut data = vec![0u8; records as usize * BS];
    for i in 0..records {
        data[i as usize * BS..(i as usize + 1) * BS].fill(rec_byte(i));
    }
    pf.raw().write_span(0, &data).unwrap();
    pf.raw().set_len_records(records).unwrap();
    Server::new(volume, ServerConfig::default())
}

/// A fresh volume + server behind a TCP listener. Each lane builds its
/// own so the shared SS cursor starts from zero every time.
fn serve(records: u64, delayed: bool) -> (NetServer, String) {
    let net = NetServer::bind_tcp(
        "127.0.0.1:0",
        make_server(records, delayed),
        NetConfig::default(),
    )
    .unwrap();
    let addr = net.local_addr().unwrap().to_string();
    (net, addr)
}

/// Drain in-process with `clients` sessions; elapsed seconds.
fn drain_inproc(server: &Server, clients: usize, records: u64) -> f64 {
    let seen = Mutex::new(HashSet::with_capacity(records as usize));
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for _ in 0..clients {
            let sess = server.connect();
            let seen = &seen;
            s.spawn(move |_| {
                let q = sess.open_self_sched("queue").unwrap();
                let mut buf = vec![0u8; BS];
                let mut local = Vec::new();
                while let Some(idx) = q.read_next(&mut buf).unwrap() {
                    assert!(buf.iter().all(|&b| b == rec_byte(idx)), "torn record {idx}");
                    local.push(idx);
                }
                let mut seen = seen.lock().unwrap();
                for idx in local {
                    assert!(seen.insert(idx), "record {idx} delivered twice");
                }
            });
        }
    })
    .unwrap();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(seen.into_inner().unwrap().len(), records as usize);
    secs
}

/// Drain over TCP with `clients` connections pipelining `depth` claims;
/// elapsed seconds and a final remote stats snapshot.
fn drain_remote(addr: &str, clients: usize, depth: usize, records: u64) -> (f64, StatsSummary) {
    let seen = Mutex::new(HashSet::with_capacity(records as usize));
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for _ in 0..clients {
            let seen = &seen;
            s.spawn(move |_| {
                let client = NetClient::connect_tcp(addr).unwrap();
                let q = client.open_self_sched("queue").unwrap();
                let mut window = std::collections::VecDeque::with_capacity(depth);
                for _ in 0..depth {
                    window.push_back(q.submit_read_next().unwrap());
                }
                let mut buf = vec![0u8; BS];
                let mut local = Vec::new();
                let mut draining = false;
                while let Some(t) = window.pop_front() {
                    match q.finish_read_next(t, &mut buf).unwrap() {
                        Some(idx) => {
                            assert!(buf.iter().all(|&b| b == rec_byte(idx)), "torn record {idx}");
                            local.push(idx);
                            if !draining {
                                window.push_back(q.submit_read_next().unwrap());
                            }
                        }
                        None => draining = true,
                    }
                }
                let mut seen = seen.lock().unwrap();
                for idx in local {
                    assert!(seen.insert(idx), "record {idx} delivered twice");
                }
            });
        }
    })
    .unwrap();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(seen.into_inner().unwrap().len(), records as usize);
    let stats = NetClient::connect_tcp(addr).unwrap().stats().unwrap();
    (secs, stats)
}

fn fmt_ns(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.0}us", ns as f64 / 1e3),
        None => "-".to_string(),
    }
}

fn main() {
    banner(
        "E18: network service layer (pario-net) vs in-process sessions",
        "the framed wire protocol carries the full session surface over \
         TCP; pipelined claims under per-connection credits keep the \
         devices, not the round trips, as the bottleneck",
    );

    // -- Lane 1: remote vs in-process, device-bound -------------------
    let inproc_secs = {
        let server = make_server(RECORDS, true);
        drain_inproc(&server, 8, RECORDS)
    };
    let (remote_secs, remote_stats) = {
        let (_net, addr) = serve(RECORDS, true);
        drain_remote(&addr, 8, DEPTH, RECORDS)
    };
    let factor = remote_secs / inproc_secs;
    // Offered equals achieved on a Block-policy drain, and the server's
    // cumulative admission count proves it: admitted ops/s (over the
    // wire from StatsSummary) tracks delivered records/s, with the
    // overshoot being the speculative claims pipelining keeps in flight
    // at end-of-file.
    let admitted_rate = remote_stats.total_admitted as f64 / remote_secs;
    println!(
        "\n8-client SS drain, {RECORDS} records, 400us devices:\n\
         \x20 in-process  {:.1}ms  ({:.0} rec/s)\n\
         \x20 remote TCP  {:.1}ms  ({:.0} rec/s)  depth {DEPTH}\n\
         \x20 remote/in-process factor {factor:.2}x (bound {REMOTE_FACTOR_BOUND}x)\n\
         \x20 offered vs achieved: {admitted_rate:.0} ops/s admitted \
         ({} ops for {RECORDS} records)",
        inproc_secs * 1e3,
        RECORDS as f64 / inproc_secs,
        remote_secs * 1e3,
        RECORDS as f64 / remote_secs,
        remote_stats.total_admitted,
    );

    // -- Lane 2: connection sweep, device-bound -----------------------
    let mut sweep = Table::new(&[
        "connections",
        "elapsed",
        "rec/s",
        "speedup",
        "p50",
        "p99",
        "p999",
    ]);
    let mut base = 0.0f64;
    let mut secs_at = Vec::new();
    for &conns in &[1usize, 2, 4, 8] {
        let (_net, addr) = serve(RECORDS, true);
        let (secs, stats) = drain_remote(&addr, conns, DEPTH, RECORDS);
        if conns == 1 {
            base = secs;
        }
        secs_at.push((conns, secs));
        sweep.row(&[
            conns.to_string(),
            format!("{:.1}ms", secs * 1e3),
            format!("{:.0}", RECORDS as f64 / secs),
            format!("{:.2}x", base / secs),
            fmt_ns(stats.p50_nanos),
            fmt_ns(stats.p99_nanos),
            fmt_ns(stats.p999_nanos),
        ]);
    }
    println!("\nconnection sweep ({RECORDS} records, 400us devices, depth {DEPTH}):");
    sweep.print();
    save_json("e18_net_sweep", &sweep);

    // -- Lane 3: pipeline depth on fast media -------------------------
    let mut depth_t = Table::new(&["depth", "elapsed", "rec/s", "vs depth 1"]);
    let mut depth_base = 0.0f64;
    let mut depth_rates = Vec::new();
    for &depth in &[1usize, 4, 16, 32] {
        let (_net, addr) = serve(FAST_RECORDS, false);
        let (secs, _) = drain_remote(&addr, 1, depth, FAST_RECORDS);
        if depth == 1 {
            depth_base = secs;
        }
        depth_rates.push((depth, FAST_RECORDS as f64 / secs));
        depth_t.row(&[
            depth.to_string(),
            format!("{:.1}ms", secs * 1e3),
            format!("{:.0}", FAST_RECORDS as f64 / secs),
            format!("{:.2}x", depth_base / secs),
        ]);
    }
    println!("\npipeline depth, 1 connection ({FAST_RECORDS} records, undelayed devices):");
    depth_t.print();
    save_json("e18_net_depth", &depth_t);

    let sweep8 = secs_at.last().map(|&(_, s)| s).unwrap_or(remote_secs);
    let depth1 = depth_rates[0].1;
    let depth32 = depth_rates.last().map(|&(_, r)| r).unwrap_or(depth1);
    Bench::new()
        .num("inproc_secs_8_clients", inproc_secs)
        .num("remote_secs_8_conns", remote_secs)
        .num("remote_over_inproc_factor", factor)
        .num("remote_factor_bound", REMOTE_FACTOR_BOUND)
        .num("remote_rec_per_sec_8_conns", RECORDS as f64 / remote_secs)
        .num("sweep_rec_per_sec_1_conn", RECORDS as f64 / base)
        .num("sweep_rec_per_sec_8_conns", RECORDS as f64 / sweep8)
        .num("depth1_rec_per_sec_fast", depth1)
        .num("depth32_rec_per_sec_fast", depth32)
        .num("depth_speedup_32_vs_1", depth32 / depth1)
        .int("remote_p99_nanos", remote_stats.p99_nanos.unwrap_or(0))
        .int("remote_p999_nanos", remote_stats.p999_nanos.unwrap_or(0))
        .int("remote_total_admitted", remote_stats.total_admitted)
        .num("remote_admitted_ops_per_sec", admitted_rate)
        .save("e18_net");

    // The headline claims, asserted so CI catches a regression.
    assert!(
        factor <= REMOTE_FACTOR_BOUND,
        "remote drain took {factor:.2}x in-process; the wire must stay \
         within {REMOTE_FACTOR_BOUND}x on a device-bound workload"
    );
    assert!(
        base / sweep8 >= 1.5,
        "8 connections must beat 1 connection by >=1.5x on 4 devices \
         (got {:.2}x)",
        base / sweep8
    );
    assert!(
        depth32 / depth1 >= 1.2,
        "pipelining depth 32 must beat synchronous depth 1 on fast media \
         (got {:.2}x)",
        depth32 / depth1
    );
    println!("\nE18 assertions hold: wire factor, connection scaling, pipelining.");
}
