//! E6 — §4: "For systems with many processors, it may not be practical
//! to allocate a separate storage device for each processor. In this
//! case, blocks belonging to several processes would be allocated to each
//! device. Seek times are likely to cause some performance degradation as
//! the drive services requests from different processes. Work is needed
//! here to determine the best ways to allocate space on the disks to
//! minimize this problem."
//!
//! The ablation the paper calls for: P processes stream over D drives
//! with (a) contiguous per-process allocation vs (b) fine-grained
//! interleaved on-disk allocation, under FIFO and SCAN arm scheduling.

use pario_bench::banner;
use pario_bench::simx::{wren_bank, wren_capacity_blocks};
use pario_bench::table::{save_json, secs, Table};
use pario_disk::SchedPolicy;
use pario_sim::{DiskReq, Op, Simulation};

const BLOCKS_PER_PROC: u64 = 1024; // 4 MiB per process
const CHUNK: u64 = 16; // 64 KiB per request

#[derive(Copy, Clone, PartialEq)]
enum Alloc {
    /// Each co-located process's blocks form one contiguous region.
    Contiguous,
    /// Co-located processes' chunks interleave finely on the platter.
    Interleaved,
}

/// Device-local block address of chunk `k` of co-located slot `slot`
/// (of `slots` processes sharing the device). Contiguous regions are
/// spread across the whole platter, as separate partitions of a large
/// file (or separate files) would be.
fn chunk_addr(alloc: Alloc, slot: u64, slots: u64, k: u64) -> u64 {
    match alloc {
        Alloc::Contiguous => slot * (wren_capacity_blocks() / slots) + k * CHUNK,
        Alloc::Interleaved => (k * slots + slot) * CHUNK,
    }
}

fn run(procs: usize, devices: usize, alloc: Alloc, policy: SchedPolicy) -> (f64, f64) {
    let mut sim = Simulation::new();
    wren_bank(&mut sim, devices, policy);
    let slots = (procs / devices).max(1) as u64;
    for p in 0..procs {
        let dev = p % devices;
        let slot = (p / devices) as u64;
        let mut ops = Vec::new();
        for k in 0..BLOCKS_PER_PROC / CHUNK {
            let addr = chunk_addr(alloc, slot, slots, k);
            ops.push(Op::Io(vec![DiskReq::read(dev, addr, CHUNK as u32)]));
        }
        sim.add_proc(ops);
    }
    let r = sim.run();
    let makespan = r.makespan.as_secs_f64();
    let busy: f64 = r.devices.iter().map(|d| d.busy.as_secs_f64()).sum();
    let seek: f64 = r.devices.iter().map(|d| d.seek.as_secs_f64()).sum();
    (makespan, seek / busy)
}

fn main() {
    banner(
        "E6 (seek degradation with shared devices)",
        "sharing a drive among processes costs seeks; on-disk allocation \
         policy and arm scheduling determine how much",
    );
    const D: usize = 4;
    println!(
        "{D} drives, 4 MiB per process, 64 KiB requests; processes \
         blocking-stream their own data\n"
    );
    let mut t = Table::new(&[
        "procs",
        "procs/drive",
        "allocation",
        "policy",
        "makespan",
        "seek share",
        "slowdown",
    ]);
    let (base, _) = run(D, D, Alloc::Contiguous, SchedPolicy::Fifo);
    for &procs in &[4usize, 8, 16, 32] {
        for (alloc, aname) in [
            (Alloc::Contiguous, "contiguous"),
            (Alloc::Interleaved, "interleaved"),
        ] {
            for (policy, pname) in [(SchedPolicy::Fifo, "FIFO"), (SchedPolicy::Scan, "SCAN")] {
                let (m, seek_share) = run(procs, D, alloc, policy);
                // Per-process-work normalised slowdown vs the private
                // 1-proc-per-drive baseline.
                let slowdown = m / (base * (procs / D) as f64);
                t.row(&[
                    procs.to_string(),
                    (procs / D).to_string(),
                    aname.to_string(),
                    pname.to_string(),
                    secs(m),
                    format!("{:.0}%", seek_share * 100.0),
                    format!("{slowdown:.2}x"),
                ]);
            }
        }
    }
    t.print();
    save_json("e6_seek_degradation", &t);
    println!(
        "\nShape: with one process per drive seeks are negligible; once a \
         drive serves several processes, contiguous (far-apart) regions \
         pay a cross-platter seek on nearly every request (~1.3-1.6x \
         slowdown). Interleaving co-located processes' chunks keeps the \
         arm local and eliminates the penalty; SCAN trims the contiguous \
         loss modestly at these shallow queue depths — the allocation \
         policy is the lever, as the paper's 'work is needed here' \
         anticipated."
    );
}
