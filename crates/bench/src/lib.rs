//! # pario-bench — the experiment harness
//!
//! One binary per experiment in DESIGN.md §5 (`exp_e1_figure1` …
//! `exp_e12_is_blocksize`), each regenerating a figure or quantitative
//! claim of Crockett (1989), plus Criterion microbenches. This library
//! holds the shared pieces: markdown table rendering, result persistence,
//! and builders for simulated device banks and scripted access patterns.

#![warn(missing_docs)]

pub mod gantt;
pub mod simx;
pub mod table;

/// The volume/device block size used by every experiment (4 KiB — eight
/// 512-byte sectors on the modelled drives).
pub const BS: usize = 4096;

/// Print the standard experiment header.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("Paper claim: {claim}\n");
}
