//! ASCII Gantt rendering of simulation traces.
//!
//! Turns a [`SimReport`] trace into a per-device timeline, making device
//! overlap (or its absence — the PS global view) visible at a glance:
//!
//! ```text
//! dev0 |██████░░░░░░░░░░░░░░░░░|
//! dev1 |░░░░░░██████░░░░░░░░░░░|
//! ```

use pario_sim::SimReport;

/// Render the report's trace as one row per device, `width` characters
/// across the full makespan. `█` marks service time, `░` idle time.
pub fn render(report: &SimReport, width: usize) -> String {
    assert!(width >= 2);
    let span = report.makespan.as_ns().max(1);
    let ndev = report.devices.len();
    let mut rows = vec![vec!['░'; width]; ndev];
    for ev in &report.trace {
        let a = (ev.start.as_ns() as u128 * width as u128 / span as u128) as usize;
        let b = (ev.end.as_ns() as u128 * width as u128 / span as u128) as usize;
        let b = b.clamp(a + 1, width).max(a + 1).min(width);
        for cell in rows[ev.device][a.min(width - 1)..b].iter_mut() {
            *cell = '█';
        }
    }
    let mut out = String::new();
    for (d, row) in rows.iter().enumerate() {
        out.push_str(&format!("dev{d} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_sim::{FixedLatencyModel, Script, SimTime, Simulation};

    fn trace_sim(two_devices_overlap: bool) -> SimReport {
        let mut sim = Simulation::new();
        sim.enable_trace();
        let d0 = sim.add_device(Box::new(FixedLatencyModel::new(
            SimTime::from_us(10),
            SimTime::from_us(10),
        )));
        let d1 = sim.add_device(Box::new(FixedLatencyModel::new(
            SimTime::from_us(10),
            SimTime::from_us(10),
        )));
        if two_devices_overlap {
            sim.add_proc(Script::new().read(d0, 0, 4).build());
            sim.add_proc(Script::new().read(d1, 0, 4).build());
        } else {
            sim.add_proc(Script::new().read(d0, 0, 4).read(d1, 0, 4).build());
        }
        sim.run()
    }

    #[test]
    fn overlapping_devices_fill_the_same_columns() {
        let r = trace_sim(true);
        let g = render(&r, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        // Both rows fully busy over the same interval.
        assert!(lines[0].matches('█').count() >= 18);
        assert!(lines[1].matches('█').count() >= 18);
    }

    #[test]
    fn serialized_devices_fill_disjoint_halves() {
        let r = trace_sim(false);
        let g = render(&r, 20);
        let lines: Vec<&str> = g.lines().collect();
        // Device 0 busy in the first half, device 1 in the second.
        let busy0: Vec<usize> = lines[0]
            .char_indices()
            .filter(|&(_, c)| c == '█')
            .map(|(i, _)| i)
            .collect();
        let busy1: Vec<usize> = lines[1]
            .char_indices()
            .filter(|&(_, c)| c == '█')
            .map(|(i, _)| i)
            .collect();
        assert!(busy0.iter().max().unwrap() <= busy1.iter().min().unwrap());
    }

    #[test]
    fn render_handles_empty_trace() {
        let r = SimReport::default();
        assert_eq!(render(&r, 10), "");
    }
}
