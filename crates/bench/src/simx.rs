//! Builders connecting layouts and traces to the discrete-event world.

use pario_disk::{DiskGeometry, ModeledDisk, SchedPolicy};
use pario_layout::{runs, Layout};
use pario_sim::{DiskReq, Op, Simulation};

use crate::BS;

/// Add `n` period-correct Winchester drives to `sim`; returns their ids.
pub fn wren_bank(sim: &mut Simulation, n: usize, policy: SchedPolicy) -> Vec<usize> {
    (0..n)
        .map(|_| {
            sim.add_device(Box::new(ModeledDisk::new(
                DiskGeometry::wren_1989(),
                policy,
                BS,
            )))
        })
        .collect()
}

/// Capacity in `BS` blocks of one modelled drive.
pub fn wren_capacity_blocks() -> u64 {
    ModeledDisk::new(DiskGeometry::wren_1989(), SchedPolicy::Fifo, BS).capacity_blocks()
}

/// Translate logical blocks `[lo, hi)` of a file placed by `layout`
/// (device-local block = physical block; one file per bank) into
/// coalesced read requests, splitting runs at `max_run` blocks — the
/// request size a real controller would cap at.
pub fn read_reqs(layout: &dyn Layout, lo: u64, hi: u64, max_run: u64) -> Vec<DiskReq> {
    assert!(max_run >= 1);
    let mut out = Vec::new();
    for run in runs(layout, lo, hi - lo) {
        let mut start = run.dblock;
        let mut left = run.count;
        while left > 0 {
            let take = left.min(max_run);
            out.push(DiskReq::read(run.device, start, take as u32));
            start += take;
            left -= take;
        }
    }
    out
}

/// A strictly synchronous request-at-a-time script (single buffering):
/// each request waits for the previous one.
pub fn sync_script(reqs: Vec<DiskReq>) -> Vec<Op> {
    reqs.into_iter().map(|r| Op::Io(vec![r])).collect()
}

/// A windowed script modelling `window`-deep read-ahead: `window`
/// requests are kept in flight (batched: issue a window asynchronously,
/// wait, repeat).
pub fn windowed_script(reqs: Vec<DiskReq>, window: usize) -> Vec<Op> {
    assert!(window >= 1);
    let mut ops = Vec::new();
    for chunk in reqs.chunks(window) {
        ops.push(Op::IoAsync(chunk.to_vec()));
        ops.push(Op::WaitAll);
    }
    ops
}

/// Interleave compute between blocking requests (per-request think time).
pub fn compute_io_script(reqs: Vec<DiskReq>, compute: pario_sim::SimTime) -> Vec<Op> {
    let mut ops = Vec::new();
    for r in reqs {
        ops.push(Op::Io(vec![r]));
        if !compute.is_zero() {
            ops.push(Op::Compute(compute));
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_layout::Striped;
    use pario_sim::SimTime;

    #[test]
    fn read_reqs_coalesce_and_cap() {
        let l = Striped::new(2, 4);
        // Blocks 0..8: unit 0 (4 blocks dev0), unit 1 (4 blocks dev1).
        let reqs = read_reqs(&l, 0, 8, 64);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].nblocks, 4);
        // Capped at 2-block requests: each unit splits in two.
        let reqs = read_reqs(&l, 0, 8, 2);
        assert_eq!(reqs.len(), 4);
        assert!(reqs.iter().all(|r| r.nblocks == 2));
    }

    #[test]
    fn scripts_have_expected_shape() {
        let l = Striped::new(2, 1);
        let reqs = read_reqs(&l, 0, 6, 64);
        assert_eq!(sync_script(reqs.clone()).len(), 6);
        let w = windowed_script(reqs.clone(), 4);
        // 6 reqs in windows of 4: 2 batches of (async + wait).
        assert_eq!(w.len(), 4);
        let c = compute_io_script(reqs, SimTime::from_us(5));
        assert_eq!(c.len(), 12);
    }

    #[test]
    fn bank_runs_a_script() {
        let mut sim = Simulation::new();
        let ids = wren_bank(&mut sim, 2, SchedPolicy::Fifo);
        assert_eq!(ids, vec![0, 1]);
        let l = Striped::new(2, 1);
        sim.add_proc(sync_script(read_reqs(&l, 0, 16, 64)));
        let r = sim.run();
        assert!(r.makespan > SimTime::ZERO);
        assert_eq!(r.total_blocks(), 16);
        assert!(wren_capacity_blocks() > 10_000);
    }
}
