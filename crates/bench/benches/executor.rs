//! The I/O executor's submit/wait path vs spawn-per-request fan-out:
//! one scoped thread per device run (the pre-executor strategy) against
//! enqueueing on persistent per-device workers, at a small span (where
//! spawn cost rivals service time) and a large one (where it amortises).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use pario_disk::{DeviceRef, IoNode, MemDisk, Ticket};

const BS: usize = 4096;
const DEVICES: usize = 4;
const DELAY: Duration = Duration::from_micros(5);

fn device_bank() -> Vec<DeviceRef> {
    (0..DEVICES)
        .map(|i| {
            Arc::new(MemDisk::named(&format!("m{i}"), 4096, BS).with_delay(DELAY)) as DeviceRef
        })
        .collect()
}

fn fan_out(c: &mut Criterion, label: &str, per_dev_blocks: usize) {
    let devs = device_bank();
    let (_nodes, handles) = IoNode::spawn_bank(devs.clone());
    let mut g = c.benchmark_group(format!("executor/{label}"));
    g.sample_size(30);
    let mut bufs: Vec<Vec<u8>> = (0..DEVICES)
        .map(|_| vec![0u8; per_dev_blocks * BS])
        .collect();
    g.bench_function("spawn_per_call", |b| {
        b.iter(|| {
            crossbeam::thread::scope(|s| {
                for (d, buf) in devs.iter().zip(bufs.iter_mut()) {
                    s.spawn(move |_| d.read_blocks_at(0, buf).unwrap());
                }
            })
            .unwrap()
        })
    });
    let mut boxed: Vec<Box<[u8]>> = (0..DEVICES)
        .map(|_| vec![0u8; per_dev_blocks * BS].into_boxed_slice())
        .collect();
    g.bench_function("persistent_executor", |b| {
        b.iter(|| {
            let tickets: Vec<Ticket<Box<[u8]>>> = handles
                .iter()
                .zip(boxed.drain(..))
                .map(|(h, buf)| h.submit_read_blocks(0, buf))
                .collect();
            boxed = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        })
    });
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    fan_out(c, "small_span_4blk", 1);
    fan_out(c, "large_span_256blk", 64);
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
