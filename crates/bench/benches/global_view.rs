//! Global-view record throughput (buffered sequential reader/writer) and
//! the cross-organization conversion utility.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use pario_core::{convert, Organization, ParallelFile};
use pario_fs::{GlobalReader, GlobalWriter, Volume, VolumeConfig};

// 96-byte records deliberately straddle 4 KiB volume blocks, while
// 128 records per file block (12 KiB = 3 volume blocks) keeps the
// alignment the interleaved conversion target requires.
const RECORD: usize = 96;
const RPB: usize = 128;
const RECORDS: u64 = 4096;

fn vol() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 4096,
        block_size: 4096,
    })
    .unwrap()
}

fn filled(v: &Volume, name: &str) -> ParallelFile {
    let pf = ParallelFile::create(v, name, Organization::Sequential, RECORD, RPB).unwrap();
    let mut w = GlobalWriter::append(pf.raw().clone());
    let rec = vec![5u8; RECORD];
    for _ in 0..RECORDS {
        w.write_record(&rec).unwrap();
    }
    w.finish().unwrap();
    pf
}

fn bench_writer(c: &mut Criterion) {
    let v = vol();
    let mut g = c.benchmark_group("global_view");
    g.throughput(Throughput::Bytes(RECORDS * RECORD as u64));
    g.sample_size(20);
    let rec = vec![5u8; RECORD];
    let pf = ParallelFile::create(&v, "w", Organization::Sequential, RECORD, RPB).unwrap();
    g.bench_function("write_records", |b| {
        b.iter(|| {
            let mut w = GlobalWriter::truncate(pf.raw().clone()).unwrap();
            for _ in 0..RECORDS {
                w.write_record(&rec).unwrap();
            }
            w.finish().unwrap()
        })
    });
    let pf = filled(&v, "r");
    g.bench_function("read_records", |b| {
        b.iter(|| {
            let mut r = GlobalReader::new(pf.raw().clone());
            let mut rec = vec![0u8; RECORD];
            let mut n = 0u64;
            while r.read_record(&mut rec).unwrap() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_convert(c: &mut Criterion) {
    let v = vol();
    let src = filled(&v, "src");
    let mut g = c.benchmark_group("convert");
    g.throughput(Throughput::Bytes(RECORDS * RECORD as u64));
    g.sample_size(10);
    let mut i = 0u32;
    g.bench_function("seq_to_is", |b| {
        b.iter(|| {
            i += 1;
            let name = format!("dst{i}");
            let dst = convert(
                &v,
                &src,
                &name,
                Organization::InterleavedSeq { processes: 4 },
            )
            .unwrap();
            let n = dst.len_records();
            v.remove(&name).unwrap();
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_writer, bench_convert);
criterion_main!(benches);
