//! Volume-cache tier path costs: frame hit vs. miss-plus-evict vs. the
//! uncached device path, and the write-back absorb that makes dirty
//! writes a frame copy. Complements `cache.rs` (the raw tier over bare
//! devices) by benching the shared tier through a mounted volume.

use criterion::{criterion_group, criterion_main, Criterion};

use pario_fs::{FileSpec, RawFile, Volume, VolumeCacheConfig, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 4096;
const BLOCKS: u64 = 256;

fn volume(frames: Option<usize>) -> Volume {
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: BS,
    })
    .unwrap();
    match frames {
        Some(n) => v.enable_cache(VolumeCacheConfig::write_back(n)).unwrap(),
        None => v,
    }
}

fn file(v: &Volume) -> RawFile {
    let f = v
        .create_file(
            FileSpec::new(
                "f",
                BS,
                1,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 1,
                },
            )
            .initial_records(BLOCKS),
        )
        .unwrap();
    let data = vec![3u8; BS];
    for b in 0..BLOCKS {
        f.write_span(b * BS as u64, &data).unwrap();
    }
    f
}

fn bench_read_paths(c: &mut Criterion) {
    let mut buf = vec![0u8; BS];

    // Hot frame: the whole file fits the budget, steady state is hits.
    let v = volume(Some(BLOCKS as usize));
    let f = file(&v);
    f.read_span(0, &mut buf).unwrap();
    c.bench_function("volume_cache_hit", |b| {
        b.iter(|| f.read_span(0, &mut buf).unwrap())
    });

    // Cold frame: budget far below the scan, every read misses and
    // evicts (write-back flushes the victim first).
    let v = volume(Some(16));
    let f = file(&v);
    v.flush_cache().unwrap();
    let mut blk = 0u64;
    c.bench_function("volume_cache_miss_evict", |b| {
        b.iter(|| {
            blk = (blk + 1) % BLOCKS;
            f.read_span(blk * BS as u64, &mut buf).unwrap()
        })
    });

    // No tier at all: straight to the executor bank.
    let v = volume(None);
    let f = file(&v);
    c.bench_function("volume_uncached_read", |b| {
        b.iter(|| f.read_span(0, &mut buf).unwrap())
    });
}

fn bench_write_absorb(c: &mut Criterion) {
    let data = vec![9u8; BS];

    // Write-back: the write is a frame copy; the device sees it only at
    // eviction or flush.
    let v = volume(Some(BLOCKS as usize));
    let f = file(&v);
    c.bench_function("volume_cache_write_absorb", |b| {
        b.iter(|| f.write_span(0, &data).unwrap())
    });

    let v = volume(None);
    let f = file(&v);
    c.bench_function("volume_uncached_write", |b| {
        b.iter(|| f.write_span(0, &data).unwrap())
    });
}

criterion_group!(benches, bench_read_paths, bench_write_absorb);
criterion_main!(benches);
