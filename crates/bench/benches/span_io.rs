//! Span I/O: per-block loop vs coalesced vectored runs vs coalesced
//! runs fanned out across devices, on memory devices with a modelled
//! per-request service time (the request-count-dominated 1989 regime).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use pario_disk::{DeviceRef, MemDisk};
use pario_fs::{FileSpec, RawFile, Volume};
use pario_layout::LayoutSpec;

const BS: usize = 4096;
const DEVICES: usize = 4;
const SPAN_BLOCKS: usize = 256; // 1 MiB
const DELAY: Duration = Duration::from_micros(5);

fn file() -> RawFile {
    let devs: Vec<DeviceRef> = (0..DEVICES)
        .map(|i| {
            Arc::new(MemDisk::named(&format!("m{i}"), 4096, BS).with_delay(DELAY)) as DeviceRef
        })
        .collect();
    let v = Volume::new(devs).unwrap();
    let f = v
        .create_file(FileSpec::new(
            "b",
            BS,
            1,
            LayoutSpec::Striped {
                devices: DEVICES,
                unit: 2,
            },
        ))
        .unwrap();
    let data = vec![3u8; SPAN_BLOCKS * BS];
    f.write_span(0, &data).unwrap();
    f
}

fn bench_span_read(c: &mut Criterion) {
    let f = file();
    let serial = f.clone().with_span_parallel(false);
    let mut g = c.benchmark_group("span_io");
    g.throughput(Throughput::Bytes((SPAN_BLOCKS * BS) as u64));
    g.sample_size(20);
    let mut out = vec![0u8; SPAN_BLOCKS * BS];
    g.bench_function("read_per_block", |b| {
        b.iter(|| {
            for l in 0..SPAN_BLOCKS {
                f.read_lblock(l as u64, &mut out[l * BS..(l + 1) * BS])
                    .unwrap();
            }
        })
    });
    g.bench_function("read_coalesced", |b| {
        b.iter(|| serial.read_span(0, &mut out).unwrap())
    });
    g.bench_function("read_coalesced_parallel", |b| {
        b.iter(|| f.read_span(0, &mut out).unwrap())
    });
    let data = vec![9u8; SPAN_BLOCKS * BS];
    g.bench_function("write_per_block", |b| {
        b.iter(|| {
            for l in 0..SPAN_BLOCKS {
                f.write_lblock(l as u64, &data[l * BS..(l + 1) * BS])
                    .unwrap();
            }
        })
    });
    g.bench_function("write_coalesced_parallel", |b| {
        b.iter(|| f.write_span(0, &data).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_span_read);
criterion_main!(benches);
