//! Wall-clock companion to E2: `StripedReader`/`StripedWriter`
//! throughput as the device count grows (in-memory devices, so this
//! measures the software path: buffering, merging, framing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pario_core::{Organization, ParallelFile, StripedReader, StripedWriter};
use pario_fs::{Volume, VolumeConfig};

const RECORD: usize = 4096;
const RECORDS: u64 = 512; // 2 MiB per pass

fn make_file(devices: usize) -> ParallelFile {
    let v = Volume::create_in_memory(VolumeConfig {
        devices,
        device_blocks: 2048,
        block_size: RECORD,
    })
    .unwrap();
    let pf = ParallelFile::create(&v, "s", Organization::Sequential, RECORD, 1).unwrap();
    let mut w = StripedWriter::create(pf.raw(), RECORDS, 2).unwrap();
    let rec = vec![7u8; RECORD];
    for _ in 0..RECORDS {
        w.write_record(&rec).unwrap();
    }
    w.finish().unwrap();
    pf
}

fn bench_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("striped_read");
    g.throughput(Throughput::Bytes(RECORDS * RECORD as u64));
    g.sample_size(20);
    for devices in [1usize, 2, 4, 8] {
        let pf = make_file(devices);
        g.bench_with_input(BenchmarkId::from_parameter(devices), &pf, |b, pf| {
            b.iter(|| {
                let r = StripedReader::new(pf.raw(), 2).unwrap();
                let mut sum = 0u64;
                r.read_records(|_, bytes| sum += u64::from(bytes[0]))
                    .unwrap();
                sum
            })
        });
    }
    g.finish();
}

fn bench_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("striped_write");
    g.throughput(Throughput::Bytes(RECORDS * RECORD as u64));
    g.sample_size(20);
    for devices in [1usize, 4] {
        let v = Volume::create_in_memory(VolumeConfig {
            devices,
            device_blocks: 2048,
            block_size: RECORD,
        })
        .unwrap();
        let pf = ParallelFile::create(&v, "s", Organization::Sequential, RECORD, 1).unwrap();
        let rec = vec![3u8; RECORD];
        g.bench_with_input(BenchmarkId::from_parameter(devices), &pf, |b, pf| {
            b.iter(|| {
                let mut w = StripedWriter::create(pf.raw(), RECORDS, 2).unwrap();
                for _ in 0..RECORDS {
                    w.write_record(&rec).unwrap();
                }
                w.finish().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read, bench_write);
criterion_main!(benches);
