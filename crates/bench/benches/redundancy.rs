//! Ablation: what redundancy costs on the write path, and what RAID-5
//! rotation buys over RAID-4's dedicated parity device (Kim's
//! synchronized interleaving, cited in the paper's §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pario_fs::{FileSpec, Volume, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 4096;
const RECORDS: u64 = 256;

fn volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 8,
        device_blocks: 2048,
        block_size: BS,
    })
    .unwrap()
}

fn layouts() -> Vec<(&'static str, LayoutSpec)> {
    vec![
        (
            "none(striped4)",
            LayoutSpec::Striped {
                devices: 4,
                unit: 1,
            },
        ),
        (
            "parity_raid4",
            LayoutSpec::Parity {
                data_devices: 3,
                rotated: false,
            },
        ),
        (
            "parity_raid5",
            LayoutSpec::Parity {
                data_devices: 3,
                rotated: true,
            },
        ),
        (
            "shadow(2+2)",
            LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                devices: 2,
                unit: 1,
            })),
        ),
    ]
}

fn bench_write_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("redundant_write");
    g.throughput(Throughput::Bytes(RECORDS * BS as u64));
    g.sample_size(15);
    for (name, layout) in layouts() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &layout, |b, layout| {
            let v = volume();
            let f = v
                .create_file(FileSpec::new("f", BS, 1, layout.clone()))
                .unwrap();
            let rec = vec![0xA5u8; BS];
            b.iter(|| {
                for r in 0..RECORDS {
                    f.write_record(r, &rec).unwrap();
                }
                RECORDS
            });
        });
    }
    g.finish();
}

fn bench_degraded_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("degraded_read");
    g.throughput(Throughput::Bytes(RECORDS * BS as u64));
    g.sample_size(15);
    for (name, layout) in layouts().into_iter().skip(1) {
        let v = volume();
        let f = v.create_file(FileSpec::new("f", BS, 1, layout)).unwrap();
        for r in 0..RECORDS {
            f.write_record(r, &vec![r as u8; BS]).unwrap();
        }
        v.device(1).fail();
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut buf = vec![0u8; BS];
            b.iter(|| {
                for r in 0..RECORDS {
                    f.read_record(r, &mut buf).unwrap();
                }
                RECORDS
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_write_path, bench_degraded_read);
criterion_main!(benches);
