//! Wall-clock companion to E8: per-block cost of the buffering layer —
//! pool acquisition, pipeline hand-off — with no artificial device
//! delay. This is the paper's "buffering overheads can be a significant
//! factor" measured directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pario_buffer::{BufferPool, ReadAhead, WriteBehind};
use pario_disk::{mem_array, DeviceRef};

const BLOCK: usize = 4096;
const BLOCKS: u64 = 256;

fn dev() -> DeviceRef {
    mem_array(1, BLOCKS, BLOCK).pop().unwrap()
}

fn bench_pool(c: &mut Criterion) {
    let pool = BufferPool::new(8, BLOCK);
    c.bench_function("pool_acquire_release", |b| {
        b.iter(|| {
            let buf = pool.acquire();
            std::hint::black_box(buf.len())
        })
    });
}

fn bench_readahead(c: &mut Criterion) {
    let device = dev();
    let mut g = c.benchmark_group("readahead_stream");
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK as u64));
    g.sample_size(20);
    for nbufs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(nbufs), &nbufs, |b, &n| {
            b.iter(|| {
                let mut ra = ReadAhead::new(device.clone(), (0..BLOCKS).collect(), n);
                let mut sum = 0u64;
                while let Some(res) = ra.next() {
                    let (_, buf) = res.unwrap();
                    sum += u64::from(buf[0]);
                    ra.recycle(buf);
                }
                sum
            })
        });
    }
    g.finish();
}

fn bench_writebehind(c: &mut Criterion) {
    let device = dev();
    let mut g = c.benchmark_group("writebehind_stream");
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK as u64));
    g.sample_size(20);
    for nbufs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(nbufs), &nbufs, |b, &n| {
            b.iter(|| {
                let wb = WriteBehind::new(device.clone(), n);
                for blk in 0..BLOCKS {
                    let mut buf = wb.buffer();
                    buf[0] = blk as u8;
                    wb.submit(blk, buf);
                }
                wb.finish().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pool, bench_readahead, bench_writebehind);
criterion_main!(benches);
