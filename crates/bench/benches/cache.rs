//! Cache-tier path costs: hit, miss, and a Zipf-skewed PDA-style
//! workload where locality determines the hit ratio (the paper's §4
//! "buffer caching techniques would be helpful when there is some
//! locality of reference"). Benches the raw `VolumeCache` over bare
//! devices; the mounted-volume integration is in `volume_cache.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pario_buffer::{VolumeCache, VolumeCacheConfig};
use pario_disk::mem_array;
use pario_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BLOCK: usize = 4096;

fn bench_hit_miss(c: &mut Criterion) {
    let devs = mem_array(1, 4096, BLOCK);
    let cache = VolumeCache::new(devs, VolumeCacheConfig::write_back(64));
    let mut buf = vec![0u8; BLOCK];
    cache.read_block(0, 0, &mut buf).unwrap();
    c.bench_function("cache_hit", |b| {
        b.iter(|| cache.read_block(0, 0, &mut buf).unwrap())
    });
    let mut blk = 64u64;
    c.bench_function("cache_miss_evict", |b| {
        b.iter(|| {
            blk = (blk + 1) % 4096;
            cache.read_block(0, blk, &mut buf).unwrap()
        })
    });
}

fn bench_zipf_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_zipf_1000_reads");
    for &(theta, name) in &[(0.0, "uniform"), (1.1, "skewed")] {
        let devs = mem_array(1, 4096, BLOCK);
        let cache = VolumeCache::new(devs, VolumeCacheConfig::write_back(128));
        let zipf = Zipf::new(4096, theta);
        g.bench_with_input(BenchmarkId::from_parameter(name), &zipf, |b, z| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut buf = vec![0u8; BLOCK];
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..1000 {
                    let blk = z.sample(&mut rng) as u64;
                    cache.read_block(0, blk, &mut buf).unwrap();
                    total += buf.len();
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hit_miss, bench_zipf_workload);
criterion_main!(benches);
