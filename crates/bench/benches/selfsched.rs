//! Wall-clock companion to E3: two-phase vs big-lock self-scheduling
//! under thread contention on in-memory devices (measures the pure
//! synchronization cost; the device-delay version lives in
//! `exp_e3_selfsched`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pario_core::{Organization, ParallelFile};
use pario_fs::{Volume, VolumeConfig};

const RECORD: usize = 512;
const RECORDS: u64 = 2048;

fn make_file() -> ParallelFile {
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: RECORD,
    })
    .unwrap();
    let pf = ParallelFile::create(&v, "ss", Organization::SelfScheduledSeq, RECORD, 1).unwrap();
    pf.raw().ensure_capacity_records(RECORDS).unwrap();
    for r in 0..RECORDS {
        pf.raw().write_record(r, &vec![r as u8; RECORD]).unwrap();
    }
    pf
}

fn drain(pf: &ParallelFile, threads: u32, naive: bool) -> u64 {
    // Fresh cursor per drain: reopen the file handle.
    let pf = ParallelFile::open(pf.raw().volume(), "ss").unwrap();
    let served = std::sync::atomic::AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            let r = if naive {
                pf.self_sched_reader_naive().unwrap()
            } else {
                pf.self_sched_reader().unwrap()
            };
            let served = &served;
            s.spawn(move |_| {
                let mut buf = vec![0u8; RECORD];
                while r.read_next(&mut buf).unwrap().is_some() {
                    served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();
    served.load(std::sync::atomic::Ordering::Relaxed)
}

fn bench(c: &mut Criterion) {
    let pf = make_file();
    let mut g = c.benchmark_group("selfsched_drain");
    g.throughput(Throughput::Elements(RECORDS));
    g.sample_size(15);
    for threads in [1u32, 4] {
        g.bench_with_input(BenchmarkId::new("two_phase", threads), &threads, |b, &t| {
            b.iter(|| drain(&pf, t, false))
        });
        g.bench_with_input(BenchmarkId::new("big_lock", threads), &threads, |b, &t| {
            b.iter(|| drain(&pf, t, true))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
