//! Microbenchmarks of the placement mathematics: `map`, `invert`, and
//! run coalescing are on every I/O path, so their cost bounds the
//! per-request software overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pario_layout::{runs, Layout, ParityPlacement, ParityStriped, Partitioned, Striped};

fn bench_map(c: &mut Criterion) {
    let striped = Striped::new(8, 4);
    let partitioned = Partitioned::uniform(1 << 20, 64, 8);
    let parity = ParityStriped::new(7, ParityPlacement::Rotated);
    let mut g = c.benchmark_group("layout_map");
    let cases: Vec<(&str, &dyn Layout)> = vec![
        ("striped", &striped),
        ("partitioned_64", &partitioned),
        ("parity_rotated", &parity),
    ];
    for (name, layout) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &layout, |b, l| {
            b.iter(|| {
                let mut acc = 0u64;
                for blk in (0..100_000u64).step_by(97) {
                    let p = l.map(blk);
                    acc = acc.wrapping_add(p.block + p.device as u64);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_invert(c: &mut Criterion) {
    let striped = Striped::new(8, 4);
    c.bench_function("layout_invert_striped", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for blk in (0..100_000u64).step_by(97) {
                let p = striped.map(blk);
                acc = acc.wrapping_add(striped.invert(p.device, p.block).unwrap());
            }
            acc
        })
    });
}

fn bench_runs(c: &mut Criterion) {
    let striped = Striped::new(4, 16);
    let partitioned = Partitioned::uniform(65_536, 4, 4);
    let mut g = c.benchmark_group("runs_coalesce_64k_blocks");
    g.bench_function("striped", |b| b.iter(|| runs(&striped, 0, 65_536).len()));
    g.bench_function("partitioned", |b| {
        b.iter(|| runs(&partitioned, 0, 65_536).len())
    });
    g.finish();
}

criterion_group!(benches, bench_map, bench_invert, bench_runs);
criterion_main!(benches);
