//! Partitioned (type PS) placement: contiguous block ranges, one per
//! process, each range kept together on a device.
//!
//! With one device per partition this is the paper's "obvious
//! implementation" of PS. With fewer devices than partitions, partitions are
//! assigned round-robin and stacked one after another on their device —
//! exactly the situation where the paper predicts seek-time degradation as
//! a drive services interleaved requests from several processes.

use serde::{Deserialize, Serialize};

use crate::traits::{Layout, PhysBlock};

/// Contiguous per-partition placement across a device array.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioned {
    /// `bounds[p]..bounds[p+1]` is partition `p`'s logical block range.
    bounds: Vec<u64>,
    devices: usize,
}

impl Partitioned {
    /// Build from explicit partition boundaries.
    ///
    /// `bounds` must start at 0, be non-decreasing, and have at least two
    /// entries; its last entry is the file's total block count.
    ///
    /// # Panics
    ///
    /// Panics on malformed bounds or `devices == 0`.
    pub fn from_bounds(bounds: Vec<u64>, devices: usize) -> Partitioned {
        assert!(devices >= 1, "at least one device required");
        assert!(bounds.len() >= 2, "need at least one partition");
        assert_eq!(bounds[0], 0, "bounds must start at 0");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be non-decreasing"
        );
        Partitioned { bounds, devices }
    }

    /// Split `total` blocks into `partitions` near-equal contiguous ranges
    /// (the first `total % partitions` ranges get one extra block), assigned
    /// round-robin over `devices`.
    pub fn uniform(total: u64, partitions: usize, devices: usize) -> Partitioned {
        assert!(partitions >= 1, "at least one partition required");
        let base = total / partitions as u64;
        let extra = total % partitions as u64;
        let mut bounds = Vec::with_capacity(partitions + 1);
        let mut acc = 0;
        bounds.push(0);
        for p in 0..partitions as u64 {
            acc += base + u64::from(p < extra);
            bounds.push(acc);
        }
        Partitioned::from_bounds(bounds, devices)
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total logical blocks covered.
    pub fn total_blocks(&self) -> u64 {
        // invariant: bounds is validated non-empty at construction.
        *self.bounds.last().unwrap()
    }

    /// The partition boundaries (length `partitions + 1`, starting at 0).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Logical block range `[start, end)` of partition `p`.
    pub fn partition_range(&self, p: usize) -> (u64, u64) {
        (self.bounds[p], self.bounds[p + 1])
    }

    /// Device assigned to partition `p`.
    pub fn partition_device(&self, p: usize) -> usize {
        p % self.devices
    }

    /// Partition containing logical block `lblock`.
    pub fn partition_of(&self, lblock: u64) -> usize {
        // bounds is sorted; find the last bound <= lblock. partition_point
        // returns the count of bounds <= lblock, so subtract one. Empty
        // partitions share a bound value; skip them by construction of the
        // search (an empty partition can contain no block).
        debug_assert!(lblock < self.total_blocks());
        self.bounds.partition_point(|&b| b <= lblock) - 1
    }

    /// Device-local block at which partition `p` begins (partitions mapped
    /// to one device are stacked in partition order).
    fn partition_base(&self, p: usize) -> u64 {
        let dev = self.partition_device(p);
        (0..p)
            .filter(|&q| self.partition_device(q) == dev)
            .map(|q| self.bounds[q + 1] - self.bounds[q])
            .sum()
    }
}

impl Layout for Partitioned {
    fn devices(&self) -> usize {
        self.devices
    }

    fn map(&self, lblock: u64) -> PhysBlock {
        assert!(
            lblock < self.total_blocks(),
            "block {lblock} beyond partitioned file of {} blocks",
            self.total_blocks()
        );
        let p = self.partition_of(lblock);
        PhysBlock {
            device: self.partition_device(p),
            block: self.partition_base(p) + (lblock - self.bounds[p]),
        }
    }

    fn invert(&self, device: usize, dblock: u64) -> Option<u64> {
        if device >= self.devices {
            return None;
        }
        let mut base = 0;
        for p in 0..self.partitions() {
            if self.partition_device(p) != device {
                continue;
            }
            let size = self.bounds[p + 1] - self.bounds[p];
            if dblock < base + size {
                return Some(self.bounds[p] + (dblock - base));
            }
            base += size;
        }
        None
    }

    fn blocks_on_device(&self, total: u64, device: usize) -> u64 {
        debug_assert_eq!(
            total,
            self.total_blocks(),
            "Partitioned layouts are sized at construction"
        );
        if device >= self.devices {
            return 0;
        }
        (0..self.partitions())
            .filter(|&p| self.partition_device(p) == device)
            .map(|p| self.bounds[p + 1] - self.bounds[p])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{check_bijection, runs};
    use proptest::prelude::*;

    #[test]
    fn uniform_split_sizes() {
        let l = Partitioned::uniform(10, 3, 3);
        assert_eq!(l.partition_range(0), (0, 4));
        assert_eq!(l.partition_range(1), (4, 7));
        assert_eq!(l.partition_range(2), (7, 10));
        assert_eq!(l.total_blocks(), 10);
    }

    #[test]
    fn device_per_partition() {
        let l = Partitioned::uniform(12, 3, 3);
        assert_eq!(l.map(0).device, 0);
        assert_eq!(l.map(4).device, 1);
        assert_eq!(l.map(8).device, 2);
        // Each partition starts at device block 0 on its own device.
        assert_eq!(l.map(4).block, 0);
        assert_eq!(l.map(8).block, 0);
    }

    #[test]
    fn stacked_partitions_share_device() {
        // 4 partitions of 3 blocks over 2 devices: partitions 0,2 on dev 0.
        let l = Partitioned::uniform(12, 4, 2);
        assert_eq!(
            l.map(0),
            PhysBlock {
                device: 0,
                block: 0
            }
        );
        // Partition 2 (blocks 6..9) stacks after partition 0 on device 0.
        assert_eq!(
            l.map(6),
            PhysBlock {
                device: 0,
                block: 3
            }
        );
        assert_eq!(
            l.map(3),
            PhysBlock {
                device: 1,
                block: 0
            }
        );
        assert_eq!(
            l.map(9),
            PhysBlock {
                device: 1,
                block: 3
            }
        );
        assert_eq!(l.blocks_on_device(12, 0), 6);
        assert_eq!(l.blocks_on_device(12, 1), 6);
    }

    #[test]
    fn global_view_of_ps_gives_one_run_per_partition() {
        // The paper's observation: the global view of a PS file reads all of
        // device 0, then all of device 1, ... — no overlap possible.
        let l = Partitioned::uniform(12, 3, 3);
        let r = runs(&l, 0, 12);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|run| run.count == 4));
        assert_eq!(
            r.iter().map(|run| run.device).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn empty_partitions_are_skipped() {
        let l = Partitioned::from_bounds(vec![0, 0, 5, 5, 8], 2);
        check_bijection(&l, 8);
        assert_eq!(l.partition_of(0), 1);
        assert_eq!(l.partition_of(5), 3);
    }

    #[test]
    #[should_panic(expected = "beyond partitioned file")]
    fn map_past_end_panics() {
        Partitioned::uniform(4, 2, 2).map(4);
    }

    proptest! {
        #[test]
        fn bijection(total in 0u64..400, parts in 1usize..9, devices in 1usize..5) {
            let l = Partitioned::uniform(total, parts, devices);
            check_bijection(&l, total);
        }

        #[test]
        fn partition_of_matches_ranges(total in 1u64..400, parts in 1usize..9) {
            let l = Partitioned::uniform(total, parts, 2);
            for b in 0..total {
                let p = l.partition_of(b);
                let (s, e) = l.partition_range(p);
                prop_assert!(s <= b && b < e);
            }
        }

        #[test]
        fn capacities_sum_to_total(total in 0u64..400, parts in 1usize..9, devices in 1usize..5) {
            let l = Partitioned::uniform(total, parts, devices);
            let sum: u64 = (0..devices).map(|d| l.blocks_on_device(total, d)).sum();
            prop_assert_eq!(sum, total);
        }
    }
}
