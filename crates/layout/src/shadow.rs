//! Shadowed (mirrored) placement.
//!
//! The paper's §5: "A technique sometimes used … is to replicate every disk,
//! and perform exactly the same I/O operations on each disk and its
//! 'shadow'." A [`Shadowed`] layout doubles the device array: devices
//! `0..n` are primaries placed by the inner layout, devices `n..2n` are
//! their shadows at identical block addresses. Reads may be served from
//! either copy; writes must go to both (enforced by the file-system layer
//! and exercised by `pario-reliability`).

use std::fmt;

use crate::traits::{Layout, PhysBlock};

/// A mirror of an arbitrary inner layout.
pub struct Shadowed {
    inner: Box<dyn Layout>,
}

impl Shadowed {
    /// Mirror `inner` onto a second identical device array.
    pub fn new(inner: Box<dyn Layout>) -> Shadowed {
        Shadowed { inner }
    }

    /// Number of primary devices (= number of shadow devices).
    pub fn primaries(&self) -> usize {
        self.inner.devices()
    }

    /// The shadow copy of a primary location.
    ///
    /// # Panics
    ///
    /// Panics if `primary` is not on a primary device.
    pub fn mirror(&self, primary: PhysBlock) -> PhysBlock {
        assert!(
            primary.device < self.primaries(),
            "mirror() takes a primary-device location"
        );
        PhysBlock {
            device: primary.device + self.primaries(),
            block: primary.block,
        }
    }

    /// The primary copy of a shadow location (identity on primaries).
    pub fn primary(&self, loc: PhysBlock) -> PhysBlock {
        if loc.device >= self.primaries() {
            PhysBlock {
                device: loc.device - self.primaries(),
                block: loc.block,
            }
        } else {
            loc
        }
    }

    /// Access to the wrapped layout.
    pub fn inner(&self) -> &dyn Layout {
        &*self.inner
    }
}

impl fmt::Debug for Shadowed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shadowed")
            .field("inner", &self.inner)
            .finish()
    }
}

impl Layout for Shadowed {
    fn devices(&self) -> usize {
        self.inner.devices() * 2
    }

    /// Maps to the *primary* copy; writers obtain the shadow location via
    /// [`Shadowed::mirror`].
    fn map(&self, lblock: u64) -> PhysBlock {
        self.inner.map(lblock)
    }

    fn invert(&self, device: usize, dblock: u64) -> Option<u64> {
        let n = self.primaries();
        if device >= n {
            self.inner.invert(device - n, dblock)
        } else {
            self.inner.invert(device, dblock)
        }
    }

    fn blocks_on_device(&self, total: u64, device: usize) -> u64 {
        let n = self.primaries();
        if device >= n {
            self.inner.blocks_on_device(total, device - n)
        } else {
            self.inner.blocks_on_device(total, device)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::striped::Striped;
    use crate::traits::check_bijection;

    fn shadowed() -> Shadowed {
        Shadowed::new(Box::new(Striped::new(2, 1)))
    }

    #[test]
    fn doubles_devices_and_mirrors() {
        let l = shadowed();
        assert_eq!(l.devices(), 4);
        assert_eq!(l.primaries(), 2);
        let p = l.map(3);
        assert_eq!(
            p,
            PhysBlock {
                device: 1,
                block: 1
            }
        );
        let m = l.mirror(p);
        assert_eq!(
            m,
            PhysBlock {
                device: 3,
                block: 1
            }
        );
        assert_eq!(l.primary(m), p);
        assert_eq!(l.primary(p), p);
    }

    #[test]
    fn shadow_locations_invert_to_same_block() {
        let l = shadowed();
        for b in 0..16 {
            let p = l.map(b);
            let m = l.mirror(p);
            assert_eq!(l.invert(p.device, p.block), Some(b));
            assert_eq!(l.invert(m.device, m.block), Some(b));
        }
    }

    #[test]
    fn primary_mapping_is_bijective() {
        check_bijection(&shadowed(), 32);
    }

    #[test]
    fn shadow_capacity_matches_primary() {
        let l = shadowed();
        for d in 0..2 {
            assert_eq!(l.blocks_on_device(13, d), l.blocks_on_device(13, d + 2));
        }
    }

    #[test]
    #[should_panic(expected = "primary-device location")]
    fn mirror_of_shadow_panics() {
        let l = shadowed();
        l.mirror(PhysBlock {
            device: 3,
            block: 0,
        });
    }
}
