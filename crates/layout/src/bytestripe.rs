//! Byte-granularity striping.
//!
//! For type S files the paper views "the entire file … as a string of bytes
//! which is broken into units most appropriate for the I/O devices
//! involved". [`ByteStriper`] maps arbitrary byte ranges of that string onto
//! per-device byte runs, independent of any block structure — the buffering
//! layer "merges and splits data streams" from these runs.

use serde::{Deserialize, Serialize};

/// A contiguous byte run on one device.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ByteRun {
    /// Device index.
    pub device: usize,
    /// Byte offset within the device's portion of the file.
    pub offset: u64,
    /// Run length in bytes.
    pub len: u64,
    /// Byte offset within the logical file where this run begins.
    pub logical: u64,
}

/// Round-robin byte striping with a fixed unit.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ByteStriper {
    devices: usize,
    unit: u64,
}

impl ByteStriper {
    /// Stripe `unit` bytes at a time across `devices`.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `unit == 0`.
    pub fn new(devices: usize, unit: u64) -> ByteStriper {
        assert!(devices >= 1 && unit >= 1);
        ByteStriper { devices, unit }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Stripe unit in bytes.
    pub fn unit(&self) -> u64 {
        self.unit
    }

    /// Device and device-local offset of logical byte `off`.
    pub fn locate(&self, off: u64) -> (usize, u64) {
        let stripe = off / self.unit;
        let within = off % self.unit;
        let device = (stripe % self.devices as u64) as usize;
        let row = stripe / self.devices as u64;
        (device, row * self.unit + within)
    }

    /// Split the logical byte range `[offset, offset + len)` into maximal
    /// per-device runs, in logical order.
    pub fn map_range(&self, offset: u64, len: u64) -> Vec<ByteRun> {
        let mut out: Vec<ByteRun> = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let (device, doff) = self.locate(pos);
            // Distance to the end of the current stripe unit.
            let unit_left = self.unit - pos % self.unit;
            let take = unit_left.min(end - pos);
            match out.last_mut() {
                // With one device, consecutive units are contiguous.
                Some(r) if r.device == device && r.offset + r.len == doff => r.len += take,
                _ => out.push(ByteRun {
                    device,
                    offset: doff,
                    len: take,
                    logical: pos,
                }),
            }
            pos += take;
        }
        out
    }

    /// Bytes stored on `device` for a file of `file_len` bytes.
    pub fn bytes_on_device(&self, file_len: u64, device: usize) -> u64 {
        if device >= self.devices {
            return 0;
        }
        let d = device as u64;
        let nd = self.devices as u64;
        let full = file_len / self.unit;
        let tail = file_len % self.unit;
        let mut bytes = (full / nd + u64::from(full % nd > d)) * self.unit;
        if tail > 0 && full % nd == d {
            bytes += tail;
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn locate_round_robins_units() {
        let s = ByteStriper::new(3, 10);
        assert_eq!(s.locate(0), (0, 0));
        assert_eq!(s.locate(9), (0, 9));
        assert_eq!(s.locate(10), (1, 0));
        assert_eq!(s.locate(25), (2, 5));
        assert_eq!(s.locate(30), (0, 10));
    }

    #[test]
    fn map_range_splits_at_unit_boundaries() {
        let s = ByteStriper::new(2, 8);
        let runs = s.map_range(4, 16);
        // Bytes 4..8 on dev0, 8..16 on dev1, 16..20 on dev0 at offset 8.
        assert_eq!(runs.len(), 3);
        assert_eq!(
            runs[0],
            ByteRun {
                device: 0,
                offset: 4,
                len: 4,
                logical: 4
            }
        );
        assert_eq!(
            runs[1],
            ByteRun {
                device: 1,
                offset: 0,
                len: 8,
                logical: 8
            }
        );
        assert_eq!(
            runs[2],
            ByteRun {
                device: 0,
                offset: 8,
                len: 4,
                logical: 16
            }
        );
    }

    #[test]
    fn single_device_coalesces_to_one_run() {
        let s = ByteStriper::new(1, 4);
        let runs = s.map_range(2, 100);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 100);
        assert_eq!(runs[0].offset, 2);
    }

    proptest! {
        #[test]
        fn ranges_cover_exactly(devices in 1usize..6, unit in 1u64..33,
                                offset in 0u64..500, len in 0u64..500) {
            let s = ByteStriper::new(devices, unit);
            let runs = s.map_range(offset, len);
            let total: u64 = runs.iter().map(|r| r.len).sum();
            prop_assert_eq!(total, len);
            // Runs are in logical order and dense.
            let mut pos = offset;
            for r in &runs {
                prop_assert_eq!(r.logical, pos);
                prop_assert!(r.len > 0);
                pos += r.len;
            }
        }

        #[test]
        fn run_bytes_agree_with_locate(devices in 1usize..6, unit in 1u64..33,
                                       offset in 0u64..300, len in 1u64..200) {
            let s = ByteStriper::new(devices, unit);
            for r in s.map_range(offset, len) {
                // Every byte of the run individually locates inside it.
                for i in 0..r.len.min(5) {
                    let (d, o) = s.locate(r.logical + i);
                    prop_assert_eq!(d, r.device);
                    prop_assert_eq!(o, r.offset + i);
                }
            }
        }

        #[test]
        fn device_byte_counts_sum(devices in 1usize..6, unit in 1u64..33, flen in 0u64..800) {
            let s = ByteStriper::new(devices, unit);
            let sum: u64 = (0..devices).map(|d| s.bytes_on_device(flen, d)).sum();
            prop_assert_eq!(sum, flen);
        }
    }
}
