//! Round-robin (striped / interleaved / declustered) placement.
//!
//! One piece of mathematics serves four of the paper's placement policies.
//! Logical blocks are grouped into *units* of `unit` consecutive blocks and
//! units are dealt round-robin across the devices:
//!
//! * **striping** (type S and SS files): `unit` is chosen for device
//!   efficiency, independent of record structure;
//! * **interleaved** (type IS files): `unit` is the file's logical block
//!   (one process's cluster), so that process *p* of *P* finds its blocks by
//!   stride — with `devices == P`, each process gets a private device;
//! * **declustering** (Livny et al.): a multi-volume-block file block is
//!   split across drives — exactly `unit == 1`;
//! * **whole-block placement** (the declustering baseline): each file block
//!   entirely on one drive — `unit ==` file-block size in volume blocks.

use serde::{Deserialize, Serialize};

use crate::traits::{Layout, PhysBlock};

/// Round-robin placement of fixed-size units across devices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Striped {
    devices: usize,
    unit: u64,
}

impl Striped {
    /// Stripe `unit` consecutive logical blocks at a time over `devices`.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `unit == 0`.
    pub fn new(devices: usize, unit: u64) -> Striped {
        assert!(devices >= 1, "striping requires at least one device");
        assert!(unit >= 1, "stripe unit must be at least one block");
        Striped { devices, unit }
    }

    /// Interleaved placement (type IS): one file cluster per unit.
    pub fn interleaved(devices: usize, cluster_blocks: u64) -> Striped {
        Striped::new(devices, cluster_blocks)
    }

    /// Declustered placement: every file block's volume blocks spread over
    /// all devices (stripe unit of one volume block).
    pub fn declustered(devices: usize) -> Striped {
        Striped::new(devices, 1)
    }

    /// Whole-block placement: each `file_block_vblocks`-sized file block
    /// entirely on one device (the declustering baseline).
    pub fn whole_block(devices: usize, file_block_vblocks: u64) -> Striped {
        Striped::new(devices, file_block_vblocks)
    }

    /// The stripe unit in volume blocks.
    pub fn unit(&self) -> u64 {
        self.unit
    }
}

impl Layout for Striped {
    fn devices(&self) -> usize {
        self.devices
    }

    fn map(&self, lblock: u64) -> PhysBlock {
        let stripe = lblock / self.unit;
        let within = lblock % self.unit;
        let device = (stripe % self.devices as u64) as usize;
        let row = stripe / self.devices as u64;
        PhysBlock {
            device,
            block: row * self.unit + within,
        }
    }

    fn invert(&self, device: usize, dblock: u64) -> Option<u64> {
        if device >= self.devices {
            return None;
        }
        let row = dblock / self.unit;
        let within = dblock % self.unit;
        let stripe = row * self.devices as u64 + device as u64;
        Some(stripe * self.unit + within)
    }

    fn blocks_on_device(&self, total: u64, device: usize) -> u64 {
        if device >= self.devices || total == 0 {
            return 0;
        }
        let d = device as u64;
        let nd = self.devices as u64;
        let full_stripes = total / self.unit;
        let tail = total % self.unit;
        // Units dealt to device d among `full_stripes` complete units:
        let full_units_here = full_stripes / nd + u64::from(full_stripes % nd > d);
        let mut blocks = full_units_here * self.unit;
        // A partial final unit lands on device (full_stripes % nd).
        if tail > 0 && full_stripes % nd == d {
            blocks += tail;
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{check_bijection, runs};
    use proptest::prelude::*;

    #[test]
    fn unit_one_round_robin() {
        let l = Striped::declustered(3);
        assert_eq!(
            l.map(0),
            PhysBlock {
                device: 0,
                block: 0
            }
        );
        assert_eq!(
            l.map(1),
            PhysBlock {
                device: 1,
                block: 0
            }
        );
        assert_eq!(
            l.map(2),
            PhysBlock {
                device: 2,
                block: 0
            }
        );
        assert_eq!(
            l.map(3),
            PhysBlock {
                device: 0,
                block: 1
            }
        );
        assert_eq!(
            l.map(7),
            PhysBlock {
                device: 1,
                block: 2
            }
        );
    }

    #[test]
    fn multi_block_units_stay_contiguous() {
        let l = Striped::new(2, 4);
        // Unit 0 (blocks 0..4) on device 0 at 0..4.
        for b in 0..4 {
            assert_eq!(
                l.map(b),
                PhysBlock {
                    device: 0,
                    block: b
                }
            );
        }
        // Unit 1 (blocks 4..8) on device 1 at 0..4.
        for b in 4..8 {
            assert_eq!(
                l.map(b),
                PhysBlock {
                    device: 1,
                    block: b - 4
                }
            );
        }
        // Unit 2 back on device 0 at 4..8.
        assert_eq!(
            l.map(8),
            PhysBlock {
                device: 0,
                block: 4
            }
        );
    }

    #[test]
    fn capacity_counts_short_tail() {
        let l = Striped::new(3, 2);
        // 7 blocks = units [0,1), [2,3) dev0/dev1, [4,5) dev2, [6] dev0.
        assert_eq!(l.blocks_on_device(7, 0), 3);
        assert_eq!(l.blocks_on_device(7, 1), 2);
        assert_eq!(l.blocks_on_device(7, 2), 2);
        assert_eq!(l.blocks_on_device(0, 0), 0);
        assert_eq!(l.blocks_on_device(7, 9), 0);
    }

    #[test]
    fn whole_file_runs_alternate_devices() {
        let l = Striped::new(2, 2);
        let r = runs(&l, 0, 8);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].device, 0);
        assert_eq!(r[1].device, 1);
        assert_eq!(r[0].count, 2);
        assert_eq!(r[2].dblock, 2);
    }

    #[test]
    fn invert_rejects_bad_device() {
        let l = Striped::new(2, 1);
        assert_eq!(l.invert(5, 0), None);
    }

    proptest! {
        #[test]
        fn bijection(devices in 1usize..9, unit in 1u64..17, total in 0u64..600) {
            check_bijection(&Striped::new(devices, unit), total);
        }

        #[test]
        fn capacities_sum_to_total(devices in 1usize..9, unit in 1u64..17, total in 0u64..600) {
            let l = Striped::new(devices, unit);
            let sum: u64 = (0..devices).map(|d| l.blocks_on_device(total, d)).sum();
            prop_assert_eq!(sum, total);
        }

        #[test]
        fn balanced_within_one_unit(devices in 1usize..9, unit in 1u64..17, total in 0u64..600) {
            let l = Striped::new(devices, unit);
            let caps: Vec<u64> = (0..devices).map(|d| l.blocks_on_device(total, d)).collect();
            let min = *caps.iter().min().unwrap();
            let max = *caps.iter().max().unwrap();
            prop_assert!(max - min <= unit, "imbalance {} > unit {}", max - min, unit);
        }
    }
}
