//! The layout abstraction: where does logical block *b* of a file live?
//!
//! A file is a sequence of *logical blocks* (the volume allocation grain).
//! A [`Layout`] is a bijection from logical block indices onto per-device
//! block indices, one device block per logical block. Every organization in
//! Crockett (1989) — striped, partitioned, interleaved, declustered — is a
//! different bijection; parity and shadowing wrap a bijection with extra
//! redundancy locations.

use std::fmt::Debug;

use serde::{Deserialize, Serialize};

/// A physical location: device index plus device-local block index.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PhysBlock {
    /// Device index within the volume.
    pub device: usize,
    /// Block index local to that device (the file's extent mapping turns
    /// this into an absolute device address).
    pub block: u64,
}

/// A maximal run of consecutive logical blocks that land consecutively on
/// one device — the unit at which I/O can be coalesced into one request.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Run {
    /// First logical block of the run.
    pub lblock: u64,
    /// Device holding the run.
    pub device: usize,
    /// First device-local block of the run.
    pub dblock: u64,
    /// Number of blocks in the run.
    pub count: u64,
}

/// A data-placement policy: a per-file bijection from logical blocks to
/// `(device, device block)` pairs.
///
/// Implementations must satisfy, for all `b < total` and all devices `d`:
///
/// * `invert(map(b)) == Some(b)` (round trip),
/// * `map` is injective (no two logical blocks share a physical block),
/// * `map(b).block < blocks_on_device(total, map(b).device)` (capacity).
///
/// These invariants are enforced by property tests on every concrete layout.
pub trait Layout: Send + Sync + Debug {
    /// Number of devices this layout spreads data over.
    fn devices(&self) -> usize;

    /// Physical location of logical block `lblock`.
    fn map(&self, lblock: u64) -> PhysBlock;

    /// Logical block stored at `(device, dblock)`, if any file block maps
    /// there (the location may be a hole for non-uniform layouts).
    fn invert(&self, device: usize, dblock: u64) -> Option<u64>;

    /// Device-local blocks needed on `device` to store a file of `total`
    /// logical blocks.
    fn blocks_on_device(&self, total: u64, device: usize) -> u64;

    /// The largest per-device footprint — what the allocator must reserve
    /// on every device for a file of `total` logical blocks.
    fn max_blocks_per_device(&self, total: u64) -> u64 {
        (0..self.devices())
            .map(|d| self.blocks_on_device(total, d))
            .max()
            .unwrap_or(0)
    }
}

/// Coalesce the logical block range `[start, start + count)` into maximal
/// per-device contiguous runs, in logical order.
///
/// Reading a file through the *global view* issues exactly these runs; their
/// lengths determine how much sequential-device bandwidth each request can
/// exploit (this is where the PS organization's global-view serialisation
/// becomes visible: one giant run per device, no overlap).
pub fn runs(layout: &dyn Layout, start: u64, count: u64) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    for l in start..start + count {
        let p = layout.map(l);
        match out.last_mut() {
            Some(r) if r.device == p.device && r.dblock + r.count == p.block => {
                r.count += 1;
            }
            _ => out.push(Run {
                lblock: l,
                device: p.device,
                dblock: p.block,
                count: 1,
            }),
        }
    }
    out
}

/// Exhaustively verify the [`Layout`] bijection invariants for a file of
/// `total` logical blocks. Intended for tests of concrete layouts (including
/// downstream crates'); panics with a descriptive message on violation.
pub fn check_bijection(layout: &dyn Layout, total: u64) {
    use std::collections::HashMap;
    let mut seen: HashMap<(usize, u64), u64> = HashMap::new();
    for b in 0..total {
        let p = layout.map(b);
        assert!(
            p.device < layout.devices(),
            "block {b} mapped to nonexistent device {}",
            p.device
        );
        let cap = layout.blocks_on_device(total, p.device);
        assert!(
            p.block < cap,
            "block {b} mapped to {:?} beyond device capacity {cap}",
            p
        );
        if let Some(prev) = seen.insert((p.device, p.block), b) {
            panic!("blocks {prev} and {b} both map to {p:?}");
        }
        assert_eq!(
            layout.invert(p.device, p.block),
            Some(b),
            "invert(map({b})) != {b}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy identity layout on one device, to test the helpers themselves.
    #[derive(Debug)]
    struct Identity;

    impl Layout for Identity {
        fn devices(&self) -> usize {
            1
        }
        fn map(&self, lblock: u64) -> PhysBlock {
            PhysBlock {
                device: 0,
                block: lblock,
            }
        }
        fn invert(&self, device: usize, dblock: u64) -> Option<u64> {
            (device == 0).then_some(dblock)
        }
        fn blocks_on_device(&self, total: u64, device: usize) -> u64 {
            if device == 0 {
                total
            } else {
                0
            }
        }
    }

    #[test]
    fn identity_is_a_bijection() {
        check_bijection(&Identity, 64);
    }

    #[test]
    fn runs_coalesce_contiguous() {
        let r = runs(&Identity, 3, 5);
        assert_eq!(r.len(), 1);
        assert_eq!(
            r[0],
            Run {
                lblock: 3,
                device: 0,
                dblock: 3,
                count: 5
            }
        );
        assert!(runs(&Identity, 0, 0).is_empty());
    }

    #[test]
    fn max_blocks_default() {
        assert_eq!(Identity.max_blocks_per_device(17), 17);
    }
}
