//! Parity-protected striping (RAID-4 / RAID-5 style).
//!
//! The paper (§5, citing Kim's synchronized disk interleaving) notes that
//! for striped files "parity information is stored on each drive, and
//! checking codes are stored on one or more additional drives", handling a
//! single-bit error or the complete failure of one drive. This module
//! provides the placement half: `data_devices` drives of data plus one
//! drive's worth of parity, either on a dedicated device (RAID-4) or
//! rotated across all devices (RAID-5). The XOR arithmetic and rebuild
//! machinery live in `pario-reliability`.

use serde::{Deserialize, Serialize};

use crate::traits::{Layout, PhysBlock};

/// Where parity blocks live.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ParityPlacement {
    /// All parity on the last device (RAID-4). Simple, but the parity
    /// device is a write bottleneck.
    Dedicated,
    /// Parity rotated across devices (RAID-5), spreading the write load.
    Rotated,
}

/// Striped placement over `data_devices + 1` devices with one parity block
/// per stripe.
///
/// Logical data blocks are striped one block at a time; stripe `s` occupies
/// device row `s` on every device, with one of the `data_devices + 1`
/// devices holding parity for that row.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityStriped {
    data_devices: usize,
    placement: ParityPlacement,
}

impl ParityStriped {
    /// `data_devices` data drives plus one drive's worth of parity.
    ///
    /// # Panics
    ///
    /// Panics if `data_devices == 0`.
    pub fn new(data_devices: usize, placement: ParityPlacement) -> ParityStriped {
        assert!(data_devices >= 1, "parity needs at least one data device");
        ParityStriped {
            data_devices,
            placement,
        }
    }

    /// Number of data blocks per stripe.
    pub fn stripe_width(&self) -> usize {
        self.data_devices
    }

    /// Stripe containing logical block `lblock`.
    pub fn stripe_of(&self, lblock: u64) -> u64 {
        lblock / self.data_devices as u64
    }

    /// Number of stripes needed for `total` logical blocks.
    pub fn stripes(&self, total: u64) -> u64 {
        total.div_ceil(self.data_devices as u64)
    }

    /// Device holding stripe `s`'s parity block.
    pub fn parity_device(&self, s: u64) -> usize {
        let n = self.data_devices + 1;
        match self.placement {
            ParityPlacement::Dedicated => self.data_devices,
            ParityPlacement::Rotated => (n as u64 - 1 - (s % n as u64)) as usize,
        }
    }

    /// Physical location of stripe `s`'s parity block.
    pub fn parity_location(&self, s: u64) -> PhysBlock {
        PhysBlock {
            device: self.parity_device(s),
            block: s,
        }
    }

    /// The logical data blocks of stripe `s` that exist in a file of
    /// `total` blocks, with their physical locations.
    pub fn stripe_data(&self, s: u64, total: u64) -> Vec<(u64, PhysBlock)> {
        let w = self.data_devices as u64;
        (s * w..((s + 1) * w).min(total))
            .map(|b| (b, self.map(b)))
            .collect()
    }
}

impl Layout for ParityStriped {
    fn devices(&self) -> usize {
        self.data_devices + 1
    }

    fn map(&self, lblock: u64) -> PhysBlock {
        let s = self.stripe_of(lblock);
        let pos = (lblock % self.data_devices as u64) as usize;
        let pdev = self.parity_device(s);
        let device = if pos < pdev { pos } else { pos + 1 };
        PhysBlock { device, block: s }
    }

    fn invert(&self, device: usize, dblock: u64) -> Option<u64> {
        if device >= self.devices() {
            return None;
        }
        let s = dblock;
        let pdev = self.parity_device(s);
        if device == pdev {
            return None; // parity block, not a logical data block
        }
        let pos = if device < pdev { device } else { device - 1 };
        Some(s * self.data_devices as u64 + pos as u64)
    }

    fn blocks_on_device(&self, total: u64, device: usize) -> u64 {
        if device >= self.devices() || total == 0 {
            return 0;
        }
        // Every device holds exactly one block (data or parity) per stripe
        // row it participates in. Full stripes use every device; the final
        // partial stripe uses the parity device plus the first `tail` data
        // positions.
        let w = self.data_devices as u64;
        let full = total / w;
        let tail = total % w;
        let mut blocks = full;
        if tail > 0 {
            let s = full;
            let pdev = self.parity_device(s);
            let used = device == pdev || {
                let pos = if device < pdev { device } else { device - 1 };
                device != pdev && (pos as u64) < tail
            };
            if used {
                blocks += 1;
            }
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_bijection;
    use proptest::prelude::*;

    #[test]
    fn raid4_parity_stays_on_last_device() {
        let l = ParityStriped::new(3, ParityPlacement::Dedicated);
        assert_eq!(l.devices(), 4);
        for s in 0..10 {
            assert_eq!(l.parity_device(s), 3);
        }
        assert_eq!(
            l.map(0),
            PhysBlock {
                device: 0,
                block: 0
            }
        );
        assert_eq!(
            l.map(3),
            PhysBlock {
                device: 0,
                block: 1
            }
        );
        assert_eq!(l.invert(3, 0), None);
    }

    #[test]
    fn raid5_parity_rotates() {
        let l = ParityStriped::new(3, ParityPlacement::Rotated);
        let pdevs: Vec<usize> = (0..8).map(|s| l.parity_device(s)).collect();
        assert_eq!(pdevs, vec![3, 2, 1, 0, 3, 2, 1, 0]);
        // Stripe 1: parity on device 2, data positions 0,1,2 on 0,1,3.
        assert_eq!(
            l.map(3),
            PhysBlock {
                device: 0,
                block: 1
            }
        );
        assert_eq!(
            l.map(4),
            PhysBlock {
                device: 1,
                block: 1
            }
        );
        assert_eq!(
            l.map(5),
            PhysBlock {
                device: 3,
                block: 1
            }
        );
        assert_eq!(l.invert(2, 1), None);
        assert_eq!(l.invert(3, 1), Some(5));
    }

    #[test]
    fn stripe_data_lists_members() {
        let l = ParityStriped::new(2, ParityPlacement::Dedicated);
        let members = l.stripe_data(1, 3); // file of 3 blocks: stripe 1 holds only block 2
        assert_eq!(members.len(), 1);
        assert_eq!(members[0].0, 2);
        assert_eq!(l.stripes(3), 2);
        assert_eq!(l.stripes(4), 2);
        assert_eq!(l.stripes(5), 3);
    }

    #[test]
    fn capacity_includes_parity() {
        let l = ParityStriped::new(2, ParityPlacement::Dedicated);
        // 4 data blocks = 2 full stripes; each of the 3 devices holds 2.
        for d in 0..3 {
            assert_eq!(l.blocks_on_device(4, d), 2);
        }
        // 5 data blocks: stripe 2 holds data pos 0 (dev 0) + parity (dev 2).
        assert_eq!(l.blocks_on_device(5, 0), 3);
        assert_eq!(l.blocks_on_device(5, 1), 2);
        assert_eq!(l.blocks_on_device(5, 2), 3);
    }

    proptest! {
        #[test]
        fn bijection_dedicated(w in 1usize..7, total in 0u64..300) {
            check_bijection(&ParityStriped::new(w, ParityPlacement::Dedicated), total);
        }

        #[test]
        fn bijection_rotated(w in 1usize..7, total in 0u64..300) {
            check_bijection(&ParityStriped::new(w, ParityPlacement::Rotated), total);
        }

        #[test]
        fn parity_never_collides_with_data(w in 1usize..7, total in 1u64..300) {
            let l = ParityStriped::new(w, ParityPlacement::Rotated);
            for s in 0..l.stripes(total) {
                let p = l.parity_location(s);
                for (_, d) in l.stripe_data(s, total) {
                    prop_assert_ne!(p, d);
                }
                // Parity of row s inverts to no logical block.
                prop_assert_eq!(l.invert(p.device, p.block), None);
            }
        }

        #[test]
        fn stripe_members_share_row(w in 1usize..7, total in 1u64..300) {
            let l = ParityStriped::new(w, ParityPlacement::Rotated);
            for s in 0..l.stripes(total) {
                for (_, d) in l.stripe_data(s, total) {
                    prop_assert_eq!(d.block, s);
                }
            }
        }
    }
}
