//! # pario-layout — data placement for parallel files
//!
//! Crockett's *File Concepts for Parallel I/O* (1989) proposes implementing
//! every parallel file organization "using multiple direct-access storage
//! devices to obtain parallelism in the I/O system". This crate is the
//! placement mathematics that makes that concrete: exact, invertible
//! mappings from a file's logical blocks onto `(device, device block)`
//! locations.
//!
//! * [`Striped`] — round-robin units: plain striping (type S/SS files),
//!   interleaved placement (type IS), declustering (`unit == 1`) and its
//!   whole-block baseline.
//! * [`Partitioned`] — contiguous per-process ranges (type PS), device per
//!   partition or stacked.
//! * [`ParityStriped`] — RAID-4/5 style parity placement for the paper's
//!   reliability discussion.
//! * [`Shadowed`] — mirrored device pairs ("shadowing").
//! * [`ByteStriper`] — byte-granularity striping for type S streams.
//!
//! Every layout satisfies the bijection invariants checked by
//! [`check_bijection`], and [`runs`] coalesces logical ranges into the
//! per-device contiguous requests the global view issues.
//!
//! ```
//! use pario_layout::{runs, Layout, Striped};
//!
//! // 64 KiB stripe units (16 x 4 KiB blocks) over 4 drives.
//! let layout = Striped::new(4, 16);
//! let p = layout.map(35);
//! assert_eq!(p.device, 2); // block 35 sits in unit 2
//! assert_eq!(layout.invert(p.device, p.block), Some(35));
//! // A 128-block range coalesces into 8 per-device requests.
//! assert_eq!(runs(&layout, 0, 128).len(), 8);
//! ```

#![warn(missing_docs)]

mod bytestripe;
mod parity;
mod partitioned;
mod shadow;
mod spec;
mod striped;
mod traits;

pub use bytestripe::{ByteRun, ByteStriper};
pub use parity::{ParityPlacement, ParityStriped};
pub use partitioned::Partitioned;
pub use shadow::Shadowed;
pub use spec::LayoutSpec;
pub use striped::Striped;
pub use traits::{check_bijection, runs, Layout, PhysBlock, Run};
