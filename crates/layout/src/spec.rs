//! Serializable layout descriptions.
//!
//! File metadata must persist across mounts, so the file system stores a
//! [`LayoutSpec`] — a plain-data description — and rebuilds the concrete
//! [`Layout`] object on open.

use serde::{Deserialize, Serialize};

use crate::parity::{ParityPlacement, ParityStriped};
use crate::partitioned::Partitioned;
use crate::shadow::Shadowed;
use crate::striped::Striped;
use crate::traits::Layout;

/// A plain-data description of a data placement, stored in file metadata.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutSpec {
    /// Round-robin units over `devices` ([`Striped`]).
    Striped {
        /// Devices to stripe over.
        devices: usize,
        /// Stripe unit in volume blocks.
        unit: u64,
    },
    /// Contiguous per-partition placement ([`Partitioned`]).
    Partitioned {
        /// Partition boundaries in logical blocks (`bounds[0] == 0`).
        bounds: Vec<u64>,
        /// Devices partitions are assigned round-robin onto.
        devices: usize,
    },
    /// Striping with one parity block per stripe ([`ParityStriped`]).
    Parity {
        /// Data devices (total devices is one more).
        data_devices: usize,
        /// RAID-5 style rotation if true, dedicated parity device if false.
        rotated: bool,
    },
    /// A mirrored copy of another layout ([`Shadowed`]).
    Shadowed(Box<LayoutSpec>),
}

impl LayoutSpec {
    /// Construct the concrete layout this spec describes.
    pub fn build(&self) -> Box<dyn Layout> {
        match self {
            LayoutSpec::Striped { devices, unit } => Box::new(Striped::new(*devices, *unit)),
            LayoutSpec::Partitioned { bounds, devices } => {
                Box::new(Partitioned::from_bounds(bounds.clone(), *devices))
            }
            LayoutSpec::Parity {
                data_devices,
                rotated,
            } => Box::new(ParityStriped::new(
                *data_devices,
                if *rotated {
                    ParityPlacement::Rotated
                } else {
                    ParityPlacement::Dedicated
                },
            )),
            LayoutSpec::Shadowed(inner) => Box::new(Shadowed::new(inner.build())),
        }
    }

    /// Total devices (including parity and shadow devices) this placement
    /// needs from the volume.
    pub fn devices_required(&self) -> usize {
        match self {
            LayoutSpec::Striped { devices, .. } => *devices,
            LayoutSpec::Partitioned { devices, .. } => *devices,
            LayoutSpec::Parity { data_devices, .. } => data_devices + 1,
            LayoutSpec::Shadowed(inner) => inner.devices_required() * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_direct_construction() {
        let spec = LayoutSpec::Striped {
            devices: 3,
            unit: 2,
        };
        let l = spec.build();
        assert_eq!(l.devices(), 3);
        assert_eq!(l.map(5), Striped::new(3, 2).map(5));
    }

    #[test]
    fn devices_required() {
        assert_eq!(
            LayoutSpec::Striped {
                devices: 4,
                unit: 1
            }
            .devices_required(),
            4
        );
        assert_eq!(
            LayoutSpec::Parity {
                data_devices: 4,
                rotated: true
            }
            .devices_required(),
            5
        );
        let shadowed = LayoutSpec::Shadowed(Box::new(LayoutSpec::Partitioned {
            bounds: vec![0, 5, 10],
            devices: 2,
        }));
        assert_eq!(shadowed.devices_required(), 4);
        assert_eq!(shadowed.build().devices(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let spec = LayoutSpec::Shadowed(Box::new(LayoutSpec::Parity {
            data_devices: 3,
            rotated: false,
        }));
        let json = serde_json::to_string(&spec).unwrap();
        let back: LayoutSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
