//! Cross-layout property tests: composed layouts (shadowed partitioned,
//! parity), equivalences between the byte- and block-grain mappings, and
//! the capacity arithmetic the allocator depends on.

use proptest::prelude::*;

use pario_layout::{
    check_bijection, runs, ByteStriper, Layout, LayoutSpec, ParityPlacement, ParityStriped,
    Partitioned, Shadowed, Striped,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shadowed(Partitioned) keeps the bijection and mirrors capacities.
    #[test]
    fn shadowed_partitioned_bijection(total in 0u64..300, parts in 1usize..7, devices in 1usize..4) {
        let inner = Partitioned::uniform(total, parts, devices);
        let l = Shadowed::new(Box::new(inner));
        check_bijection(&l, total);
        for d in 0..devices {
            prop_assert_eq!(
                l.blocks_on_device(total, d),
                l.blocks_on_device(total, d + devices)
            );
        }
        for b in 0..total {
            let p = l.map(b);
            let m = l.mirror(p);
            prop_assert_eq!(m.device, p.device + devices);
            prop_assert_eq!(m.block, p.block);
        }
    }

    /// Shadowed(Striped) mirror round trips via primary().
    #[test]
    fn shadow_primary_mirror_inverse(total in 1u64..300, devices in 1usize..5, unit in 1u64..9) {
        let l = Shadowed::new(Box::new(Striped::new(devices, unit)));
        for b in 0..total {
            let p = l.map(b);
            prop_assert_eq!(l.primary(l.mirror(p)), p);
        }
    }

    /// ByteStriper at block granularity agrees with Striped when the
    /// unit is expressed in the same blocks.
    #[test]
    fn byte_striper_matches_block_striper(
        devices in 1usize..5,
        unit_blocks in 1u64..8,
        block in 0u64..400,
    ) {
        const BS: u64 = 64;
        let bytes = ByteStriper::new(devices, unit_blocks * BS);
        let blocks = Striped::new(devices, unit_blocks);
        let p = blocks.map(block);
        let (dev, off) = bytes.locate(block * BS);
        prop_assert_eq!(dev, p.device);
        prop_assert_eq!(off, p.block * BS);
    }

    /// Parity layouts: total device capacity equals data + one parity
    /// block per stripe.
    #[test]
    fn parity_capacity_accounts_for_parity(w in 1usize..7, total in 0u64..300, rotated in proptest::bool::ANY) {
        let placement = if rotated { ParityPlacement::Rotated } else { ParityPlacement::Dedicated };
        let l = ParityStriped::new(w, placement);
        let sum: u64 = (0..l.devices()).map(|d| l.blocks_on_device(total, d)).sum();
        prop_assert_eq!(sum, total + l.stripes(total));
    }

    /// LayoutSpec::build produces mappings identical to direct
    /// construction for every spec kind.
    #[test]
    fn spec_build_equivalence(total in 1u64..200, devices in 1usize..5, unit in 1u64..6) {
        let specs = vec![
            LayoutSpec::Striped { devices, unit },
            LayoutSpec::Parity { data_devices: devices, rotated: true },
            LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped { devices, unit })),
        ];
        for spec in specs {
            let built = spec.build();
            prop_assert_eq!(built.devices(), spec.devices_required());
            // Spot-check the mapping is self-consistent.
            for b in (0..total).step_by(7) {
                let p = built.map(b);
                prop_assert_eq!(built.invert(p.device, p.block), Some(b));
            }
        }
    }

    /// Run coalescing is a partition of the range: runs are non-empty,
    /// contiguous in logical space, and total to the range length.
    #[test]
    fn runs_partition_the_range(
        devices in 1usize..5,
        unit in 1u64..9,
        start in 0u64..200,
        count in 0u64..200,
    ) {
        let l = Striped::new(devices, unit);
        let rs = runs(&l, start, count);
        let mut pos = start;
        for r in &rs {
            prop_assert_eq!(r.lblock, pos);
            prop_assert!(r.count > 0);
            // Within a run, every block is on the same device,
            // consecutively.
            for k in 0..r.count {
                let p = l.map(r.lblock + k);
                prop_assert_eq!(p.device, r.device);
                prop_assert_eq!(p.block, r.dblock + k);
            }
            pos += r.count;
        }
        prop_assert_eq!(pos, start + count);
    }
}
