//! Property tests over the latency statistics: histogram quantiles are
//! monotone in q, and the striped histogram round-trips recorded counts.

use std::time::Duration;

use proptest::prelude::*;

use pario_server::{quantile_nanos, LatencyBucket, LatencyHistogram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// quantile_nanos is monotone non-decreasing in q over arbitrary
    /// bucket snapshots (sorted, as `snapshot` produces them).
    #[test]
    fn quantiles_monotone_in_q(counts in proptest::collection::vec(0u64..50, 1..20)) {
        let buckets: Vec<LatencyBucket> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| LatencyBucket { le_nanos: 1u64 << (i + 1), count: c })
            .collect();
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let vals: Vec<Option<u64>> = qs.iter().map(|&q| quantile_nanos(&buckets, q)).collect();
        if buckets.is_empty() {
            prop_assert!(vals.iter().all(Option::is_none));
        } else {
            for w in vals.windows(2) {
                let (a, b) = (w[0], w[1]);
                prop_assert!(a.is_some() && b.is_some());
                prop_assert!(a <= b, "quantiles must be monotone in q: {a:?} > {b:?}");
            }
            // Every quantile is one of the bucket bounds.
            for v in vals.into_iter().flatten() {
                prop_assert!(buckets.iter().any(|b| b.le_nanos == v));
            }
        }
    }

    /// The (striped) histogram round-trips: recording N durations yields
    /// a snapshot whose counts sum to N, bucketed at the right bounds.
    #[test]
    fn histogram_roundtrip(nanos in proptest::collection::vec(1u64..1_000_000_000, 1..200)) {
        let h = LatencyHistogram::default();
        for &n in &nanos {
            h.record(Duration::from_nanos(n));
        }
        let snap = h.snapshot();
        let total: u64 = snap.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, nanos.len() as u64);
        // Bounds are sorted, distinct powers of two covering every value.
        for w in snap.windows(2) {
            prop_assert!(w[0].le_nanos < w[1].le_nanos);
        }
        for &n in &nanos {
            prop_assert!(
                snap.iter().any(|b| b.le_nanos > n),
                "value {n} above every bucket bound"
            );
        }
    }
}
