//! Property tests pitting [`ByteRangeLocks`] against a naive reference
//! model: a plain list of held intervals with O(n²) overlap scans. Any
//! sequence of try-acquires and releases must produce identical
//! grant/deny decisions and identical held counts in both.

use proptest::prelude::*;

use pario_server::ByteRangeLocks;

/// One scripted step against the lock table.
#[derive(Debug, Clone)]
enum Op {
    /// try_acquire(start, start + len).
    TryAcquire { start: u64, len: u64 },
    /// Drop the i-th oldest live guard (modulo live count).
    Release { slot: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, 1u64..16).prop_map(|(start, len)| Op::TryAcquire { start, len }),
        (0usize..8).prop_map(|slot| Op::Release { slot }),
    ]
}

/// The reference: intervals as data, overlap by definition.
#[derive(Default)]
struct NaiveLocks {
    held: Vec<(u64, u64)>,
}

impl NaiveLocks {
    fn try_acquire(&mut self, start: u64, end: u64) -> bool {
        if self.held.iter().any(|&(s, e)| start < e && s < end) {
            return false;
        }
        self.held.push((start, end));
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Grant/deny decisions, held counts, and release behaviour agree
    /// with the reference on arbitrary op sequences.
    #[test]
    fn matches_naive_reference(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let locks = ByteRangeLocks::new();
        let mut naive = NaiveLocks::default();
        // Live guards, kept in grant order alongside their intervals so
        // releases stay in lockstep with the reference.
        let mut guards = Vec::new();

        for op in ops {
            match op {
                Op::TryAcquire { start, len } => {
                    let end = start + len;
                    let got = locks.try_acquire(start, end);
                    prop_assert_eq!(
                        got.is_some(),
                        naive.try_acquire(start, end),
                        "grant/deny diverged on [{}, {})", start, end
                    );
                    if let Some(g) = got {
                        guards.push(g);
                    }
                }
                Op::Release { slot } => {
                    if !guards.is_empty() {
                        let i = slot % guards.len();
                        drop(guards.remove(i));
                        naive.held.remove(i);
                    }
                }
            }
            prop_assert_eq!(locks.held(), naive.held.len());
        }

        drop(guards);
        prop_assert_eq!(locks.held(), 0, "all ranges release on drop");
    }

    /// A granted range never overlaps any other live granted range —
    /// the core mutual-exclusion property, checked straight from the
    /// intervals the table said yes to.
    #[test]
    fn granted_ranges_are_pairwise_disjoint(
        reqs in proptest::collection::vec((0u64..48, 1u64..12), 1..40)
    ) {
        let locks = ByteRangeLocks::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut guards = Vec::new();
        for (start, len) in reqs {
            let end = start + len;
            if let Some(g) = locks.try_acquire(start, end) {
                for &(s, e) in &live {
                    prop_assert!(
                        end <= s || e <= start,
                        "granted [{}, {}) overlaps live [{}, {})", start, end, s, e
                    );
                }
                live.push((start, end));
                guards.push(g);
            }
        }
    }
}
