//! GDA semantics on a volume with the shared cache tier enabled: the
//! byte-range locks must keep their exact uncached meaning. Locked
//! read-modify-writes never lose increments across concurrent sessions,
//! and a record write is durable on the raw media the moment its range
//! lock releases — the write-back tier is flushed for the locked span
//! before the guard drops, never after.

use pario_core::{Organization, ParallelFile};
use pario_fs::{resolve, RawFile, Volume, VolumeCacheConfig, VolumeConfig};
use pario_server::{Server, ServerConfig};

const REC: usize = 64;
const BS: usize = 256;

fn cached_volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: BS,
    })
    .unwrap()
    .enable_cache(VolumeCacheConfig::write_back(32))
    .unwrap()
}

/// Record `r`'s bytes assembled straight from the raw devices, bypassing
/// the cache tier entirely.
fn media_record(v: &Volume, f: &RawFile, r: u64) -> Vec<u8> {
    let layout = f.layout();
    let meta = f.meta_snapshot();
    let mut out = vec![0u8; REC];
    let mut byte = r * REC as u64;
    let mut done = 0usize;
    while done < REC {
        let l = byte / BS as u64;
        let within = (byte % BS as u64) as usize;
        let take = (BS - within).min(REC - done);
        let p = layout.map(l);
        let dev = meta.device_map[p.device];
        let abs = resolve(&meta.extents[p.device], p.block);
        let mut block = vec![0u8; BS];
        v.device(dev).read_block(abs, &mut block).unwrap();
        out[done..done + take].copy_from_slice(&block[within..within + take]);
        byte += take as u64;
        done += take;
    }
    out
}

#[test]
fn cached_gda_updates_never_lose_increments() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: u64 = 50;
    let volume = cached_volume();
    let pf = ParallelFile::create(&volume, "shared", Organization::GlobalDirect, REC, 4).unwrap();
    pf.direct_handle()
        .unwrap()
        .write_record(0, &[0; REC])
        .unwrap();
    let server = Server::new(volume, ServerConfig::default());
    crossbeam::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let sess = server.connect();
            s.spawn(move |_| {
                let c = sess.open_direct("shared").unwrap();
                for _ in 0..PER_CLIENT {
                    c.update(0, |bytes| {
                        let v = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                        bytes[..8].copy_from_slice(&(v + 1).to_le_bytes());
                    })
                    .unwrap();
                }
            });
        }
    })
    .unwrap();
    let sess = server.connect();
    let c = sess.open_direct("shared").unwrap();
    let mut buf = [0u8; REC];
    c.read_record(0, &mut buf).unwrap();
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    assert_eq!(v, CLIENTS as u64 * PER_CLIENT, "lost increments");

    // The cache tier carried the traffic and the server surfaces it.
    let stats = server.stats();
    let cache = stats.cache.expect("cached volume reports cache stats");
    assert!(cache.base.hits > 0, "hot record must hit: {cache:?}");
}

#[test]
fn range_locked_write_is_durable_on_media_at_unlock() {
    let volume = cached_volume();
    let pf = ParallelFile::create(&volume, "d", Organization::GlobalDirect, REC, 4).unwrap();
    let raw = pf.raw().clone();
    let server = Server::new(volume, ServerConfig::default());
    let sess = server.connect();
    let c = sess.open_direct("d").unwrap();

    // No flush anywhere: write_record's own range-lock release must
    // have pushed the span out of the write-back tier already.
    for r in 0..16u64 {
        let data: Vec<u8> = (0..REC).map(|i| (r as usize * 31 + i) as u8).collect();
        c.write_record(r, &data).unwrap();
        assert_eq!(
            media_record(server.volume(), &raw, r),
            data,
            "record {r} not on media after its range lock released"
        );
    }

    let stats = server.stats().cache.expect("cache stats");
    assert!(
        stats.base.writebacks > 0,
        "write-back tier flushed at unlock: {stats:?}"
    );
}
