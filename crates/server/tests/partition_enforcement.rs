//! Partition enforcement through the service layer (PS and PDA): an
//! access outside a session's claimed partition fails with a typed
//! [`ServerError::OutsidePartition`] naming the exact boundaries — never
//! a silent write into a neighbour's blocks.

use pario_core::{Organization, ParallelFile};
use pario_fs::{Volume, VolumeConfig};
use pario_server::{Server, ServerConfig, ServerError};

const REC: usize = 64;

fn server_with(org: Organization, total: u64) -> Server {
    let volume = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 512,
        block_size: 256,
    })
    .unwrap();
    // 64-byte records, 4 per file block: a file block is one volume block.
    ParallelFile::create_sized(&volume, "part", org, REC, 4, total).unwrap();
    Server::new(volume, ServerConfig::default())
}

/// 160 records over 3 partitions (40 file blocks -> 14/13/13) gives the
/// ranges [0,56), [56,108), [108,160).
fn ps_server() -> Server {
    server_with(Organization::PartitionedSeq { partitions: 3 }, 160)
}

#[test]
fn partition_ranges_match_the_uniform_split() {
    let server = ps_server();
    let sess = server.connect();
    let ranges: Vec<(u64, u64)> = (0..3)
        .map(|p| sess.open_partition("part", p).unwrap().range())
        .collect();
    assert_eq!(ranges, vec![(0, 56), (56, 108), (108, 160)]);
}

#[test]
fn direct_access_rejected_at_exact_partition_boundaries() {
    let server = ps_server();
    let sess = server.connect();
    let client = sess.open_partition("part", 1).unwrap();
    let mut buf = [0u8; REC];

    // One record below the partition: rejected, boundaries spelled out.
    match client.read_record(55, &mut buf) {
        Err(ServerError::OutsidePartition {
            record,
            partition,
            start,
            end,
        }) => {
            assert_eq!((record, partition, start, end), (55, 1, 56, 108));
        }
        other => panic!("expected OutsidePartition, got {other:?}"),
    }
    // First record past the partition: rejected the same way.
    match client.write_record(108, &[7; REC]) {
        Err(ServerError::OutsidePartition {
            record,
            partition,
            start,
            end,
        }) => {
            assert_eq!((record, partition, start, end), (108, 1, 56, 108));
        }
        other => panic!("expected OutsidePartition, got {other:?}"),
    }
    // Both inclusive edges work.
    client.write_record(56, &[1; REC]).unwrap();
    client.write_record(107, &[2; REC]).unwrap();
    client.read_record(56, &mut buf).unwrap();
    assert_eq!(buf, [1; REC]);
    client.read_record(107, &mut buf).unwrap();
    assert_eq!(buf, [2; REC]);
    // The neighbour owns its boundary record and sees only its own data.
    let probe = sess.open_partition("part", 2).unwrap();
    probe.write_record(108, &[9; REC]).unwrap();
    probe.read_record(108, &mut buf).unwrap();
    assert_eq!(buf, [9; REC]);
    client.read_record(107, &mut buf).unwrap();
    assert_eq!(buf, [2; REC], "neighbour write crossed the boundary");
}

#[test]
fn sequential_writer_cannot_spill_into_neighbour() {
    let server = ps_server();
    let sess = server.connect();
    let mut client = sess.open_partition("part", 0).unwrap();
    for i in 0..56u64 {
        client.write_next(&[i as u8; REC]).unwrap();
    }
    // Partition full: the 57th write is a typed refusal at the boundary.
    match client.write_next(&[99; REC]) {
        Err(ServerError::OutsidePartition {
            record,
            partition,
            start,
            end,
        }) => {
            assert_eq!((record, partition, start, end), (56, 0, 0, 56));
        }
        other => panic!("expected OutsidePartition, got {other:?}"),
    }
    // Reads stop at the boundary rather than erroring.
    client.rewind();
    let mut buf = [0u8; REC];
    let mut n = 0u64;
    while client.read_next(&mut buf).unwrap() {
        assert_eq!(buf, [n as u8; REC]);
        n += 1;
    }
    assert_eq!(n, 56);
}

#[test]
fn pda_direct_access_enforced_too() {
    let server = server_with(Organization::PartitionedDirect { partitions: 4 }, 128);
    let sess = server.connect();
    // 32 file blocks over 4 partitions: each owns 32 records.
    let client = sess.open_partition("part", 2).unwrap();
    assert_eq!(client.range(), (64, 96));
    // Random access within the partition is free.
    for r in [95u64, 64, 80] {
        client.write_record(r, &[r as u8; REC]).unwrap();
    }
    let mut buf = [0u8; REC];
    client.read_record(80, &mut buf).unwrap();
    assert_eq!(buf, [80; REC]);
    // Outside it — either side — is typed.
    assert!(matches!(
        client.read_record(63, &mut buf),
        Err(ServerError::OutsidePartition {
            record: 63,
            partition: 2,
            start: 64,
            end: 96,
        })
    ));
    assert!(matches!(
        client.write_record(96, &[0; REC]),
        Err(ServerError::OutsidePartition {
            record: 96,
            partition: 2,
            start: 64,
            end: 96,
        })
    ));
}

#[test]
fn partition_claims_are_exclusive_until_dropped() {
    let server = ps_server();
    let a = server.connect();
    let b = server.connect();
    let held = a.open_partition("part", 1).unwrap();
    // Another session cannot claim partition 1...
    match b.open_partition("part", 1).err() {
        Some(ServerError::Claimed { name, index, by }) => {
            assert_eq!((name.as_str(), index, by), ("part", 1, a.id()));
        }
        other => panic!("expected Claimed, got {other:?}"),
    }
    // ...but a different partition is free.
    let other = b.open_partition("part", 0).unwrap();
    drop(other);
    // Dropping the holder releases the claim.
    drop(held);
    let reclaimed = b.open_partition("part", 1).unwrap();
    assert_eq!(reclaimed.partition(), 1);
}

#[test]
fn rejected_accesses_do_not_count_as_operations() {
    let server = ps_server();
    let sess = server.connect();
    let client = sess.open_partition("part", 1).unwrap();
    let mut buf = [0u8; REC];
    let _ = client.read_record(0, &mut buf); // outside: refused pre-admission
    client.write_record(60, &[5; REC]).unwrap();
    client.read_record(60, &mut buf).unwrap();
    let stats = server.stats();
    assert_eq!(stats.total_ops(), 2, "refused access must not be counted");
}
