//! Cross-session sharing semantics under real concurrency: one shared
//! SS cursor across independent sessions, exclusive type-S opens,
//! lock-protected GDA read-modify-write, interleave slot claims, and
//! admission-control saturation behaviour.

use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Mutex;

use pario_core::{Organization, ParallelFile};
use pario_fs::{Volume, VolumeConfig};
use pario_server::{Saturation, Server, ServerConfig, ServerError};

const REC: usize = 64;

fn volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: 256,
    })
    .unwrap()
}

fn fill_ss(volume: &Volume, name: &str, records: u64) {
    let pf = ParallelFile::create(volume, name, Organization::SelfScheduledSeq, REC, 4).unwrap();
    let w = pf.self_sched_writer().unwrap();
    for i in 0..records {
        w.write_next(&[i as u8; REC]).unwrap();
    }
    w.finish().unwrap();
}

#[test]
fn ss_sessions_share_one_cursor_exactly_once() {
    const RECORDS: u64 = 400;
    const CLIENTS: usize = 8;
    let volume = volume();
    fill_ss(&volume, "queue", RECORDS);
    let server = Server::new(
        volume,
        ServerConfig {
            max_in_flight: 4,
            saturation: Saturation::Block,
            ..ServerConfig::default()
        },
    );
    let seen = Mutex::new(HashSet::new());
    crossbeam::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let sess = server.connect();
            let seen = &seen;
            s.spawn(move |_| {
                let q = sess.open_self_sched("queue").unwrap();
                let mut buf = [0u8; REC];
                while let Some(idx) = q.read_next(&mut buf).unwrap() {
                    assert_eq!(buf, [idx as u8; REC], "torn record {idx}");
                    assert!(seen.lock().unwrap().insert(idx), "record {idx} twice");
                }
            });
        }
    })
    .unwrap();
    assert_eq!(seen.into_inner().unwrap().len(), RECORDS as usize);
    let stats = server.stats();
    assert_eq!(stats.sessions.len(), CLIENTS);
    // Every session got work (each drained until it saw end-of-file).
    assert!(stats.sessions.iter().all(|s| s.reads > 0));
    // Admission kept the configured bound under 8 clients.
    assert!(stats.queue_depth_high_water <= 4);
    assert!(!stats.latency.is_empty());
    // Every device transfer flowed through the volume's I/O executor,
    // and the queues drained once the clients finished.
    assert!(stats.executor.serviced > 0);
    assert_eq!(stats.executor.in_flight, 0);
}

#[test]
fn ss_block_reads_and_naive_sessions_share_the_cursor_too() {
    let volume = volume();
    fill_ss(&volume, "queue", 42); // short tail block of 2
    let server = Server::new(volume, ServerConfig::default());
    let a = server.connect().open_self_sched("queue").unwrap();
    let b = server.connect().open_self_sched_naive("queue").unwrap();
    let mut seen = HashSet::new();
    let mut block = [0u8; REC * 4];
    let mut rec = [0u8; REC];
    loop {
        let more_a = match a.read_next_block(&mut block).unwrap() {
            Some((first, n)) => {
                for k in 0..n as u64 {
                    assert!(seen.insert(first + k));
                }
                true
            }
            None => false,
        };
        let more_b = match b.read_next(&mut rec).unwrap() {
            Some(idx) => {
                assert!(seen.insert(idx));
                true
            }
            None => false,
        };
        if !more_a && !more_b {
            break;
        }
    }
    assert_eq!(seen.len(), 42);
    assert_eq!(a.claimed(), 42);
}

#[test]
fn sequential_files_are_exclusive_per_session() {
    let volume = volume();
    ParallelFile::create(&volume, "log", Organization::Sequential, REC, 4).unwrap();
    let server = Server::new(volume, ServerConfig::default());
    let a = server.connect();
    let b = server.connect();

    let mut writer = a.open_sequential("log").unwrap();
    match b.open_sequential("log").err() {
        Some(ServerError::Exclusive { name, by }) => {
            assert_eq!((name.as_str(), by), ("log", a.id()));
        }
        other => panic!("expected Exclusive, got {other:?}"),
    }
    for i in 0..20u64 {
        writer.write_next(&[i as u8; REC]).unwrap();
    }
    assert_eq!(writer.finish().unwrap(), 20);
    drop(writer);

    // The hold is gone: the other session reads the whole file back.
    let mut reader = b.open_sequential("log").unwrap();
    let mut buf = [0u8; REC];
    let mut n = 0u64;
    while reader.read_next(&mut buf).unwrap() {
        assert_eq!(buf, [n as u8; REC]);
        n += 1;
    }
    assert_eq!(n, 20);
}

#[test]
fn gda_updates_never_lose_increments() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: u64 = 50;
    let volume = volume();
    let pf = ParallelFile::create(&volume, "shared", Organization::GlobalDirect, REC, 4).unwrap();
    pf.direct_handle()
        .unwrap()
        .write_record(0, &[0; REC])
        .unwrap();
    let server = Server::new(volume, ServerConfig::default());
    crossbeam::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let sess = server.connect();
            s.spawn(move |_| {
                let c = sess.open_direct("shared").unwrap();
                for _ in 0..PER_CLIENT {
                    // Locked read-modify-write of a counter in the record.
                    c.update(0, |bytes| {
                        let v = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                        bytes[..8].copy_from_slice(&(v + 1).to_le_bytes());
                    })
                    .unwrap();
                }
            });
        }
    })
    .unwrap();
    let sess = server.connect();
    let c = sess.open_direct("shared").unwrap();
    let mut buf = [0u8; REC];
    c.read_record(0, &mut buf).unwrap();
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    assert_eq!(v, CLIENTS as u64 * PER_CLIENT, "lost increments");
}

#[test]
fn interleave_slots_claimed_like_partitions() {
    let volume = volume();
    ParallelFile::create(
        &volume,
        "matrix",
        Organization::InterleavedSeq { processes: 2 },
        REC,
        4,
    )
    .unwrap();
    let server = Server::new(volume, ServerConfig::default());
    let a = server.connect();
    let b = server.connect();
    let mut s0 = a.open_interleaved("matrix", 0).unwrap();
    assert!(matches!(
        b.open_interleaved("matrix", 0),
        Err(ServerError::Claimed { index: 0, .. })
    ));
    let mut s1 = b.open_interleaved("matrix", 1).unwrap();
    // Each slot writes its strided blocks; the global view interleaves.
    let mut block = [0u8; REC * 4];
    for k in 0..3u64 {
        block.fill((2 * k) as u8);
        s0.write_next_block(&block).unwrap();
        block.fill((2 * k + 1) as u8);
        s1.write_next_block(&block).unwrap();
    }
    // Wrong organization for a sequential open: refused at the door.
    assert!(matches!(
        a.open_sequential("matrix"),
        Err(ServerError::Core(_))
    ));
    // Global check through the core layer.
    let pf = ParallelFile::open(server.volume(), "matrix").unwrap();
    let mut gr = pf.global_reader();
    let mut buf = [0u8; REC];
    let mut idx = 0u64;
    while gr.read_record(&mut buf).unwrap() {
        assert_eq!(buf, [(idx / 4) as u8; REC], "file block {}", idx / 4);
        idx += 1;
    }
    assert_eq!(idx, 24);
    drop(s0);
    // Released slot is reclaimable.
    let _s0 = b.open_interleaved("matrix", 0).unwrap();
}

#[test]
fn reject_policy_surfaces_busy_to_the_client() {
    let volume = volume();
    ParallelFile::create(&volume, "shared", Organization::GlobalDirect, REC, 4).unwrap();
    let server = Server::new(
        volume,
        ServerConfig {
            max_in_flight: 1,
            saturation: Saturation::Reject,
            ..ServerConfig::default()
        },
    );
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    crossbeam::thread::scope(|s| {
        let holder = server.connect();
        s.spawn(move |_| {
            let c = holder.open_direct("shared").unwrap();
            // This update holds the single admission permit while the
            // closure blocks, pinning the server at saturation.
            c.update(0, |bytes| {
                entered_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                bytes[0] = 1;
            })
            .unwrap();
        });
        entered_rx.recv().unwrap();
        let other = server.connect();
        let c = other.open_direct("shared").unwrap();
        let mut buf = [0u8; REC];
        assert!(matches!(c.read_record(0, &mut buf), Err(ServerError::Busy)));
        release_tx.send(()).unwrap();
    })
    .unwrap();
    let stats = server.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.queue_depth_high_water, 1);
    assert_eq!(stats.in_flight, 0);
}
