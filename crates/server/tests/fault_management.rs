//! The ISSUE acceptance scenario, end to end: a 4-device shadowed
//! volume under an injected fail-stop + transient schedule serves a
//! concurrent 8-client read/write workload with zero data errors while
//! the faulted device walks Healthy → Failed → Rebuilding → Healthy
//! through an *online* rebuild — foreground traffic never stops.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pario_core::{Organization, ParallelFile};
use pario_disk::{mem_array, FaultDevice, FaultPlan};
use pario_fs::{HealthState, Volume};
use pario_layout::LayoutSpec;
use pario_reliability::{rebuild_device_online, RebuildThrottle};
use pario_server::{Server, ServerConfig, ServerError};

const REC: usize = 256;
const RECORDS: u64 = 128;
const CLIENTS: u64 = 8;
const PER_CLIENT: u64 = RECORDS / CLIENTS;
const FAULT_DEV: usize = 1;

fn pat(r: u64, tag: u8) -> Vec<u8> {
    (0..REC).map(|i| tag ^ (r as u8) ^ (i as u8)).collect()
}

/// Every read must return *some complete write* of that record — a mix
/// of two writes (torn) or stale garbage is a data error.
fn assert_whole(r: u64, buf: &[u8]) {
    let tag = buf[0] ^ (r as u8);
    assert_eq!(
        buf,
        &pat(r, tag)[..],
        "record {r} is torn / corrupt (inferred tag {tag})"
    );
}

#[test]
fn eight_clients_survive_fail_stop_and_online_rebuild() {
    let mut devices = mem_array(4, 1024, REC);
    let (fault, wrapped) = FaultDevice::wrap(
        devices[FAULT_DEV].clone(),
        FaultPlan {
            seed: 0xfau64 * 17,
            transient_rate: 0.02,
            fail_after: Some(300),
            ..FaultPlan::default()
        },
    );
    devices[FAULT_DEV] = wrapped;
    fault.set_armed(false);

    let volume = Volume::new(devices).unwrap();
    // Shadowed over primaries {0, 1} with mirrors {2, 3}: the faulted
    // device holds one copy of every other record.
    let pf = ParallelFile::create_with_layout(
        &volume,
        "data",
        Organization::GlobalDirect,
        REC,
        1,
        LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
            devices: 2,
            unit: 1,
        })),
        None,
    )
    .unwrap();
    let h = pf.direct_handle().unwrap();
    for r in 0..RECORDS {
        h.write_record(r, &pat(r, 0)).unwrap();
    }
    drop(h);
    drop(pf);

    let server = Server::new(volume, ServerConfig::default());
    fault.set_armed(true);

    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let mut orchestration: Option<String> = None;
    crossbeam::thread::scope(|s| {
        // Eight clients, each owning a disjoint record range (one
        // writer per record, so every read-back has a known writer).
        for c in 0..CLIENTS {
            let sess = server.connect();
            let (stop, ops) = (&stop, &ops);
            s.spawn(move |_| {
                let d = sess.open_direct("data").unwrap();
                let base = c * PER_CLIENT;
                let mut buf = vec![0u8; REC];
                let mut k = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let r = base + k % PER_CLIENT;
                    let tag = (k % 200) as u8 + 1;
                    d.write_record(r, &pat(r, tag)).unwrap();
                    let r2 = base + (k * 7 + 3) % PER_CLIENT;
                    d.read_record(r2, &mut buf).unwrap();
                    assert_whole(r2, &buf);
                    ops.fetch_add(2, Ordering::Relaxed);
                    k += 1;
                }
            });
        }

        // Orchestrate in a closure so ANY failure still releases the
        // clients — otherwise the scope would join forever.
        let run = || -> Result<(), String> {
            let vol = server.volume();
            // The schedule fail-stops the device mid-workload; the
            // health board learns from the executor's error feedback.
            let t0 = Instant::now();
            while vol.device_health(FAULT_DEV) != HealthState::Failed {
                if t0.elapsed() > Duration::from_secs(30) {
                    return Err(format!(
                        "fail-stop never reached the health board; health {:?}, faults {:?}",
                        vol.health_snapshot(),
                        fault.counts()
                    ));
                }
                std::thread::yield_now();
            }
            // Brownout is visible to clients as a typed advisory, and
            // in the stats snapshot.
            match server.advisory() {
                Some(ServerError::Degraded { device, state }) => {
                    assert_eq!(device, FAULT_DEV);
                    assert_eq!(state, HealthState::Failed);
                }
                other => return Err(format!("expected a Degraded advisory, got {other:?}")),
            }
            assert_eq!(
                server.stats().degraded(),
                vec![(FAULT_DEV, HealthState::Failed)]
            );

            // Online rebuild while the clients keep hammering the file.
            let before = ops.load(Ordering::SeqCst);
            let report = rebuild_device_online(
                vol,
                FAULT_DEV,
                RebuildThrottle {
                    burst_blocks: 4,
                    pause: Duration::from_micros(100),
                },
            )
            .map_err(|e| format!("online rebuild failed: {e}"))?;
            if report.shadow_resynced.len() != 1 {
                return Err(format!("unexpected rebuild report {report:?}"));
            }
            assert_eq!(vol.device_health(FAULT_DEV), HealthState::Healthy);
            if ops.load(Ordering::SeqCst) <= before {
                return Err("foreground traffic stalled during the online rebuild".into());
            }
            Ok(())
        };
        let r = run();
        stop.store(true, Ordering::SeqCst);
        orchestration = r.err();
    })
    .unwrap();
    if let Some(e) = orchestration {
        panic!("{e}");
    }

    // The full cycle is on the record: Healthy → Failed → Rebuilding →
    // Healthy, with at most a Suspect hop from the transient schedule.
    let snap = server.stats().health;
    assert_eq!(snap.len(), 4);
    let cycle = [
        HealthState::Healthy,
        HealthState::Failed,
        HealthState::Rebuilding,
        HealthState::Healthy,
    ];
    let mut want = cycle.iter();
    let mut next = want.next();
    for &st in &snap[FAULT_DEV].transitions {
        if Some(&st) == next {
            next = want.next();
        }
    }
    assert!(
        next.is_none(),
        "health history {:?} does not contain the cycle {cycle:?}",
        snap[FAULT_DEV].transitions
    );
    assert!(snap.iter().all(|h| h.state == HealthState::Healthy));
    assert!(server.advisory().is_none());

    // Zero data errors: every record reads back as one complete write,
    // with the rebuilt device serving (its mirror killed) and vice versa.
    let sess = server.connect();
    let d = sess.open_direct("data").unwrap();
    let mut buf = vec![0u8; REC];
    for dead in [FAULT_DEV + 2, FAULT_DEV] {
        server.volume().device(dead).fail();
        for r in 0..RECORDS {
            d.read_record(r, &mut buf).unwrap();
            assert_whole(r, &buf);
        }
        server.volume().device(dead).heal();
    }
    let stats = server.stats();
    assert!(stats.executor.serviced > 0);
    assert!(fault.counts().failed_ops > 0, "the fail-stop never fired");
}
