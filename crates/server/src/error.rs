//! Error type for the service layer.

use std::fmt;

use pario_core::CoreError;
use pario_fs::{FsError, HealthState};

/// Errors surfaced to service-layer clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The admission queue is saturated and the server is configured to
    /// reject rather than queue (see
    /// [`Saturation::Reject`](crate::Saturation::Reject)).
    Busy,
    /// A type-S file is already open exclusively by another session.
    Exclusive {
        /// File name.
        name: String,
        /// Session currently holding the file.
        by: u64,
    },
    /// The requested partition (PS/PDA) or interleaved slot (IS) is
    /// already claimed by another session.
    Claimed {
        /// File name.
        name: String,
        /// Partition / process index.
        index: u32,
        /// Session currently holding the claim.
        by: u64,
    },
    /// A PS/PDA access addressed a record outside the session's
    /// partition — an error, never a silent corruption of a
    /// neighbour's blocks.
    OutsidePartition {
        /// The offending global record index.
        record: u64,
        /// The session's partition.
        partition: u32,
        /// First record owned by the partition.
        start: u64,
        /// One past the last record owned by the partition.
        end: u64,
    },
    /// A locked GDA operation addressed bytes outside the byte-range
    /// lock the caller holds (see `DirectClient::write_record_locked`):
    /// the write is refused rather than performed unserialised.
    RangeNotLocked {
        /// First byte the operation needed.
        lo: u64,
        /// One past the last byte the operation needed.
        hi: u64,
    },
    /// A device-level failure surfaced while the volume is running
    /// degraded — a *brownout advisory*, not an opaque disk error: the
    /// named device is Suspect / Failed / Rebuilding, redundant layouts
    /// keep serving (slower), and unprotected data on it is unavailable
    /// until the rebuild completes.
    Degraded {
        /// Volume device index the health board blames.
        device: usize,
        /// That device's health state at the time of the failure.
        state: HealthState,
    },
    /// An error from the parallel-file layer.
    Core(CoreError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Busy => write!(f, "server busy: admission queue saturated"),
            ServerError::Exclusive { name, by } => {
                write!(f, "file '{name}' is held exclusively by session {by}")
            }
            ServerError::Claimed { name, index, by } => {
                write!(
                    f,
                    "partition {index} of '{name}' is claimed by session {by}"
                )
            }
            ServerError::OutsidePartition {
                record,
                partition,
                start,
                end,
            } => write!(
                f,
                "record {record} lies outside partition {partition} [{start}, {end})"
            ),
            ServerError::RangeNotLocked { lo, hi } => write!(
                f,
                "bytes [{lo}, {hi}) are not covered by the held range lock"
            ),
            ServerError::Degraded { device, state } => write!(
                f,
                "volume degraded: device {device} is {state}; redundant \
                 layouts keep serving"
            ),
            ServerError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> ServerError {
        ServerError::Core(e)
    }
}

impl From<FsError> for ServerError {
    fn from(e: FsError) -> ServerError {
        ServerError::Core(CoreError::Fs(e))
    }
}

/// Result alias for service-layer operations.
pub type Result<T> = std::result::Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServerError::Busy.to_string().contains("saturated"));
        let e = ServerError::OutsidePartition {
            record: 60,
            partition: 0,
            start: 0,
            end: 56,
        };
        assert!(e.to_string().contains("outside partition 0"));
        let e = ServerError::Exclusive {
            name: "f".into(),
            by: 3,
        };
        assert!(e.to_string().contains("session 3"));
        let e = ServerError::Claimed {
            name: "f".into(),
            index: 2,
            by: 1,
        };
        assert!(e.to_string().contains("partition 2"));
        let e: ServerError = FsError::NotFound("x".into()).into();
        assert!(matches!(e, ServerError::Core(_)));
        let e = ServerError::RangeNotLocked { lo: 64, hi: 128 };
        assert!(e.to_string().contains("[64, 128)"));
        let e = ServerError::Degraded {
            device: 1,
            state: HealthState::Rebuilding,
        };
        assert!(e.to_string().contains("device 1 is rebuilding"));
    }
}
