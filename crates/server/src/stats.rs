//! Observability for load experiments: per-session operation counts,
//! admission-queue water marks, and a log₂-bucketed latency histogram
//! that device-level statistics ([`IoNodeStats`]) can be laid against to
//! attribute time to device queues vs. transfers.

use std::sync::atomic::Ordering;

use pario_check::{AtomicU64, AtomicUsize};
use std::time::Duration;

use pario_disk::IoNodeStats;
use pario_fs::{DeviceHealth, HealthState, VolumeCacheStats};

use crate::admission::AdmissionStats;

/// Number of histogram buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket absorbs the tail
/// (≈ 34 s and beyond).
pub const LATENCY_BUCKETS: usize = 36;

/// Stripes the histogram spreads its writes across (power of two).
const LATENCY_STRIPES: usize = 8;

/// One stripe of histogram buckets, padded to its own cache lines so
/// recorders on different stripes never contend on a shared word.
#[repr(align(128))]
struct Stripe {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

/// Hands each recording thread a home stripe round-robin.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % LATENCY_STRIPES; // ordering: stripe index needs uniqueness, not ordering
}

/// A concurrent log₂ latency histogram.
///
/// Counts are striped across cache-line-padded bucket arrays, with each
/// recording thread pinned to a home stripe: at 64 concurrent sessions a
/// single shared bucket word would otherwise become the hottest line in
/// the process. [`snapshot`](LatencyHistogram::snapshot) sums the
/// stripes, so readers see the same totals as before.
pub struct LatencyHistogram {
    stripes: [Stripe; LATENCY_STRIPES],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            stripes: std::array::from_fn(|_| Stripe {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
        }
    }
}

impl LatencyHistogram {
    /// Record one operation latency.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().max(1) as u64;
        let idx = (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        // Destructors may run after the thread-local is torn down.
        let stripe = STRIPE.try_with(|s| *s).unwrap_or(0);
        self.stripes[stripe].buckets[idx].fetch_add(1, Ordering::Relaxed); // ordering: histogram bump; read only by diagnostic snapshots
    }

    /// Snapshot every non-empty bucket as `(le_nanos, count)` where
    /// `le_nanos` is the bucket's exclusive upper bound.
    pub fn snapshot(&self) -> Vec<LatencyBucket> {
        (0..LATENCY_BUCKETS)
            .filter_map(|i| {
                let count = self
                    .stripes
                    .iter()
                    .map(|s| s.buckets[i].load(Ordering::Relaxed)) // ordering: diagnostic snapshot; staleness is acceptable
                    .sum::<u64>();
                (count > 0).then_some(LatencyBucket {
                    le_nanos: 1u64 << (i + 1),
                    count,
                })
            })
            .collect()
    }
}

/// One non-empty histogram bucket.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LatencyBucket {
    /// Exclusive upper bound of the bucket, in nanoseconds.
    pub le_nanos: u64,
    /// Operations that landed in the bucket.
    pub count: u64,
}

/// Approximate quantile over a bucket snapshot (upper bound of the
/// bucket containing the q-th operation).
pub fn quantile_nanos(buckets: &[LatencyBucket], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().map(|b| b.count).sum();
    if total == 0 {
        return None;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for b in buckets {
        seen += b.count;
        if seen >= target {
            return Some(b.le_nanos);
        }
    }
    buckets.last().map(|b| b.le_nanos)
}

/// Live operation counters for one session.
#[derive(Default)]
pub(crate) struct SessionCounters {
    pub(crate) reads: AtomicU64,
    pub(crate) writes: AtomicU64,
}

/// A snapshot of one session's activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Session id (as returned at connect time).
    pub id: u64,
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
}

impl SessionStats {
    /// Total operations.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A point-in-time snapshot of the whole server.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Per-session activity, in session-id order.
    pub sessions: Vec<SessionStats>,
    /// Operations in flight right now.
    pub in_flight: usize,
    /// Queue-depth high water: the most operations ever admitted at
    /// once. Bounded by the configured admission limit.
    pub queue_depth_high_water: usize,
    /// The most requests ever waiting for admission at once.
    pub wait_high_water: usize,
    /// Requests rejected with `Busy`.
    pub rejected: u64,
    /// Cumulative operations ever admitted, across all sessions.
    /// Experiments compute achieved (goodput) rates from this without
    /// diffing per-session counters.
    pub total_admitted: u64,
    /// End-to-end operation latency histogram (admission wait included).
    pub latency: Vec<LatencyBucket>,
    /// Aggregate device-side queue statistics, when the volume's devices
    /// run behind I/O nodes: lets callers split end-to-end latency into
    /// device queue wait vs. transfer time.
    pub io: Option<IoNodeStats>,
    /// Aggregate statistics of the volume's own I/O executor (the
    /// per-device worker bank every volume fronts its devices with).
    /// Unlike [`io`](ServerStats::io) this is always present: for plain
    /// device banks it counts the executor workers the volume spawned,
    /// and for node-fronted banks it equals the nodes' own totals.
    pub executor: IoNodeStats,
    /// Per-device health from the volume's health state machine, in
    /// device order: state, error tallies, and the transition history
    /// (Healthy → Suspect → Failed → Rebuilding → Healthy).
    pub health: Vec<DeviceHealth>,
    /// Volume cache tier counters (hits, misses, coalesced submits,
    /// spills), when the volume has a [`VolumeCacheStats`] tier enabled;
    /// `None` on an uncached volume.
    pub cache: Option<VolumeCacheStats>,
}

impl ServerStats {
    /// Total operations across all sessions.
    pub fn total_ops(&self) -> u64 {
        self.sessions.iter().map(|s| s.ops()).sum()
    }

    /// Devices currently not Healthy, as `(device, state)` pairs —
    /// empty on a fully healthy volume.
    pub fn degraded(&self) -> Vec<(usize, HealthState)> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.state != HealthState::Healthy)
            .map(|(i, h)| (i, h.state))
            .collect()
    }

    /// Approximate latency quantile over the snapshot's histogram, in
    /// nanoseconds (upper bound of the bucket holding the q-th op);
    /// `None` on an idle server.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        quantile_nanos(&self.latency, q)
    }

    /// Median operation latency in nanoseconds (log₂-bucket bound).
    pub fn p50(&self) -> Option<u64> {
        self.latency_quantile(0.5)
    }

    /// 99th-percentile operation latency in nanoseconds.
    pub fn p99(&self) -> Option<u64> {
        self.latency_quantile(0.99)
    }

    /// 99.9th-percentile operation latency in nanoseconds.
    pub fn p999(&self) -> Option<u64> {
        self.latency_quantile(0.999)
    }

    /// Fairness as min/max per-session ops (1.0 = perfectly fair).
    /// `None` with fewer than two sessions or an idle server.
    pub fn fairness(&self) -> Option<f64> {
        if self.sessions.len() < 2 {
            return None;
        }
        let min = self.sessions.iter().map(|s| s.ops()).min()?;
        let max = self.sessions.iter().map(|s| s.ops()).max()?;
        (max > 0).then(|| min as f64 / max as f64)
    }

    pub(crate) fn from_parts(
        sessions: Vec<SessionStats>,
        adm: AdmissionStats,
        latency: Vec<LatencyBucket>,
        io: Option<IoNodeStats>,
        executor: IoNodeStats,
        health: Vec<DeviceHealth>,
        cache: Option<VolumeCacheStats>,
    ) -> ServerStats {
        ServerStats {
            sessions,
            in_flight: adm.in_flight,
            queue_depth_high_water: adm.admitted_high_water,
            wait_high_water: adm.wait_high_water,
            rejected: adm.rejected,
            total_admitted: adm.total_admitted,
            latency,
            io,
            executor,
            health,
            cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(3)); // bucket [2,4)
        h.record(Duration::from_nanos(3));
        h.record(Duration::from_micros(5)); // [4096, 8192)
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap[0],
            LatencyBucket {
                le_nanos: 4,
                count: 2
            }
        );
        assert_eq!(snap[1].le_nanos, 8192);
        assert_eq!(quantile_nanos(&snap, 0.5), Some(4));
        assert_eq!(quantile_nanos(&snap, 1.0), Some(8192));
        assert_eq!(quantile_nanos(&[], 0.5), None);
    }

    #[test]
    fn stats_quantile_accessors() {
        let mut s = ServerStats::default();
        assert_eq!(s.p50(), None);
        // 998 ops in [2,4), 2 ops in [4096,8192): p50/p99 land in the
        // low bucket; the p999 rank (the 999th of 1000) is in the tail.
        s.latency = vec![
            LatencyBucket {
                le_nanos: 4,
                count: 998,
            },
            LatencyBucket {
                le_nanos: 8192,
                count: 2,
            },
        ];
        assert_eq!(s.p50(), Some(4));
        assert_eq!(s.p99(), Some(4));
        assert_eq!(s.p999(), Some(8192));
        assert_eq!(s.latency_quantile(1.0), Some(8192));
    }

    #[test]
    fn fairness_ratio() {
        let mut s = ServerStats::default();
        assert_eq!(s.fairness(), None);
        s.sessions = vec![
            SessionStats {
                id: 0,
                reads: 50,
                writes: 0,
            },
            SessionStats {
                id: 1,
                reads: 90,
                writes: 10,
            },
        ];
        assert!((s.fairness().unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(s.total_ops(), 150);
    }
}
