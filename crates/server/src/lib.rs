//! # pario-server — the concurrent multi-client file service layer
//!
//! Crockett's organizations assume many cooperating processes share one
//! parallel file; ViPIOS-style client–server designs put dedicated
//! server processes in front of the volume to arbitrate exactly that.
//! This crate is that front door: a [`Server`] owns a
//! [`Volume`](pario_fs::Volume) and hands out [`Session`]s —
//! independent client handles usable from separate threads — while
//! enforcing each organization's sharing semantics *across clients*:
//!
//! * **SS** — one server-side shared cursor per file: any session's next
//!   request gets the globally next record, none skipped or duplicated
//!   (the §3.1 invariant, now spanning clients; the same two-phase
//!   reservation as [`pario_core::SharedCursor`]).
//! * **PS / PDA** — partition ownership: each partition is claimed by at
//!   most one session, and an access outside the claimed partition fails
//!   with [`ServerError::OutsidePartition`] rather than silently
//!   corrupting a neighbour.
//! * **IS** — interleaved slots are claimed like partitions.
//! * **GDA** — writers take byte-range locks so overlapping writes are
//!   serialised; disjoint writers proceed in parallel.
//! * **S** — plain sequential files are exclusive to one session.
//!
//! In front of the data path sits a bounded admission queue with
//! backpressure ([`Saturation::Block`]) or fail-fast
//! ([`Saturation::Reject`] → [`ServerError::Busy`]) and round-robin
//! fairness across sessions, plus a [`ServerStats`] snapshot (per-session
//! ops, queue-depth high water, latency histogram, device queue
//! attribution, per-device health) so load experiments are observable.
//! When the volume's health board reports a degraded device, data-path
//! failures surface as the typed [`ServerError::Degraded`] advisory —
//! clients see a brownout naming the device, not an opaque disk error —
//! and [`Server::advisory`] exposes the same signal on demand.
//!
//! ```
//! use pario_core::{Organization, ParallelFile};
//! use pario_fs::{Volume, VolumeConfig};
//! use pario_server::{Server, ServerConfig};
//!
//! let volume = Volume::create_in_memory(VolumeConfig {
//!     devices: 4,
//!     device_blocks: 256,
//!     block_size: 4096,
//! })
//! .unwrap();
//! // Producer fills a self-scheduled work queue.
//! let pf = ParallelFile::create(&volume, "queue", Organization::SelfScheduledSeq, 64, 4).unwrap();
//! let w = pf.self_sched_writer().unwrap();
//! for i in 0..100u32 {
//!     w.write_next(&[i as u8; 64]).unwrap();
//! }
//! w.finish().unwrap();
//!
//! // Two independent clients drain it through the server: every record
//! // is delivered to exactly one of them.
//! let server = Server::new(volume, ServerConfig::default());
//! let (a, b) = (server.connect(), server.connect());
//! let (qa, qb) = (a.open_self_sched("queue").unwrap(), b.open_self_sched("queue").unwrap());
//! let mut buf = [0u8; 64];
//! let mut served = 0;
//! loop {
//!     match (qa.read_next(&mut buf).unwrap(), qb.read_next(&mut buf).unwrap()) {
//!         (None, None) => break,
//!         (x, y) => served += x.is_some() as u64 + y.is_some() as u64,
//!     }
//! }
//! assert_eq!(served, 100);
//! // Ops counted per request (including the end-of-file probes).
//! assert!(server.stats().total_ops() >= 100);
//! ```

#![warn(missing_docs)]

pub mod admission;
mod error;
pub mod locks;
mod session;
mod stats;

pub use admission::{Admission, AdmissionKind, AdmissionStats, Permit, Saturation};
pub use error::{Result, ServerError};
pub use locks::{ByteRangeLocks, RangeGuard};
pub use session::{
    DirectClient, FileStat, InterleavedClient, LockedRange, PartitionClient, SeqClient, Server,
    ServerConfig, Session, SsClient,
};
pub use stats::{quantile_nanos, LatencyBucket, LatencyHistogram, ServerStats, SessionStats};
