//! The server proper: sessions, the shared-file registry, and the typed
//! per-organization client handles.
//!
//! The registry is the load-bearing piece: every session that opens the
//! same file gets a clone of *one* [`ParallelFile`], so SS cursors are
//! shared across sessions (clones share `SsState`) and the sharing
//! ledger — exclusive holder, partition claims, interleave slots — and
//! the GDA byte-range locks live next to the file they protect.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use pario_check::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use pario_core::{
    CoreError, DirectHandle, InterleavedHandle, Organization, ParallelFile, PartitionHandle,
    SelfSchedReader, SelfSchedWriter,
};
use pario_fs::{FsError, GlobalReader, GlobalWriter, Volume};

use crate::admission::{Admission, AdmissionKind, Saturation};
use crate::error::{Result, ServerError};
use crate::locks::ByteRangeLocks;
use crate::stats::{LatencyHistogram, ServerStats, SessionCounters, SessionStats};

/// Tuning knobs for a [`Server`].
#[derive(Copy, Clone, Debug)]
pub struct ServerConfig {
    /// Most operations in flight at once across all sessions. Size this
    /// to the volume's device parallelism; the default of 8 suits a
    /// 4-device volume with some pipelining slack.
    pub max_in_flight: usize,
    /// What to do with requests that arrive past the limit.
    pub saturation: Saturation,
    /// Which admission implementation to run. Defaults to the
    /// packed-atomic fast path; [`AdmissionKind::LegacyMutex`] exists
    /// only as the E19 performance baseline.
    pub admission: AdmissionKind,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_in_flight: 8,
            saturation: Saturation::Block,
            admission: AdmissionKind::Fast,
        }
    }
}

/// Cross-session sharing ledger of one file.
#[derive(Default)]
struct Sharing {
    /// Session holding a type-S file exclusively.
    exclusive: Option<u64>,
    /// PS/PDA partition index -> owning session.
    partitions: HashMap<u32, u64>,
    /// IS process slot -> owning session.
    slots: HashMap<u32, u64>,
}

/// One registered file: the single `ParallelFile` all sessions share
/// (hence one SS cursor), its sharing ledger, and its GDA range locks.
struct FileEntry {
    pfile: ParallelFile,
    sharing: Mutex<Sharing>,
    ranges: ByteRangeLocks,
}

struct Inner {
    volume: Volume,
    admission: Admission,
    latency: LatencyHistogram,
    files: Mutex<HashMap<String, Arc<FileEntry>>>,
    sessions: Mutex<Vec<(u64, Arc<SessionCounters>)>>,
    next_session: AtomicU64,
}

impl Inner {
    /// Open-or-get the shared entry for `name`.
    fn entry(&self, name: &str) -> Result<Arc<FileEntry>> {
        let mut files = self.files.lock();
        if let Some(e) = files.get(name) {
            return Ok(Arc::clone(e));
        }
        let pfile = ParallelFile::open(&self.volume, name)?;
        let e = Arc::new(FileEntry {
            pfile,
            sharing: Mutex::new(Sharing::default()),
            ranges: ByteRangeLocks::default(),
        });
        files.insert(name.to_string(), Arc::clone(&e));
        Ok(e)
    }
}

/// A thread-safe file service in front of a [`Volume`]. Cheap to clone;
/// clones share everything.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Put a server in front of `volume`.
    pub fn new(volume: Volume, config: ServerConfig) -> Server {
        Server {
            inner: Arc::new(Inner {
                volume,
                admission: Admission::with_kind(
                    config.max_in_flight,
                    config.saturation,
                    config.admission,
                ),
                latency: LatencyHistogram::default(),
                files: Mutex::new(HashMap::new()),
                sessions: Mutex::new(Vec::new()),
                next_session: AtomicU64::new(0),
            }),
        }
    }

    /// The volume behind the server (for file creation and experiments).
    pub fn volume(&self) -> &Volume {
        &self.inner.volume
    }

    /// The configured in-flight limit.
    pub fn admission_limit(&self) -> usize {
        self.inner.admission.limit()
    }

    /// Connect a new client session.
    pub fn connect(&self) -> Session {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed); // ordering: id allocation needs uniqueness, not ordering
        let counters = Arc::new(SessionCounters::default());
        self.inner.sessions.lock().push((id, Arc::clone(&counters)));
        Session {
            inner: Arc::clone(&self.inner),
            id,
            counters,
        }
    }

    /// Snapshot server-wide statistics.
    pub fn stats(&self) -> ServerStats {
        let sessions = self
            .inner
            .sessions
            .lock()
            .iter()
            .map(|(id, c)| SessionStats {
                id: *id,
                reads: c.reads.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
                writes: c.writes.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            })
            .collect();
        ServerStats::from_parts(
            sessions,
            self.inner.admission.stats(),
            self.inner.latency.snapshot(),
            self.inner.volume.io_node_stats(),
            self.inner.volume.executor_stats(),
            self.inner.volume.health_snapshot(),
            self.inner.volume.cache_stats(),
        )
    }

    /// The current brownout advisory, if any: the first degraded device
    /// as a ready-made [`ServerError::Degraded`]. Clients can poll this
    /// to distinguish "volume browned out" from "my request was wrong".
    pub fn advisory(&self) -> Option<ServerError> {
        self.inner
            .volume
            .health()
            .first_degraded()
            .map(|(device, state)| ServerError::Degraded { device, state })
    }
}

/// One client's connection to a [`Server`]. Sessions are independent —
/// hand them to separate threads — and open typed per-organization
/// clients. Clones share the session identity (id and counters).
#[derive(Clone)]
pub struct Session {
    inner: Arc<Inner>,
    id: u64,
    counters: Arc<SessionCounters>,
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Run one data operation: admission permit, the transfer, then
    /// latency and per-session accounting. Latency includes admission
    /// wait — that is the latency the client observes.
    ///
    /// A disk-level failure on a volume whose health board blames a
    /// degraded device is rewritten into the typed
    /// [`ServerError::Degraded`] advisory: the client learns *which*
    /// device browned out and that redundant layouts keep serving,
    /// instead of an opaque device error.
    fn run<T>(&self, write: bool, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let t0 = Instant::now();
        let permit = self.inner.admission.acquire(self.id)?;
        let r = f();
        drop(permit);
        self.inner.latency.record(t0.elapsed());
        match r {
            Ok(v) => {
                let c = if write {
                    &self.counters.writes
                } else {
                    &self.counters.reads
                };
                c.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
                Ok(v)
            }
            Err(ServerError::Core(CoreError::Fs(FsError::Disk(e)))) => {
                Err(match self.inner.volume.health().first_degraded() {
                    Some((device, state)) => ServerError::Degraded { device, state },
                    None => ServerError::Core(CoreError::Fs(FsError::Disk(e))),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Metadata for `name` without opening a typed client — what a
    /// remote protocol needs to size its buffers before the first
    /// transfer. `len_records` is a point-in-time value; concurrent
    /// writers may have moved it by the time the caller acts on it.
    pub fn stat(&self, name: &str) -> Result<FileStat> {
        let entry = self.inner.entry(name)?;
        Ok(FileStat {
            organization: entry.pfile.organization(),
            record_size: entry.pfile.record_size(),
            records_per_block: entry.pfile.records_per_block(),
            len_records: entry.pfile.len_records(),
        })
    }

    /// Open a type-S file exclusively. Fails with
    /// [`ServerError::Exclusive`] while any other client holds it.
    pub fn open_sequential(&self, name: &str) -> Result<SeqClient> {
        let entry = self.inner.entry(name)?;
        let org = entry.pfile.organization();
        if org != Organization::Sequential {
            return Err(CoreError::WrongOrganization {
                expected: "S",
                actual: org,
            }
            .into());
        }
        {
            let mut sh = entry.sharing.lock();
            if let Some(by) = sh.exclusive {
                return Err(ServerError::Exclusive {
                    name: name.to_string(),
                    by,
                });
            }
            sh.exclusive = Some(self.id);
        }
        let reader = entry.pfile.global_reader();
        Ok(SeqClient {
            sess: self.clone(),
            entry,
            reader,
            writer: None,
        })
    }

    /// Open an SS file. Every session's client shares one server-side
    /// cursor: across all of them, each record is delivered exactly once.
    pub fn open_self_sched(&self, name: &str) -> Result<SsClient> {
        let entry = self.inner.entry(name)?;
        Ok(SsClient {
            sess: self.clone(),
            reader: entry.pfile.self_sched_reader()?,
            writer: entry.pfile.self_sched_writer()?,
        })
    }

    /// The big-lock SS baseline (experiment E3 / E14 comparisons): same
    /// shared cursor, transfers serialised under one lock.
    pub fn open_self_sched_naive(&self, name: &str) -> Result<SsClient> {
        let entry = self.inner.entry(name)?;
        Ok(SsClient {
            sess: self.clone(),
            reader: entry.pfile.self_sched_reader_naive()?,
            writer: entry.pfile.self_sched_writer_naive()?,
        })
    }

    /// Claim partition `p` of a PS or PDA file. Fails with
    /// [`ServerError::Claimed`] while another client owns the partition;
    /// the claim releases when the returned client drops.
    pub fn open_partition(&self, name: &str, p: u32) -> Result<PartitionClient> {
        let entry = self.inner.entry(name)?;
        let handle = entry.pfile.partition_handle(p)?;
        {
            let mut sh = entry.sharing.lock();
            if let Some(&by) = sh.partitions.get(&p) {
                return Err(ServerError::Claimed {
                    name: name.to_string(),
                    index: p,
                    by,
                });
            }
            sh.partitions.insert(p, self.id);
        }
        let (start, end) = handle.range();
        Ok(PartitionClient {
            sess: self.clone(),
            entry,
            handle,
            partition: p,
            start,
            end,
        })
    }

    /// Claim interleave slot `p` of an IS file (released on drop).
    pub fn open_interleaved(&self, name: &str, p: u32) -> Result<InterleavedClient> {
        let entry = self.inner.entry(name)?;
        let handle = entry.pfile.interleaved_handle(p)?;
        {
            let mut sh = entry.sharing.lock();
            if let Some(&by) = sh.slots.get(&p) {
                return Err(ServerError::Claimed {
                    name: name.to_string(),
                    index: p,
                    by,
                });
            }
            sh.slots.insert(p, self.id);
        }
        Ok(InterleavedClient {
            sess: self.clone(),
            entry,
            handle,
            process: p,
        })
    }

    /// Open a GDA file: any record, any order; writes take byte-range
    /// locks so overlapping writers are serialised, and
    /// [`DirectClient::update`] gives a locked read-modify-write.
    pub fn open_direct(&self, name: &str) -> Result<DirectClient> {
        let entry = self.inner.entry(name)?;
        let handle = entry.pfile.direct_handle()?;
        let record_size = entry.pfile.record_size();
        Ok(DirectClient {
            sess: self.clone(),
            entry,
            handle,
            record_size,
        })
    }
}

/// Point-in-time file metadata returned by [`Session::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStat {
    /// The file's organization.
    pub organization: Organization,
    /// Fixed record size in bytes.
    pub record_size: usize,
    /// Records per file block.
    pub records_per_block: usize,
    /// Length in records when the stat was taken.
    pub len_records: u64,
}

// ---------------------------------------------------------------------
// Typed clients
// ---------------------------------------------------------------------

/// Exclusive sequential access to a type-S file.
pub struct SeqClient {
    sess: Session,
    entry: Arc<FileEntry>,
    reader: GlobalReader,
    writer: Option<GlobalWriter>,
}

impl SeqClient {
    /// Read the next record; `false` at end of file.
    pub fn read_next(&mut self, out: &mut [u8]) -> Result<bool> {
        let (sess, reader) = (&self.sess, &mut self.reader);
        sess.run(false, || Ok(reader.read_record(out)?))
    }

    /// Append the next record. Appends are buffered a block at a time;
    /// call [`finish`](SeqClient::finish) to publish the final length
    /// (dropping the client also flushes, best-effort).
    pub fn write_next(&mut self, data: &[u8]) -> Result<()> {
        let raw = self.entry.pfile.raw().clone();
        let (sess, writer) = (&self.sess, &mut self.writer);
        sess.run(true, || {
            Ok(writer
                .get_or_insert_with(|| GlobalWriter::append(raw))
                .write_record(data)?)
        })
    }

    /// Flush buffered appends and publish the length.
    pub fn finish(&mut self) -> Result<u64> {
        match self.writer.take() {
            Some(w) => Ok(w.finish()?),
            None => Ok(self.entry.pfile.len_records()),
        }
    }

    /// Rewind the read cursor.
    pub fn rewind(&mut self) {
        self.reader.seek_record(0);
    }
}

impl Drop for SeqClient {
    fn drop(&mut self) {
        if let Some(w) = self.writer.take() {
            let _ = w.finish();
        }
        self.entry.sharing.lock().exclusive = None;
    }
}

/// A self-scheduled client: reads claim the globally next record across
/// *all* sessions of the file.
pub struct SsClient {
    sess: Session,
    reader: SelfSchedReader,
    writer: SelfSchedWriter,
}

impl SsClient {
    /// Claim and read the next unclaimed record anywhere in the server.
    /// Returns the index served, or `None` once the file is drained.
    pub fn read_next(&self, out: &mut [u8]) -> Result<Option<u64>> {
        self.sess.run(false, || Ok(self.reader.read_next(out)?))
    }

    /// Claim and read the next whole file block (the paper's
    /// self-scheduling by block); `out` must hold one file block.
    pub fn read_next_block(&self, out: &mut [u8]) -> Result<Option<(u64, usize)>> {
        self.sess
            .run(false, || Ok(self.reader.read_next_block(out)?))
    }

    /// Claim the next free slot and write `data` there.
    pub fn write_next(&self, data: &[u8]) -> Result<u64> {
        self.sess.run(true, || Ok(self.writer.write_next(data)?))
    }

    /// Publish the final length once all sessions' writers are done.
    pub fn finish_writes(&self) -> Result<u64> {
        Ok(self.writer.finish()?)
    }

    /// Records claimed so far across all sessions.
    pub fn claimed(&self) -> u64 {
        self.reader.claimed()
    }
}

/// A claimed partition of a PS/PDA file. Addresses records by their
/// *global* index; anything outside the claimed range fails with
/// [`ServerError::OutsidePartition`]. The claim releases on drop.
pub struct PartitionClient {
    sess: Session,
    entry: Arc<FileEntry>,
    handle: PartitionHandle,
    partition: u32,
    start: u64,
    end: u64,
}

impl PartitionClient {
    /// The claimed partition index.
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// The global record range `[start, end)` this client may touch.
    pub fn range(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// Map a global record index into the partition, or refuse it.
    fn local(&self, r: u64) -> Result<u64> {
        if r < self.start || r >= self.end {
            return Err(ServerError::OutsidePartition {
                record: r,
                partition: self.partition,
                start: self.start,
                end: self.end,
            });
        }
        Ok(r - self.start)
    }

    /// The error for running the sequential cursor off the partition end.
    fn exhausted(&self) -> ServerError {
        ServerError::OutsidePartition {
            record: self.end,
            partition: self.partition,
            start: self.start,
            end: self.end,
        }
    }

    /// Read the record at *global* index `r` (PDA direct access).
    pub fn read_record(&self, r: u64, out: &mut [u8]) -> Result<()> {
        let local = self.local(r)?;
        self.sess
            .run(false, || Ok(self.handle.read_at(local, out)?))
    }

    /// Write the record at *global* index `r` (PDA direct access).
    pub fn write_record(&self, r: u64, data: &[u8]) -> Result<()> {
        let local = self.local(r)?;
        self.sess
            .run(true, || Ok(self.handle.write_at(local, data)?))
    }

    /// Read the partition's next record (PS); `false` at partition end.
    pub fn read_next(&mut self, out: &mut [u8]) -> Result<bool> {
        let (sess, handle) = (&self.sess, &mut self.handle);
        sess.run(false, || Ok(handle.read_next(out)?))
    }

    /// Write the partition's next record (PS). A full partition fails
    /// with [`ServerError::OutsidePartition`] — never a spill into the
    /// neighbour's blocks.
    pub fn write_next(&mut self, data: &[u8]) -> Result<()> {
        let exhausted = self.exhausted();
        let (sess, handle) = (&self.sess, &mut self.handle);
        sess.run(true, || {
            handle.write_next(data).map_err(|e| match e {
                CoreError::Fs(FsError::OutOfBounds { .. }) => exhausted,
                e => e.into(),
            })
        })
    }

    /// Rewind the sequential cursor.
    pub fn rewind(&mut self) {
        self.handle.rewind();
    }
}

impl Drop for PartitionClient {
    fn drop(&mut self) {
        self.entry.sharing.lock().partitions.remove(&self.partition);
    }
}

/// A claimed interleave slot of an IS file (released on drop).
pub struct InterleavedClient {
    sess: Session,
    entry: Arc<FileEntry>,
    handle: InterleavedHandle,
    process: u32,
}

impl InterleavedClient {
    /// The claimed process slot.
    pub fn process(&self) -> u32 {
        self.process
    }

    /// Read this slot's next strided record; `false` past end of file.
    pub fn read_next(&mut self, out: &mut [u8]) -> Result<bool> {
        let (sess, handle) = (&self.sess, &mut self.handle);
        sess.run(false, || Ok(handle.read_next(out)?))
    }

    /// Write this slot's next strided record; returns the global index.
    pub fn write_next(&mut self, data: &[u8]) -> Result<u64> {
        let (sess, handle) = (&self.sess, &mut self.handle);
        sess.run(true, || Ok(handle.write_next(data)?))
    }

    /// Read this slot's next whole file block; `None` past end of file.
    pub fn read_next_block(&mut self, out: &mut [u8]) -> Result<Option<u64>> {
        let (sess, handle) = (&self.sess, &mut self.handle);
        sess.run(false, || Ok(handle.read_next_block(out)?))
    }

    /// Write this slot's next whole file block.
    pub fn write_next_block(&mut self, data: &[u8]) -> Result<u64> {
        let (sess, handle) = (&self.sess, &mut self.handle);
        sess.run(true, || Ok(handle.write_next_block(data)?))
    }
}

impl Drop for InterleavedClient {
    fn drop(&mut self) {
        self.entry.sharing.lock().slots.remove(&self.process);
    }
}

/// Global direct access to a GDA file through the server. Reads are
/// unsynchronised (the paper's GDA view offers no read consistency);
/// writes take a byte-range lock so overlapping writers serialise, and
/// [`update`](DirectClient::update) is a locked read-modify-write.
pub struct DirectClient {
    sess: Session,
    entry: Arc<FileEntry>,
    handle: DirectHandle,
    record_size: usize,
}

impl DirectClient {
    /// Records currently in the file.
    pub fn len_records(&self) -> u64 {
        self.handle.len_records()
    }

    /// Byte range of record `r`.
    fn byte_range(&self, r: u64) -> (u64, u64) {
        let rs = self.record_size as u64;
        (r * rs, (r + 1) * rs)
    }

    /// Read record `r`.
    pub fn read_record(&self, r: u64, out: &mut [u8]) -> Result<()> {
        self.sess
            .run(false, || Ok(self.handle.read_record(r, out)?))
    }

    /// Write record `r` under a byte-range lock (extends the file).
    ///
    /// On a volume with a write-back cache tier the written span is
    /// flushed to the devices before the range lock releases, so
    /// cross-session readers keep the uncached durability semantics.
    pub fn write_record(&self, r: u64, data: &[u8]) -> Result<()> {
        let (lo, hi) = self.byte_range(r);
        self.sess.run(true, || {
            let _g = self.entry.ranges.acquire(lo, hi);
            self.handle.write_record(r, data)?;
            self.flush_span(lo, hi)
        })
    }

    /// Atomically read-modify-write record `r`: the byte-range lock is
    /// held across the read, `f`, and the write-back, so concurrent
    /// updates of the same record never lose increments. Extends the
    /// file with a zeroed record when `r` is past the end.
    pub fn update(&self, r: u64, f: impl FnOnce(&mut [u8])) -> Result<()> {
        let (lo, hi) = self.byte_range(r);
        self.sess.run(true, || {
            let _g = self.entry.ranges.acquire(lo, hi);
            let mut buf = vec![0u8; self.record_size];
            if r < self.handle.len_records() {
                self.handle.read_record(r, &mut buf)?;
            }
            f(&mut buf);
            self.handle.write_record(r, &buf)?;
            self.flush_span(lo, hi)
        })
    }

    /// Push the byte span `[lo, hi)` out of the volume cache tier while
    /// the caller still holds its range lock; a no-op without a cache.
    fn flush_span(&self, lo: u64, hi: u64) -> Result<()> {
        let raw = self.entry.pfile.raw();
        if raw.volume().cache().is_some() {
            raw.flush_span(lo, hi - lo)?;
        }
        Ok(())
    }

    /// Explicitly lock records `[r_lo, r_hi)`, returning an owned lock
    /// handle that can outlive this call (unlike the borrowed guard
    /// inside [`write_record`](DirectClient::write_record)). This is the
    /// wire-protocol hook: a network client acquires the lock in one
    /// request, writes under it with
    /// [`write_record_locked`](DirectClient::write_record_locked), and
    /// releases it with [`unlock`](DirectClient::unlock) — the same
    /// lock table plain `write_record`/`update` callers serialise on.
    pub fn lock_range(&self, r_lo: u64, r_hi: u64) -> Result<LockedRange> {
        if r_lo >= r_hi {
            return Err(
                CoreError::BadGeometry(format!("empty record range [{r_lo}, {r_hi})")).into(),
            );
        }
        let rs = self.record_size as u64;
        let (lo, hi) = (r_lo * rs, r_hi * rs);
        let ticket = self.entry.ranges.acquire_ticket(lo, hi);
        Ok(LockedRange {
            entry: Arc::clone(&self.entry),
            ticket,
            lo,
            hi,
        })
    }

    /// Write record `r` under an explicitly held range lock. The lock
    /// must cover the record's bytes ([`ServerError::RangeNotLocked`]
    /// otherwise); durability is deferred to
    /// [`unlock`](DirectClient::unlock), which flushes the whole locked
    /// span before the lock releases — the same durable-at-unlock
    /// contract as [`write_record`](DirectClient::write_record).
    pub fn write_record_locked(&self, lock: &LockedRange, r: u64, data: &[u8]) -> Result<()> {
        let (lo, hi) = self.byte_range(r);
        if lo < lock.lo || hi > lock.hi {
            return Err(ServerError::RangeNotLocked { lo, hi });
        }
        self.sess
            .run(true, || Ok(self.handle.write_record(r, data)?))
    }

    /// Release an explicit range lock, flushing the locked span out of
    /// any write-back cache tier *before* the lock releases so the next
    /// lock holder (or raw-media reader) sees every locked write.
    pub fn unlock(&self, lock: LockedRange) -> Result<()> {
        let r = self.flush_span(lock.lo, lock.hi);
        drop(lock);
        r
    }
}

/// An explicitly held GDA byte-range lock (see
/// [`DirectClient::lock_range`]). Owned — it keeps the file entry alive
/// and may be stored across calls. Dropping it releases the range
/// *without* the durability flush; release through
/// [`DirectClient::unlock`] for the durable-at-unlock contract.
#[must_use = "the byte range is locked until this handle is unlocked or dropped"]
pub struct LockedRange {
    entry: Arc<FileEntry>,
    ticket: u64,
    lo: u64,
    hi: u64,
}

impl LockedRange {
    /// The locked byte span `[lo, hi)`.
    pub fn byte_span(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

impl Drop for LockedRange {
    fn drop(&mut self) {
        self.entry.ranges.release_ticket(self.ticket);
    }
}
