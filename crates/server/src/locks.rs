//! Byte-range locks for GDA writers.
//!
//! GDA gives every session the whole record space; the server serialises
//! *overlapping* writers so concurrent updates to the same bytes are
//! never torn, while disjoint writers proceed in parallel. Readers are
//! deliberately not locked — the paper's GDA view offers no read
//! consistency guarantee, and a reader that wants one takes a lock via
//! the update path.

use parking_lot::{Condvar, Mutex};

/// Active locked byte ranges of one file.
#[derive(Default)]
pub(crate) struct RangeLocks {
    held: Mutex<Vec<(u64, u64, u64)>>,
    cv: Condvar,
}

/// An acquired byte-range lock; dropping it releases the range.
pub(crate) struct RangeGuard<'a> {
    locks: &'a RangeLocks,
    ticket: u64,
}

impl RangeLocks {
    /// Block until `[start, end)` overlaps no held range, then hold it.
    pub(crate) fn acquire(&self, start: u64, end: u64) -> RangeGuard<'_> {
        assert!(start < end, "empty range");
        let mut held = self.held.lock();
        loop {
            if !held.iter().any(|&(s, e, _)| start < e && s < end) {
                let ticket = held.iter().map(|&(_, _, t)| t + 1).max().unwrap_or(0);
                held.push((start, end, ticket));
                return RangeGuard {
                    locks: self,
                    ticket,
                };
            }
            self.cv.wait(&mut held);
        }
    }

    /// Ranges currently held (for stats / tests).
    #[cfg(test)]
    pub(crate) fn held(&self) -> usize {
        self.held.lock().len()
    }
}

impl Drop for RangeGuard<'_> {
    fn drop(&mut self) {
        let mut held = self.locks.held.lock();
        held.retain(|&(_, _, t)| t != self.ticket);
        self.locks.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn disjoint_ranges_coexist() {
        let l = RangeLocks::default();
        let a = l.acquire(0, 10);
        let b = l.acquire(10, 20);
        assert_eq!(l.held(), 2);
        drop(a);
        drop(b);
        assert_eq!(l.held(), 0);
    }

    #[test]
    fn overlap_blocks_until_release() {
        let l = RangeLocks::default();
        let counter = AtomicU64::new(0);
        // 8 threads doing read-modify-write under the same range: the
        // lock must serialise them perfectly.
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let l = &l;
                let counter = &counter;
                s.spawn(move |_| {
                    for _ in 0..100 {
                        let _g = l.acquire(5, 15);
                        let v = counter.load(Ordering::Relaxed);
                        std::thread::yield_now();
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }
}
