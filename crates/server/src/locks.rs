//! Byte-range locks for GDA writers.
//!
//! GDA gives every session the whole record space; the server serialises
//! *overlapping* writers so concurrent updates to the same bytes are
//! never torn, while disjoint writers proceed in parallel. Readers are
//! deliberately not locked — the paper's GDA view offers no read
//! consistency guarantee, and a reader that wants one takes a lock via
//! the update path.
//!
//! Built on `pario-check` primitives, so `--cfg pario_check` model tests
//! can explore the acquire/release interleavings deterministically; the
//! internal mutex is ranked [`LockLevel::RangeLock`] in the workspace
//! lock hierarchy.

use pario_check::{Condvar, LockLevel, Mutex};

/// Active locked byte ranges of one file.
pub struct ByteRangeLocks {
    held: Mutex<Vec<(u64, u64, u64)>>,
    cv: Condvar,
}

impl Default for ByteRangeLocks {
    fn default() -> ByteRangeLocks {
        ByteRangeLocks::new()
    }
}

/// An acquired byte-range lock; dropping it releases the range.
#[must_use = "the byte range is locked only while this guard lives"]
pub struct RangeGuard<'a> {
    locks: &'a ByteRangeLocks,
    ticket: u64,
}

impl ByteRangeLocks {
    /// A lock table with no held ranges.
    pub const fn new() -> ByteRangeLocks {
        ByteRangeLocks {
            held: Mutex::new_named(Vec::new(), LockLevel::RangeLock),
            cv: Condvar::new(),
        }
    }

    /// Block until `[start, end)` overlaps no held range, then hold it.
    pub fn acquire(&self, start: u64, end: u64) -> RangeGuard<'_> {
        RangeGuard {
            ticket: self.acquire_ticket(start, end),
            locks: self,
        }
    }

    /// Guard-free acquire: blocks like [`acquire`](ByteRangeLocks::acquire)
    /// but returns a bare ticket the caller must hand back through
    /// [`release_ticket`](ByteRangeLocks::release_ticket). This is the
    /// hook for owned lock handles (the network layer parks a client's
    /// explicit GDA lock in a table across requests, where a borrowing
    /// guard cannot live).
    pub fn acquire_ticket(&self, start: u64, end: u64) -> u64 {
        assert!(start < end, "empty range");
        let mut held = self.held.lock();
        loop {
            if let Some(ticket) = Self::grab(&mut held, start, end) {
                return ticket;
            }
            self.cv.wait(&mut held);
        }
    }

    /// Release a ticket taken with
    /// [`acquire_ticket`](ByteRangeLocks::acquire_ticket). Unknown
    /// tickets are ignored (release is idempotent).
    pub fn release_ticket(&self, ticket: u64) {
        let mut held = self.held.lock();
        held.retain(|&(_, _, t)| t != ticket);
        self.cv.notify_all();
    }

    /// Take `[start, end)` if it overlaps no held range, without
    /// blocking.
    pub fn try_acquire(&self, start: u64, end: u64) -> Option<RangeGuard<'_>> {
        assert!(start < end, "empty range");
        let mut held = self.held.lock();
        Self::grab(&mut held, start, end).map(|ticket| RangeGuard {
            locks: self,
            ticket,
        })
    }

    fn grab(held: &mut Vec<(u64, u64, u64)>, start: u64, end: u64) -> Option<u64> {
        if held.iter().any(|&(s, e, _)| start < e && s < end) {
            return None;
        }
        let ticket = held.iter().map(|&(_, _, t)| t + 1).max().unwrap_or(0);
        held.push((start, end, ticket));
        Some(ticket)
    }

    /// Number of ranges currently held (for stats / tests).
    pub fn held(&self) -> usize {
        self.held.lock().len()
    }
}

impl Drop for RangeGuard<'_> {
    fn drop(&mut self) {
        self.locks.release_ticket(self.ticket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn disjoint_ranges_coexist() {
        let l = ByteRangeLocks::default();
        let a = l.acquire(0, 10);
        let b = l.acquire(10, 20);
        assert_eq!(l.held(), 2);
        drop(a);
        drop(b);
        assert_eq!(l.held(), 0);
    }

    #[test]
    fn try_acquire_refuses_overlap() {
        let l = ByteRangeLocks::new();
        let a = l.acquire(0, 10);
        assert!(l.try_acquire(5, 15).is_none());
        let b = l.try_acquire(10, 20).expect("disjoint range is free");
        drop(a);
        drop(b);
        assert_eq!(l.held(), 0);
    }

    #[test]
    fn overlap_blocks_until_release() {
        let l = ByteRangeLocks::default();
        let counter = AtomicU64::new(0);
        // 8 threads doing read-modify-write under the same range: the
        // lock must serialise them perfectly.
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let l = &l;
                let counter = &counter;
                s.spawn(move |_| {
                    for _ in 0..100 {
                        let _g = l.acquire(5, 15);
                        let v = counter.load(Ordering::Relaxed);
                        std::thread::yield_now();
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }
}
