//! Bounded admission with backpressure and round-robin fairness.
//!
//! Every data operation a session issues must first be admitted. At most
//! `limit` operations are in flight at once — sized to the volume's
//! I/O-node pool so device queues stay short — and when the limit is
//! reached, further requests either block (closed-loop clients) or fail
//! fast with [`ServerError::Busy`], per the server's [`Saturation`]
//! policy.
//!
//! Fairness: a permit freed under contention is granted to the *next
//! session in rotation*, not to whichever thread wakes first, so one
//! aggressive client cannot starve the others. Within a session, waiters
//! are served FIFO.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::ops::Bound::{Excluded, Unbounded};

use pario_check::{Condvar, LockLevel, Mutex};

use crate::error::{Result, ServerError};

/// What to do with a request that arrives while the server is saturated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Saturation {
    /// Queue the request and block the client until a permit frees
    /// (backpressure; the default).
    #[default]
    Block,
    /// Fail the request immediately with [`ServerError::Busy`].
    Reject,
}

/// A point-in-time snapshot of admission-queue statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Operations in flight right now.
    pub in_flight: usize,
    /// The most operations ever in flight at once — bounded by the
    /// configured limit, which is the whole point.
    pub admitted_high_water: usize,
    /// The most requests ever waiting for admission at once.
    pub wait_high_water: usize,
    /// Requests rejected with [`ServerError::Busy`].
    pub rejected: u64,
}

struct AdmState {
    in_flight: usize,
    admitted_high_water: usize,
    waiting: usize,
    wait_high_water: usize,
    rejected: u64,
    /// Waiting tickets, FIFO per session.
    queues: BTreeMap<u64, VecDeque<u64>>,
    granted: HashSet<u64>,
    next_ticket: u64,
    /// Session granted most recently under contention (rotation point).
    rr_last: u64,
}

/// Bounded admission queue; see the module docs. Its internal mutex is
/// ranked [`LockLevel::Admission`] in the workspace lock hierarchy.
pub struct Admission {
    limit: usize,
    policy: Saturation,
    m: Mutex<AdmState>,
    cv: Condvar,
}

/// An admitted operation; dropping it releases the permit and grants the
/// next waiter in rotation.
#[must_use = "the operation is admitted only while this permit lives"]
pub struct Permit<'a> {
    adm: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.m.lock();
        st.in_flight -= 1;
        self.adm.grant_next(&mut st);
    }
}

impl Admission {
    /// An admission queue allowing `limit` concurrent operations.
    pub fn new(limit: usize, policy: Saturation) -> Admission {
        assert!(limit > 0, "admission limit must be positive");
        Admission {
            limit,
            policy,
            m: Mutex::new_named(
                AdmState {
                    in_flight: 0,
                    admitted_high_water: 0,
                    waiting: 0,
                    wait_high_water: 0,
                    rejected: 0,
                    queues: BTreeMap::new(),
                    granted: HashSet::new(),
                    next_ticket: 0,
                    rr_last: 0,
                },
                LockLevel::Admission,
            ),
            cv: Condvar::new(),
        }
    }

    /// The configured in-flight limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Admit one operation for `session`, blocking or rejecting per the
    /// saturation policy.
    pub fn acquire(&self, session: u64) -> Result<Permit<'_>> {
        let mut st = self.m.lock();
        // Fast path only when nobody is queued, so arrivals cannot
        // overtake waiters.
        if st.in_flight < self.limit && st.waiting == 0 {
            st.in_flight += 1;
            st.admitted_high_water = st.admitted_high_water.max(st.in_flight);
            return Ok(Permit { adm: self });
        }
        if self.policy == Saturation::Reject {
            st.rejected += 1;
            return Err(ServerError::Busy);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queues.entry(session).or_default().push_back(ticket);
        st.waiting += 1;
        st.wait_high_water = st.wait_high_water.max(st.waiting);
        // A permit may have freed between the fast-path check and here.
        self.grant_next(&mut st);
        while !st.granted.remove(&ticket) {
            self.cv.wait(&mut st);
        }
        Ok(Permit { adm: self })
    }

    /// Grant a freed permit to the next session in rotation (the first
    /// session id strictly after the last grantee, wrapping around).
    fn grant_next(&self, st: &mut AdmState) {
        if st.in_flight >= self.limit || st.waiting == 0 {
            return;
        }
        let next = st
            .queues
            .range((Excluded(st.rr_last), Unbounded))
            .next()
            .map(|(&s, _)| s)
            .or_else(|| st.queues.keys().next().copied());
        let Some(sess) = next else { return };
        // invariant: `sess` came from `queues` keys and queues are
        // removed the moment they drain, so both lookups succeed.
        let Some(q) = st.queues.get_mut(&sess) else {
            return;
        };
        let Some(ticket) = q.pop_front() else {
            return;
        };
        if q.is_empty() {
            st.queues.remove(&sess);
        }
        st.rr_last = sess;
        st.waiting -= 1;
        st.in_flight += 1;
        st.admitted_high_water = st.admitted_high_water.max(st.in_flight);
        st.granted.insert(ticket);
        self.cv.notify_all();
    }

    /// A point-in-time snapshot of queue statistics.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.m.lock();
        AdmissionStats {
            in_flight: st.in_flight,
            admitted_high_water: st.admitted_high_water,
            wait_high_water: st.wait_high_water,
            rejected: st.rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn high_water_bounded_by_limit() {
        let adm = Admission::new(3, Saturation::Block);
        let live = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for sess in 0..12u64 {
                let adm = &adm;
                let live = &live;
                s.spawn(move |_| {
                    for _ in 0..50 {
                        let p = adm.acquire(sess).unwrap();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        assert!(now <= 3, "{now} ops admitted past the limit");
                        std::thread::yield_now();
                        live.fetch_sub(1, Ordering::SeqCst);
                        drop(p);
                    }
                });
            }
        })
        .unwrap();
        let s = adm.stats();
        assert!(s.admitted_high_water <= 3);
        assert!(s.wait_high_water > 0, "oversubscription must queue");
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn reject_policy_returns_busy() {
        let adm = Admission::new(1, Saturation::Reject);
        let p = adm.acquire(0).unwrap();
        assert!(matches!(adm.acquire(1), Err(ServerError::Busy)));
        assert_eq!(adm.stats().rejected, 1);
        drop(p);
        // Capacity freed: admitted again.
        let _p = adm.acquire(1).unwrap();
    }

    #[test]
    fn grants_rotate_across_sessions() {
        // One permit, three sessions each parking several waiters; the
        // grant order must interleave sessions 0,1,2,0,1,2,... rather
        // than draining session 0 first.
        let adm = Admission::new(1, Saturation::Block);
        let order = Mutex::new(Vec::new());
        let hold = adm.acquire(99).unwrap();
        crossbeam::thread::scope(|s| {
            for sess in 0..3u64 {
                for _ in 0..3 {
                    let adm = &adm;
                    let order = &order;
                    s.spawn(move |_| {
                        let p = adm.acquire(sess).unwrap();
                        order.lock().push(sess);
                        drop(p);
                    });
                    // Stagger arrivals so per-session FIFO order is fixed.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            // All nine parked; release the held permit.
            while adm.stats().wait_high_water < 9 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(hold);
        })
        .unwrap();
        let order = order.lock().clone();
        assert_eq!(order.len(), 9);
        // Each window of three consecutive grants covers three distinct
        // sessions (perfect rotation).
        for w in order.chunks(3) {
            let mut w = w.to_vec();
            w.sort_unstable();
            assert_eq!(w, vec![0, 1, 2], "unfair grant order {order:?}");
        }
    }
}
