//! Bounded admission with backpressure and round-robin fairness.
//!
//! Every data operation a session issues must first be admitted. At most
//! `limit` operations are in flight at once — sized to the volume's
//! I/O-node pool so device queues stay short — and when the limit is
//! reached, further requests either block (closed-loop clients) or fail
//! fast with [`ServerError::Busy`], per the server's [`Saturation`]
//! policy.
//!
//! Fairness: a permit freed under contention is granted to the *next
//! session in rotation*, not to whichever thread wakes first, so one
//! aggressive client cannot starve the others. Within a session, waiters
//! are served FIFO.
//!
//! Two implementations share that contract (selected by
//! [`AdmissionKind`]):
//!
//! * [`AdmissionKind::Fast`] (the default) keeps the whole
//!   `(in_flight, waiters)` pair packed in one atomic word. Under the
//!   limit with nobody queued, acquire and release are a single
//!   compare-exchange — no mutex, no syscall. Only saturated requests
//!   fall back to a ranked mutex guarding the per-session FIFO queues,
//!   and every parked waiter has its **own** condition variable, so a
//!   grant wakes exactly one thread. Cumulative admission counts are
//!   striped across cache-line-padded counters to keep the fast path
//!   free of shared hot words.
//! * [`AdmissionKind::LegacyMutex`] is the pre-optimization
//!   implementation — one big mutex around every acquire/release plus a
//!   single `notify_all` condvar, which wakes *every* parked waiter per
//!   freed permit. It is retained as the measured baseline of experiment
//!   E19 (`exp_e19_scale`), which quantifies exactly that thundering
//!   herd at 64 concurrent sessions.

use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound::{Excluded, Unbounded};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use pario_check::{AtomicBool, AtomicU64, Condvar, LockLevel, Mutex};

use crate::error::{Result, ServerError};

/// What to do with a request that arrives while the server is saturated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Saturation {
    /// Queue the request and block the client until a permit frees
    /// (backpressure; the default).
    #[default]
    Block,
    /// Fail the request immediately with [`ServerError::Busy`].
    Reject,
}

/// Which admission implementation a server runs; see the module docs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum AdmissionKind {
    /// Packed-atomic fast path + per-ticket parking (the default).
    #[default]
    Fast,
    /// The pre-optimization big-mutex + `notify_all` implementation,
    /// kept as the E19 performance baseline.
    LegacyMutex,
}

/// A point-in-time snapshot of admission-queue statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Operations in flight right now.
    pub in_flight: usize,
    /// The most operations ever in flight at once — bounded by the
    /// configured limit, which is the whole point.
    pub admitted_high_water: usize,
    /// The most requests ever waiting for admission at once.
    pub wait_high_water: usize,
    /// Requests rejected with [`ServerError::Busy`].
    pub rejected: u64,
    /// Cumulative operations ever admitted (granted a permit), across
    /// all sessions. Experiments compute goodput vs. offered rate from
    /// this directly instead of diffing per-session counters.
    pub total_admitted: u64,
}

// ---------------------------------------------------------------------
// Fast implementation
// ---------------------------------------------------------------------

/// Low 32 bits of the packed state word: operations in flight.
const IF_MASK: u64 = 0xFFFF_FFFF;
/// One waiter, in the high half of the packed state word.
const WAITER: u64 = 1 << 32;

/// Stripes for the cumulative admitted counter (power of two).
const ADMITTED_STRIPES: usize = 8;

/// A cache-line-padded counter stripe, so concurrent sessions bumping
/// their cumulative-admitted count do not share a hot line.
#[repr(align(64))]
struct PadCounter(AtomicU64);

/// One parked waiter's private wake state: its own condvar, so the
/// granter wakes exactly this thread and no other.
struct WaitSlot {
    granted: AtomicBool,
    cv: Condvar,
}

impl WaitSlot {
    fn new() -> WaitSlot {
        WaitSlot {
            granted: AtomicBool::new(false),
            cv: Condvar::new(),
        }
    }
}

struct Waiter {
    session: u64,
    slot: Arc<WaitSlot>,
}

/// Fallback state, touched only by saturated requests: the per-session
/// FIFO queues and the round-robin rotation point.
struct WaitQueues {
    /// Waiting tickets, FIFO per session.
    queues: BTreeMap<u64, VecDeque<Waiter>>,
    /// Session granted most recently under contention (rotation point).
    rr_last: u64,
}

struct FastAdm {
    /// `(waiters << 32) | in_flight`, the entire fast-path state. Both
    /// halves live in one word so an acquire/release can atomically
    /// observe "nobody is queued" while moving the in-flight count —
    /// a release can never miss a waiter that announced concurrently.
    state: AtomicU64,
    admitted_hw: AtomicU64,
    wait_hw: AtomicU64,
    rejected: AtomicU64,
    admitted: [PadCounter; ADMITTED_STRIPES],
    m: Mutex<WaitQueues>,
}

impl FastAdm {
    fn new() -> FastAdm {
        FastAdm {
            state: AtomicU64::new(0),
            admitted_hw: AtomicU64::new(0),
            wait_hw: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            admitted: std::array::from_fn(|_| PadCounter(AtomicU64::new(0))),
            m: Mutex::new_named(
                WaitQueues {
                    queues: BTreeMap::new(),
                    rr_last: 0,
                },
                LockLevel::Admission,
            ),
        }
    }

    /// Bump the cumulative admitted counter on `session`'s stripe.
    fn count_admitted(&self, session: u64) {
        self.admitted[session as usize & (ADMITTED_STRIPES - 1)]
            .0
            .fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
    }

    /// Raise a high-water mark, skipping the write once it is saturated
    /// (after warm-up the load sees the mark already at the limit and
    /// the shared line stays read-only).
    fn raise_hw(hw: &AtomicU64, candidate: u64) {
        // ordering: monotonic high-water mark, diagnostic only
        if candidate > hw.load(Ordering::Relaxed) {
            hw.fetch_max(candidate, Ordering::Relaxed); // ordering: monotonic high-water mark, diagnostic only
        }
    }

    /// Pop the next waiter in rotation: the first session strictly after
    /// the last grantee (wrapping), FIFO within the session.
    fn pop_rotation(q: &mut WaitQueues) -> Option<Waiter> {
        let next = q
            .queues
            .range((Excluded(q.rr_last), Unbounded))
            .next()
            .map(|(&s, _)| s)
            .or_else(|| q.queues.keys().next().copied())?;
        let dq = q.queues.get_mut(&next)?;
        let w = dq.pop_front()?;
        if dq.is_empty() {
            q.queues.remove(&next);
        }
        q.rr_last = next;
        Some(w)
    }

    /// Grant parked waiters while free permits remain. Callers hold the
    /// fallback mutex; with waiters announced in `state`, no fast-path
    /// CAS can interleave, so the transition is uncontended in practice.
    fn grant_ready(&self, q: &mut WaitQueues, limit: usize) {
        while !q.queues.is_empty() {
            let s = self.state.load(Ordering::Acquire);
            if (s & IF_MASK) as usize >= limit {
                return;
            }
            // in_flight + 1, waiters - 1: the permit passes straight to
            // the popped waiter.
            if self
                .state
                .compare_exchange(s, s + 1 - WAITER, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            Self::raise_hw(&self.admitted_hw, (s & IF_MASK) + 1);
            let Some(w) = Self::pop_rotation(q) else {
                // Unreachable: queue emptiness was checked above and
                // entries change only under the held mutex. Put the
                // permit back rather than leak it.
                self.state.fetch_sub(1, Ordering::AcqRel);
                self.state.fetch_add(WAITER, Ordering::AcqRel);
                return;
            };
            self.count_admitted(w.session);
            w.slot.granted.store(true, Ordering::Release);
            w.slot.cv.notify_one();
        }
    }

    fn acquire(&self, session: u64, limit: usize, policy: Saturation) -> Result<()> {
        // Uncontended fast path: nobody queued and capacity free — one
        // CAS and in. Requiring `waiters == 0` keeps arrivals from
        // overtaking parked waiters (FIFO discipline).
        loop {
            let s = self.state.load(Ordering::Acquire);
            if (s >> 32) != 0 || (s & IF_MASK) as usize >= limit {
                break;
            }
            if self
                .state
                .compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                Self::raise_hw(&self.admitted_hw, (s & IF_MASK) + 1);
                self.count_admitted(session);
                return Ok(());
            }
        }
        if policy == Saturation::Reject {
            self.rejected.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
            return Err(ServerError::Busy);
        }
        let slot = Arc::new(WaitSlot::new());
        let mut q = self.m.lock();
        // Announce the waiter while holding the mutex: from here on,
        // every release observes `waiters > 0` and routes through the
        // mutex to grant, so the park below cannot miss its wakeup.
        let prev = self.state.fetch_add(WAITER, Ordering::AcqRel);
        Self::raise_hw(&self.wait_hw, (prev >> 32) + 1);
        q.queues.entry(session).or_default().push_back(Waiter {
            session,
            slot: Arc::clone(&slot),
        });
        // A permit may have freed between the fast-path check and the
        // announcement; grant it now (possibly to ourselves).
        self.grant_ready(&mut q, limit);
        while !slot.granted.load(Ordering::Acquire) {
            slot.cv.wait(&mut q);
        }
        Ok(())
    }

    fn release(&self, limit: usize) {
        // Demo weakening for the race-detector regression test: demote
        // the fast-path success ordering to Relaxed, so releasing a
        // permit publishes nothing and the next fast-path acquirer is
        // unordered against work done under the permit. pario-check
        // must catch the resulting race (see model_demo_atomic.rs).
        // ordering: deliberately-too-weak demo bug, never in real builds
        #[cfg(all(pario_check, pario_check_demo))]
        const FAST_RELEASE_SUCC: Ordering = Ordering::Relaxed; // ordering: deliberately-too-weak demo bug (see above)
        #[cfg(not(all(pario_check, pario_check_demo)))]
        const FAST_RELEASE_SUCC: Ordering = Ordering::AcqRel;
        // Fast path: no waiters — drop in_flight and leave. The CAS
        // fails if a waiter announces concurrently (same word), so a
        // parked thread is never stranded with a free permit.
        loop {
            let s = self.state.load(Ordering::Acquire);
            if (s >> 32) != 0 {
                break;
            }
            if self
                .state
                .compare_exchange_weak(s, s - 1, FAST_RELEASE_SUCC, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
        let mut q = self.m.lock();
        match Self::pop_rotation(&mut q) {
            Some(w) => {
                // Direct handoff: the permit transfers to the waiter,
                // in_flight unchanged; wake exactly that thread.
                self.state.fetch_sub(WAITER, Ordering::AcqRel);
                self.count_admitted(w.session);
                w.slot.granted.store(true, Ordering::Release);
                w.slot.cv.notify_one();
            }
            // A racing grant drained the queues first; just free it.
            None => {
                self.state.fetch_sub(1, Ordering::AcqRel);
            }
        }
        drop(q);
        // The freed permit (or the rotation advance) may unblock more:
        // nothing further to do — the next release or arrival drives
        // subsequent grants.
        let _ = limit;
    }

    fn stats(&self) -> AdmissionStats {
        let s = self.state.load(Ordering::Acquire);
        AdmissionStats {
            in_flight: (s & IF_MASK) as usize,
            admitted_high_water: self.admitted_hw.load(Ordering::Relaxed) as usize, // ordering: diagnostic snapshot; staleness is acceptable
            wait_high_water: self.wait_hw.load(Ordering::Relaxed) as usize, // ordering: diagnostic snapshot; staleness is acceptable
            rejected: self.rejected.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            total_admitted: self
                .admitted
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed)) // ordering: diagnostic snapshot; staleness is acceptable
                .sum(),
        }
    }
}

// ---------------------------------------------------------------------
// Legacy implementation (the E19 baseline)
// ---------------------------------------------------------------------

struct LegacyState {
    in_flight: usize,
    admitted_high_water: usize,
    waiting: usize,
    wait_high_water: usize,
    rejected: u64,
    total_admitted: u64,
    /// Waiting tickets, FIFO per session.
    queues: BTreeMap<u64, VecDeque<u64>>,
    granted: std::collections::HashSet<u64>,
    next_ticket: u64,
    /// Session granted most recently under contention (rotation point).
    rr_last: u64,
}

struct LegacyAdm {
    m: Mutex<LegacyState>,
    cv: Condvar,
}

impl LegacyAdm {
    fn new() -> LegacyAdm {
        LegacyAdm {
            m: Mutex::new_named(
                LegacyState {
                    in_flight: 0,
                    admitted_high_water: 0,
                    waiting: 0,
                    wait_high_water: 0,
                    rejected: 0,
                    total_admitted: 0,
                    queues: BTreeMap::new(),
                    granted: std::collections::HashSet::new(),
                    next_ticket: 0,
                    rr_last: 0,
                },
                LockLevel::Admission,
            ),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, session: u64, limit: usize, policy: Saturation) -> Result<()> {
        let mut st = self.m.lock();
        // Fast path only when nobody is queued, so arrivals cannot
        // overtake waiters.
        if st.in_flight < limit && st.waiting == 0 {
            st.in_flight += 1;
            st.admitted_high_water = st.admitted_high_water.max(st.in_flight);
            st.total_admitted += 1;
            return Ok(());
        }
        if policy == Saturation::Reject {
            st.rejected += 1;
            return Err(ServerError::Busy);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queues.entry(session).or_default().push_back(ticket);
        st.waiting += 1;
        st.wait_high_water = st.wait_high_water.max(st.waiting);
        // A permit may have freed between the fast-path check and here.
        self.grant_next(&mut st, limit);
        while !st.granted.remove(&ticket) {
            self.cv.wait(&mut st);
        }
        Ok(())
    }

    fn release(&self, limit: usize) {
        let mut st = self.m.lock();
        st.in_flight -= 1;
        self.grant_next(&mut st, limit);
    }

    /// Grant a freed permit to the next session in rotation (the first
    /// session id strictly after the last grantee, wrapping around).
    /// Deliberately wakes **every** parked waiter per grant — this is
    /// the thundering herd E19 measures the fixed implementation
    /// against.
    fn grant_next(&self, st: &mut LegacyState, limit: usize) {
        if st.in_flight >= limit || st.waiting == 0 {
            return;
        }
        let next = st
            .queues
            .range((Excluded(st.rr_last), Unbounded))
            .next()
            .map(|(&s, _)| s)
            .or_else(|| st.queues.keys().next().copied());
        let Some(sess) = next else { return };
        // invariant: `sess` came from `queues` keys and queues are
        // removed the moment they drain, so both lookups succeed.
        let Some(q) = st.queues.get_mut(&sess) else {
            return;
        };
        let Some(ticket) = q.pop_front() else {
            return;
        };
        if q.is_empty() {
            st.queues.remove(&sess);
        }
        st.rr_last = sess;
        st.waiting -= 1;
        st.in_flight += 1;
        st.admitted_high_water = st.admitted_high_water.max(st.in_flight);
        st.total_admitted += 1;
        st.granted.insert(ticket);
        self.cv.notify_all();
    }

    fn stats(&self) -> AdmissionStats {
        let st = self.m.lock();
        AdmissionStats {
            in_flight: st.in_flight,
            admitted_high_water: st.admitted_high_water,
            wait_high_water: st.wait_high_water,
            rejected: st.rejected,
            total_admitted: st.total_admitted,
        }
    }
}

// ---------------------------------------------------------------------
// Public facade
// ---------------------------------------------------------------------

// The fast implementation is boxed: its cache-line-padded counter
// stripes make it ~4x the legacy variant's size, and `Admission` lives
// behind an `Arc` in the server anyway.
enum Imp {
    Fast(Box<FastAdm>),
    Legacy(LegacyAdm),
}

/// Bounded admission queue; see the module docs. Its fallback mutex is
/// ranked [`LockLevel::Admission`] in the workspace lock hierarchy.
pub struct Admission {
    limit: usize,
    policy: Saturation,
    imp: Imp,
}

/// An admitted operation; dropping it releases the permit and grants the
/// next waiter in rotation.
#[must_use = "the operation is admitted only while this permit lives"]
pub struct Permit<'a> {
    adm: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        match &self.adm.imp {
            Imp::Fast(f) => f.release(self.adm.limit),
            Imp::Legacy(l) => l.release(self.adm.limit),
        }
    }
}

impl Admission {
    /// An admission queue allowing `limit` concurrent operations, using
    /// the default (fast) implementation.
    pub fn new(limit: usize, policy: Saturation) -> Admission {
        Admission::with_kind(limit, policy, AdmissionKind::Fast)
    }

    /// An admission queue with an explicit implementation choice.
    pub fn with_kind(limit: usize, policy: Saturation, kind: AdmissionKind) -> Admission {
        assert!(limit > 0, "admission limit must be positive");
        assert!(
            limit < IF_MASK as usize,
            "admission limit must fit the packed in-flight field"
        );
        Admission {
            limit,
            policy,
            imp: match kind {
                AdmissionKind::Fast => Imp::Fast(Box::new(FastAdm::new())),
                AdmissionKind::LegacyMutex => Imp::Legacy(LegacyAdm::new()),
            },
        }
    }

    /// The configured in-flight limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Which implementation this queue runs.
    pub fn kind(&self) -> AdmissionKind {
        match &self.imp {
            Imp::Fast(_) => AdmissionKind::Fast,
            Imp::Legacy(_) => AdmissionKind::LegacyMutex,
        }
    }

    /// Admit one operation for `session`, blocking or rejecting per the
    /// saturation policy.
    pub fn acquire(&self, session: u64) -> Result<Permit<'_>> {
        match &self.imp {
            Imp::Fast(f) => f.acquire(session, self.limit, self.policy)?,
            Imp::Legacy(l) => l.acquire(session, self.limit, self.policy)?,
        }
        Ok(Permit { adm: self })
    }

    /// A point-in-time snapshot of queue statistics.
    pub fn stats(&self) -> AdmissionStats {
        match &self.imp {
            Imp::Fast(f) => f.stats(),
            Imp::Legacy(l) => l.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const BOTH: [AdmissionKind; 2] = [AdmissionKind::Fast, AdmissionKind::LegacyMutex];

    #[test]
    fn high_water_bounded_by_limit() {
        for kind in BOTH {
            let adm = Admission::with_kind(3, Saturation::Block, kind);
            let live = AtomicUsize::new(0);
            crossbeam::thread::scope(|s| {
                for sess in 0..12u64 {
                    let adm = &adm;
                    let live = &live;
                    s.spawn(move |_| {
                        for _ in 0..50 {
                            let p = adm.acquire(sess).unwrap();
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            assert!(now <= 3, "{now} ops admitted past the limit ({kind:?})");
                            std::thread::yield_now();
                            live.fetch_sub(1, Ordering::SeqCst);
                            drop(p);
                        }
                    });
                }
            })
            .unwrap();
            let s = adm.stats();
            assert!(s.admitted_high_water <= 3);
            assert!(s.wait_high_water > 0, "oversubscription must queue");
            assert_eq!(s.in_flight, 0);
            assert_eq!(s.rejected, 0);
            assert_eq!(s.total_admitted, 12 * 50, "every op admitted ({kind:?})");
        }
    }

    #[test]
    fn reject_policy_returns_busy() {
        for kind in BOTH {
            let adm = Admission::with_kind(1, Saturation::Reject, kind);
            let p = adm.acquire(0).unwrap();
            assert!(matches!(adm.acquire(1), Err(ServerError::Busy)));
            assert_eq!(adm.stats().rejected, 1);
            drop(p);
            // Capacity freed: admitted again.
            let _p = adm.acquire(1).unwrap();
            let s = adm.stats();
            assert_eq!(s.total_admitted, 2, "rejected ops are not admitted");
        }
    }

    #[test]
    fn grants_rotate_across_sessions() {
        // One permit, three sessions each parking several waiters; the
        // grant order must interleave sessions 0,1,2,0,1,2,... rather
        // than draining session 0 first.
        for kind in BOTH {
            let adm = Admission::with_kind(1, Saturation::Block, kind);
            let order = Mutex::new(Vec::new());
            let hold = adm.acquire(99).unwrap();
            crossbeam::thread::scope(|s| {
                for sess in 0..3u64 {
                    for _ in 0..3 {
                        let adm = &adm;
                        let order = &order;
                        s.spawn(move |_| {
                            let p = adm.acquire(sess).unwrap();
                            order.lock().push(sess);
                            drop(p);
                        });
                        // Stagger arrivals so per-session FIFO order is fixed.
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                }
                // All nine parked; release the held permit.
                while adm.stats().wait_high_water < 9 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                drop(hold);
            })
            .unwrap();
            let order = order.lock().clone();
            assert_eq!(order.len(), 9);
            // Each window of three consecutive grants covers three
            // distinct sessions (perfect rotation).
            for w in order.chunks(3) {
                let mut w = w.to_vec();
                w.sort_unstable();
                assert_eq!(w, vec![0, 1, 2], "unfair grant order {order:?} ({kind:?})");
            }
        }
    }

    #[test]
    fn fast_path_stays_lock_free_under_limit() {
        // Below the limit with no waiters, permits flow with the
        // fallback mutex completely idle: total_admitted and in_flight
        // book-keep exactly.
        let adm = Admission::new(4, Saturation::Block);
        let a = adm.acquire(0).unwrap();
        let b = adm.acquire(1).unwrap();
        let s = adm.stats();
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.total_admitted, 2);
        assert_eq!(s.wait_high_water, 0, "no one should have queued");
        drop(a);
        drop(b);
        let s = adm.stats();
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.admitted_high_water, 2);
        assert_eq!(adm.kind(), AdmissionKind::Fast);
    }
}
