//! Property tests over the open-loop generator: the arrival schedule is
//! a pure function of the seed, arrivals stay strictly monotone inside
//! their rate slots, and the operation stream respects its parameters.

use proptest::prelude::*;

use pario_workloads::OpenLoop;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same schedule; different seed, different schedule.
    #[test]
    fn schedule_deterministic_for_fixed_seed(
        rate in 1_000.0f64..1_000_000.0,
        ops in 16u64..400,
        records in 2u64..256,
        theta in 0.0f64..1.2,
        wf in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let mk = |s| OpenLoop { rate, ops, records, theta, write_fraction: wf, seed: s };
        let a = mk(seed).plan();
        prop_assert_eq!(&a, &mk(seed).plan(), "plan must be a pure function of its params");
        let b = mk(seed ^ 0xDEAD_BEEF).plan();
        prop_assert_ne!(a.arrivals, b.arrivals, "seed must perturb the jitter");
    }

    /// Arrivals are strictly monotone and arrival `i` lies in its own
    /// rate slot `[i*spacing, (i+1)*spacing)` — so the offered rate is
    /// exact over any window, not just on average.
    #[test]
    fn arrivals_monotone_within_slots(
        rate in 1_000.0f64..1_000_000.0,
        ops in 2u64..500,
        seed in 0u64..10_000,
    ) {
        let ol = OpenLoop {
            rate, ops, records: 8, theta: 0.0, write_fraction: 0.0, seed,
        };
        let sp = 1e9 / rate;
        let mut prev = None;
        for i in 0..ops {
            let a = ol.arrival_nanos(i);
            if let Some(p) = prev {
                prop_assert!(a > p, "arrival {i} = {a} not after {p}");
            }
            prev = Some(a);
            let lo = (sp * i as f64) as u64;
            let hi = (sp * (i + 1) as f64) as u64;
            prop_assert!(a >= lo && a < hi, "arrival {i} = {a} outside [{lo},{hi})");
        }
    }

    /// Operations address the configured record space and a zero/one
    /// write fraction is honored exactly.
    #[test]
    fn ops_in_range_and_write_fraction_edges(
        records in 1u64..128,
        ops in 1u64..200,
        seed in 0u64..10_000,
        all_writes in proptest::bool::ANY,
    ) {
        let ol = OpenLoop {
            rate: 10_000.0,
            ops,
            records,
            theta: 0.5,
            write_fraction: if all_writes { 1.0 } else { 0.0 },
            seed,
        };
        let plan = ol.plan();
        prop_assert_eq!(plan.ops.len() as u64, ops);
        for &(r, w) in &plan.ops {
            prop_assert!(r < records);
            prop_assert_eq!(w, all_writes);
        }
    }
}
