//! Property tests over the workload generators: exhaustiveness,
//! determinism, and distributional sanity.

use proptest::prelude::*;

use pario_workloads::{AccessKind, OutOfCore, SkewedBlocks, TaskQueue, WrappedMatrix, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wrapped-matrix ownership partitions the rows exactly.
    #[test]
    fn matrix_rows_partition(rows in 1u64..60, cols in 1u64..10, procs in 1u32..8) {
        let m = WrappedMatrix { rows, cols, processes: procs };
        let mut seen = vec![0u32; rows as usize];
        for p in 0..procs {
            for r in m.rows_of(p) {
                seen[r as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        let t = m.write_trace();
        prop_assert_eq!(t.len() as u64, rows * cols);
        prop_assert_eq!(t.touched().len() as u64, rows * cols);
        // per_process returns exactly the trace split.
        let per = t.per_process(procs);
        prop_assert_eq!(per.iter().map(|v| v.len()).sum::<usize>(), t.len());
    }

    /// Task queues: work is conserved and both schedules respect the
    /// classic bounds — ideal <= schedule, and greedy self-scheduling is
    /// within Graham's 2x of the lower bound. (Greedy can lose to a
    /// lucky static split on particular inputs, so no ss <= static
    /// property holds universally; E3/the examples show the *expected*
    /// advantage on heavy-tailed work.)
    #[test]
    fn task_queue_bounds(n in 1usize..300, min_work in 1u64..20, seed in 0u64..500, workers in 1u32..9) {
        let q = TaskQueue::generate(n, min_work, seed);
        prop_assert_eq!(q.work.len(), n);
        prop_assert!(q.work.iter().all(|&w| w >= min_work && w <= min_work * 16));
        let ideal = q.ideal_makespan(u64::from(workers));
        let ss = q.self_sched_makespan(workers);
        let st = q.static_makespan(workers);
        prop_assert!(ideal <= ss, "ideal {} > ss {}", ideal, ss);
        prop_assert!(ideal <= st, "ideal {} > static {}", ideal, st);
        // Graham's bound for greedy list scheduling.
        prop_assert!(ss <= ideal * 2, "ss {} > 2*ideal {}", ss, ideal);
    }

    /// Out-of-core traces: every page touched read+write once per pass,
    /// directions alternate.
    #[test]
    fn out_of_core_exhaustive(pages in 1u64..40, procs in 1u32..5, passes in 1u32..5) {
        let w = OutOfCore { pages_per_part: pages, processes: procs, passes };
        let t = w.trace();
        prop_assert_eq!(
            t.len() as u64,
            2 * pages * u64::from(procs) * u64::from(passes)
        );
        for (p, accesses) in t.per_process(procs).into_iter().enumerate() {
            let reads = accesses.iter().filter(|a| a.kind == AccessKind::Read).count();
            prop_assert_eq!(reads as u64, pages * u64::from(passes), "proc {}", p);
            // Each read is immediately followed by a write of the same page.
            for pair in accesses.chunks(2) {
                prop_assert_eq!(pair[0].index, pair[1].index);
                prop_assert_eq!(pair[0].kind, AccessKind::Read);
                prop_assert_eq!(pair[1].kind, AccessKind::Write);
            }
        }
    }

    /// Skewed block traces are deterministic, in range, and the write
    /// fraction tracks the parameter.
    #[test]
    fn skewed_blocks_sane(blocks in 1u64..200, requests in 1usize..500, theta in 0.0f64..2.0, wf in 0.0f64..1.0, seed in 0u64..100) {
        let w = SkewedBlocks { blocks, requests, theta, write_fraction: wf, seed };
        let a = w.trace(3);
        let b = w.trace(3);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.accesses.iter().zip(&b.accesses) {
            prop_assert_eq!(x, y);
        }
        prop_assert!(a.accesses.iter().all(|acc| acc.index < blocks));
        if requests > 100 {
            let writes = a.accesses.iter().filter(|x| x.kind == AccessKind::Write).count();
            let frac = writes as f64 / requests as f64;
            prop_assert!((frac - wf).abs() < 0.2, "write fraction {} vs {}", frac, wf);
        }
    }

    /// Zipf probabilities are a monotone distribution summing to one.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..200, theta in 0.0f64..3.0) {
        let z = Zipf::new(n, theta);
        let total: f64 = (0..n).map(|k| z.prob(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.prob(k - 1) >= z.prob(k) - 1e-12);
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
