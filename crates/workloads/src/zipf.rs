//! Zipf-distributed sampling.
//!
//! Livny et al.'s declustering result (cited in the paper's §4) concerns
//! *non-uniform* access patterns: a few hot blocks receive most requests.
//! A Zipf distribution with exponent `theta` is the standard model; with
//! `theta == 0` it degenerates to uniform.

use rand::{Rng, RngExt};

/// Samples ranks `0..n` with probability proportional to
/// `1 / (rank + 1)^theta`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` items with skew `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "need at least one item");
        assert!(theta >= 0.0 && theta.is_finite(), "bad exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler covers no items (never: constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `k`.
    pub fn prob(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.prob(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(100, 1.0);
        assert!(z.prob(0) > z.prob(1));
        assert!(z.prob(1) > z.prob(50));
        // Rank 0 of a theta=1 Zipf over 100 items gets ~19%.
        assert!(z.prob(0) > 0.15 && z.prob(0) < 0.25);
    }

    #[test]
    fn samples_match_distribution() {
        let z = Zipf::new(10, 0.9);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let expected = z.prob(k) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < expected * 0.15 + 30.0,
                "rank {k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
