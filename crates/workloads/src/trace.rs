//! Generic access traces.
//!
//! Experiments hand traces — sequences of per-process record/block
//! touches — to either the real file handles or the discrete-event
//! simulator. Keeping the trace representation here lets one generator
//! feed both worlds.

use serde::{Deserialize, Serialize};

/// Read or write.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// One access by one process.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Access {
    /// Issuing process.
    pub proc: u32,
    /// Target index (record or block, per the experiment's convention).
    pub index: u64,
    /// Direction.
    pub kind: AccessKind,
}

/// A whole workload trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Accesses in program order (per process; inter-process order is
    /// advisory).
    pub accesses: Vec<Access>,
}

impl Trace {
    /// Split into per-process access streams.
    pub fn per_process(&self, nprocs: u32) -> Vec<Vec<Access>> {
        let mut out = vec![Vec::new(); nprocs as usize];
        for a in &self.accesses {
            out[a.proc as usize].push(*a);
        }
        out
    }

    /// Indices touched, de-duplicated, in first-touch order.
    pub fn touched(&self) -> Vec<u64> {
        let mut seen = std::collections::HashSet::new();
        self.accesses
            .iter()
            .filter(|a| seen.insert(a.index))
            .map(|a| a.index)
            .collect()
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_process_partitions() {
        let t = Trace {
            accesses: vec![
                Access {
                    proc: 0,
                    index: 5,
                    kind: AccessKind::Read,
                },
                Access {
                    proc: 1,
                    index: 6,
                    kind: AccessKind::Write,
                },
                Access {
                    proc: 0,
                    index: 5,
                    kind: AccessKind::Read,
                },
            ],
        };
        let per = t.per_process(2);
        assert_eq!(per[0].len(), 2);
        assert_eq!(per[1].len(), 1);
        assert_eq!(t.touched(), vec![5, 6]);
        assert_eq!(t.len(), 3);
    }
}
