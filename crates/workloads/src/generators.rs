//! Workload generators for the paper's motivating applications.
//!
//! Each generator is seeded and pure: the same parameters always produce
//! the same workload, so experiments are exactly repeatable.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::trace::{Access, AccessKind, Trace};
use crate::zipf::Zipf;

/// Deterministic record payload: `size` bytes derived from `tag`.
/// Shared by tests and examples so content checks are trivial.
pub fn record_payload(tag: u64, size: usize) -> Vec<u8> {
    (0..size)
        .map(|i| (tag.wrapping_mul(2654435761).wrapping_add(i as u64) % 251) as u8)
        .collect()
}

/// Wrapped-matrix workload (the paper's IS example): an `rows x cols`
/// matrix stored row-per-file-block, rows dealt round-robin to
/// `processes`.
#[derive(Copy, Clone, Debug)]
pub struct WrappedMatrix {
    /// Matrix rows.
    pub rows: u64,
    /// Elements (records) per row.
    pub cols: u64,
    /// Cooperating processes.
    pub processes: u32,
}

impl WrappedMatrix {
    /// Rows owned by process `p`: `p, p+P, p+2P, …`.
    pub fn rows_of(&self, p: u32) -> Vec<u64> {
        (u64::from(p)..self.rows)
            .step_by(self.processes as usize)
            .collect()
    }

    /// The write trace: each process writes its rows in order, one access
    /// per element.
    pub fn write_trace(&self) -> Trace {
        let mut accesses = Vec::new();
        for p in 0..self.processes {
            for row in self.rows_of(p) {
                for col in 0..self.cols {
                    accesses.push(Access {
                        proc: p,
                        index: row * self.cols + col,
                        kind: AccessKind::Write,
                    });
                }
            }
        }
        Trace { accesses }
    }

    /// Element value at `(row, col)` — deterministic.
    pub fn element(&self, row: u64, col: u64) -> u64 {
        row * self.cols + col
    }
}

/// Master/worker task-queue workload (the paper's SS example: "a queue
/// with multiple servers").
#[derive(Clone, Debug)]
pub struct TaskQueue {
    /// Per-task work amounts (arbitrary units), heavy-tailed so
    /// self-scheduling has an imbalance to fix.
    pub work: Vec<u64>,
}

impl TaskQueue {
    /// `n` tasks with work drawn from a seeded heavy-tailed distribution
    /// in `[min_work, min_work * 16]`.
    pub fn generate(n: usize, min_work: u64, seed: u64) -> TaskQueue {
        let mut rng = StdRng::seed_from_u64(seed);
        let work = (0..n)
            .map(|_| {
                // Power-of-two heavy tail: mostly small, occasionally 16x.
                let shift: u32 = [0, 0, 0, 1, 1, 2, 3, 4][rng.random_range(0..8)];
                min_work << shift
            })
            .collect();
        TaskQueue { work }
    }

    /// Total work units.
    pub fn total_work(&self) -> u64 {
        self.work.iter().sum()
    }

    /// Ideal makespan on `workers` workers (perfect balance).
    pub fn ideal_makespan(&self, workers: u64) -> u64 {
        (self.total_work() / workers).max(*self.work.iter().max().unwrap_or(&0))
    }

    /// Makespan under *static* partitioned assignment (contiguous task
    /// ranges), the baseline self-scheduling beats on imbalanced work.
    pub fn static_makespan(&self, workers: u32) -> u64 {
        let n = self.work.len();
        let per = n.div_ceil(workers as usize);
        self.work
            .chunks(per.max(1))
            .map(|c| c.iter().sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    /// Makespan under greedy self-scheduling (next free worker takes the
    /// next task) — a pure simulation, no I/O.
    pub fn self_sched_makespan(&self, workers: u32) -> u64 {
        let mut finish = vec![0u64; workers as usize];
        for &w in &self.work {
            let idx = (0..finish.len()).min_by_key(|&i| finish[i]).unwrap();
            finish[idx] += w;
        }
        finish.into_iter().max().unwrap_or(0)
    }
}

/// Out-of-core iterative solver workload (the paper's PDA example:
/// "programs which can't fit all of their data into memory … blocks can
/// be thought of as pages of virtual memory, with the direct access
/// feature allowing multiple passes").
#[derive(Copy, Clone, Debug)]
pub struct OutOfCore {
    /// Pages per process partition.
    pub pages_per_part: u64,
    /// Processes.
    pub processes: u32,
    /// Sweeps over the data.
    pub passes: u32,
}

impl OutOfCore {
    /// Per-process page-access trace: each pass sweeps the partition's
    /// pages (alternating direction per pass, as relaxation solvers do).
    pub fn trace(&self) -> Trace {
        let mut accesses = Vec::new();
        for p in 0..self.processes {
            for pass in 0..self.passes {
                let pages: Vec<u64> = (0..self.pages_per_part).collect();
                let iter: Box<dyn Iterator<Item = &u64>> = if pass % 2 == 0 {
                    Box::new(pages.iter())
                } else {
                    Box::new(pages.iter().rev())
                };
                for &page in iter {
                    accesses.push(Access {
                        proc: p,
                        index: page,
                        kind: AccessKind::Read,
                    });
                    accesses.push(Access {
                        proc: p,
                        index: page,
                        kind: AccessKind::Write,
                    });
                }
            }
        }
        Trace { accesses }
    }
}

/// Database-style skewed block workload (the paper's GDA example and the
/// Livny et al. declustering scenario).
#[derive(Copy, Clone, Debug)]
pub struct SkewedBlocks {
    /// Distinct file blocks.
    pub blocks: u64,
    /// Requests to generate.
    pub requests: usize,
    /// Zipf exponent (0 = uniform).
    pub theta: f64,
    /// Fraction of requests that are writes (0.0 - 1.0).
    pub write_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SkewedBlocks {
    /// Generate the trace, requests assigned round-robin to `processes`.
    pub fn trace(&self, processes: u32) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.blocks as usize, self.theta);
        // Scatter ranks over block ids so hot blocks are not adjacent
        // (a fixed pseudo-random permutation).
        let mut perm: Vec<u64> = (0..self.blocks).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.random_range(0..=i));
        }
        let accesses = (0..self.requests)
            .map(|i| {
                let rank = zipf.sample(&mut rng);
                let kind = if rng.random::<f64>() < self.write_fraction {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                Access {
                    proc: i as u32 % processes,
                    index: perm[rank],
                    kind,
                }
            })
            .collect();
        Trace { accesses }
    }
}

/// A closed-loop client population for service-layer load experiments
/// (E14): each client issues one request, waits for it to complete, and
/// only then issues the next — the classic closed queueing model, where
/// offered load adapts to service rate. Records are drawn Zipf-skewed so
/// hot-record contention exercises the server's locks and fairness.
#[derive(Copy, Clone, Debug)]
pub struct ClosedLoop {
    /// Concurrent clients.
    pub clients: u32,
    /// Distinct records addressed.
    pub records: u64,
    /// Operations each client issues.
    pub ops_per_client: usize,
    /// Zipf exponent over records (0 = uniform).
    pub theta: f64,
    /// Fraction of operations that are writes (0.0 - 1.0).
    pub write_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ClosedLoop {
    /// The deterministic operation sequence of client `c`:
    /// `(record, is_write)` pairs, independent per client (each gets its
    /// own seeded stream) so threads need no shared generator state.
    pub fn client_ops(&self, c: u32) -> Vec<(u64, bool)> {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (u64::from(c) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let zipf = Zipf::new(self.records as usize, self.theta);
        (0..self.ops_per_client)
            .map(|_| {
                (
                    zipf.sample(&mut rng) as u64,
                    rng.random::<f64>() < self.write_fraction,
                )
            })
            .collect()
    }

    /// Total operations across the whole population.
    pub fn total_ops(&self) -> u64 {
        u64::from(self.clients) * self.ops_per_client as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_deterministic_and_distinct() {
        assert_eq!(record_payload(5, 32), record_payload(5, 32));
        assert_ne!(record_payload(5, 32), record_payload(6, 32));
        assert_eq!(record_payload(0, 100).len(), 100);
    }

    #[test]
    fn wrapped_matrix_rows_partition_exactly() {
        let m = WrappedMatrix {
            rows: 10,
            cols: 4,
            processes: 3,
        };
        let all: Vec<u64> = (0..3).flat_map(|p| m.rows_of(p)).collect();
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_eq!(m.rows_of(1), vec![1, 4, 7]);
        let t = m.write_trace();
        assert_eq!(t.len(), 40);
        assert_eq!(t.touched().len(), 40);
    }

    #[test]
    fn task_queue_self_scheduling_beats_static() {
        let q = TaskQueue::generate(200, 10, 99);
        let workers = 8;
        let ss = q.self_sched_makespan(workers);
        let st = q.static_makespan(workers);
        let ideal = q.ideal_makespan(u64::from(workers));
        assert!(ss >= ideal);
        assert!(
            ss <= st,
            "self-scheduling ({ss}) should not lose to static ({st})"
        );
        // Heavy tail means static is measurably worse.
        assert!(st as f64 >= ss as f64 * 1.02, "st={st} ss={ss}");
    }

    #[test]
    fn task_queue_deterministic() {
        let a = TaskQueue::generate(50, 5, 1);
        let b = TaskQueue::generate(50, 5, 1);
        assert_eq!(a.work, b.work);
        let c = TaskQueue::generate(50, 5, 2);
        assert_ne!(a.work, c.work);
    }

    #[test]
    fn out_of_core_passes_alternate() {
        let w = OutOfCore {
            pages_per_part: 4,
            processes: 1,
            passes: 2,
        };
        let t = w.trace();
        // 2 passes * 4 pages * (read+write) = 16 accesses.
        assert_eq!(t.len(), 16);
        let reads: Vec<u64> = t
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| a.index)
            .collect();
        assert_eq!(reads, vec![0, 1, 2, 3, 3, 2, 1, 0]);
    }

    #[test]
    fn closed_loop_streams_deterministic_and_independent() {
        let w = ClosedLoop {
            clients: 4,
            records: 64,
            ops_per_client: 500,
            theta: 0.8,
            write_fraction: 0.3,
            seed: 11,
        };
        assert_eq!(w.total_ops(), 2000);
        let a = w.client_ops(0);
        assert_eq!(a, w.client_ops(0), "same client, same stream");
        assert_ne!(a, w.client_ops(1), "clients draw distinct streams");
        assert!(a.iter().all(|&(r, _)| r < 64));
        let writes = a.iter().filter(|&&(_, wr)| wr).count();
        assert!((100..200).contains(&writes), "writes={writes}");
        // Skew: rank 0 is the hottest record.
        let hot = a.iter().filter(|&&(r, _)| r == 0).count();
        assert!(hot * 64 > a.len(), "expected a hot record, got {hot}");
    }

    #[test]
    fn skewed_blocks_hot_spot_exists() {
        let w = SkewedBlocks {
            blocks: 64,
            requests: 10_000,
            theta: 1.0,
            write_fraction: 0.2,
            seed: 3,
        };
        let t = w.trace(4);
        assert_eq!(t.len(), 10_000);
        let mut counts = vec![0usize; 64];
        for a in &t.accesses {
            counts[a.index as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let avg = 10_000 / 64;
        assert!(max > avg * 5, "skew should create a hot block: max={max}");
        // Deterministic given the seed.
        assert_eq!(t.accesses[0], w.trace(4).accesses[0]);
        let writes = t
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        assert!((1500..2500).contains(&writes), "writes={writes}");
    }
}
