//! # pario-workloads — seeded workload generators
//!
//! The paper motivates each organization with an application pattern;
//! this crate generates those patterns deterministically so experiments
//! are exactly repeatable:
//!
//! * [`WrappedMatrix`] — wrapped matrix storage (type IS).
//! * [`TaskQueue`] — master/worker "queue with multiple servers" (SS).
//! * [`OutOfCore`] — multi-pass paging (PDA).
//! * [`SkewedBlocks`] — Zipf-skewed database blocks (GDA / declustering).
//! * [`Stencil1D`] — boundary-sharing relaxation (the §5 halo scenario).
//! * [`OpenLoop`] — fixed-rate arrival schedule for overload/scale
//!   experiments (E19), coordinated-omission safe.
//!
//! All generators emit [`Trace`]s consumable by both the real file
//! handles and the discrete-event simulator.
//!
//! ```
//! use pario_workloads::{TaskQueue, WrappedMatrix};
//!
//! let m = WrappedMatrix { rows: 9, cols: 4, processes: 3 };
//! assert_eq!(m.rows_of(1), vec![1, 4, 7]);
//!
//! let q = TaskQueue::generate(100, 10, 42);
//! assert!(q.self_sched_makespan(4) <= q.static_makespan(4));
//! ```

#![warn(missing_docs)]

mod generators;
mod openloop;
mod stencil;
mod trace;
mod zipf;

pub use generators::{
    record_payload, ClosedLoop, OutOfCore, SkewedBlocks, TaskQueue, WrappedMatrix,
};
pub use openloop::{OpenLoop, OpenLoopPlan};
pub use stencil::{Stencil1D, Stencil2D};
pub use trace::{Access, AccessKind, Trace};
pub use zipf::Zipf;
