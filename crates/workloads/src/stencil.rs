//! 1-D stencil workload (the paper's §5 boundary-data scenario).
//!
//! A relaxation sweep where each cell's new value depends on its
//! neighbours: the canonical reason "data along partition boundaries is
//! needed by processes on both sides of the boundary". The reference
//! implementation here gives experiments and tests an exact answer to
//! compare parallel halo-based runs against.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A 1-D Jacobi-style stencil problem.
#[derive(Clone, Debug)]
pub struct Stencil1D {
    /// Cell values.
    pub cells: Vec<f64>,
}

impl Stencil1D {
    /// A seeded random initial state of `n` cells in `[0, 1)`.
    pub fn random(n: usize, seed: u64) -> Stencil1D {
        let mut rng = StdRng::seed_from_u64(seed);
        Stencil1D {
            cells: (0..n).map(|_| rng.random()).collect(),
        }
    }

    /// One Jacobi sweep: `new[i] = (old[i-1] + old[i] + old[i+1]) / 3`,
    /// with clamped boundaries.
    pub fn step(&self) -> Stencil1D {
        let n = self.cells.len();
        let at = |i: isize| {
            let i = i.clamp(0, n as isize - 1) as usize;
            self.cells[i]
        };
        Stencil1D {
            cells: (0..n as isize)
                .map(|i| (at(i - 1) + at(i) + at(i + 1)) / 3.0)
                .collect(),
        }
    }

    /// `passes` sweeps.
    pub fn run(&self, passes: u32) -> Stencil1D {
        let mut s = self.clone();
        for _ in 0..passes {
            s = s.step();
        }
        s
    }

    /// Serialise cell `i` as a fixed-size record of `record_size` bytes
    /// (f64 little-endian + zero padding).
    pub fn record(&self, i: usize, record_size: usize) -> Vec<u8> {
        assert!(record_size >= 8);
        let mut rec = vec![0u8; record_size];
        rec[..8].copy_from_slice(&self.cells[i].to_le_bytes());
        rec
    }

    /// Parse a record written by [`Stencil1D::record`].
    pub fn parse(rec: &[u8]) -> f64 {
        f64::from_le_bytes(rec[..8].try_into().expect("record holds an f64"))
    }
}

/// A 2-D Jacobi (5-point) stencil problem, stored row-major — the
/// natural fit for a PS file with one record per row, where each process
/// owns a band of rows and needs one halo row from each neighbour.
#[derive(Clone, Debug)]
pub struct Stencil2D {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major cell values (`rows * cols`).
    pub cells: Vec<f64>,
}

impl Stencil2D {
    /// A seeded random grid.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Stencil2D {
        let mut rng = StdRng::seed_from_u64(seed);
        Stencil2D {
            rows,
            cols,
            cells: (0..rows * cols).map(|_| rng.random()).collect(),
        }
    }

    /// Cell accessor with clamped boundaries.
    pub fn at(&self, r: isize, c: isize) -> f64 {
        let r = r.clamp(0, self.rows as isize - 1) as usize;
        let c = c.clamp(0, self.cols as isize - 1) as usize;
        self.cells[r * self.cols + c]
    }

    /// One 5-point Jacobi sweep with clamped boundaries.
    pub fn step(&self) -> Stencil2D {
        let mut next = self.clone();
        for r in 0..self.rows as isize {
            for c in 0..self.cols as isize {
                next.cells[r as usize * self.cols + c as usize] = (self.at(r, c)
                    + self.at(r - 1, c)
                    + self.at(r + 1, c)
                    + self.at(r, c - 1)
                    + self.at(r, c + 1))
                    / 5.0;
            }
        }
        next
    }

    /// `passes` sweeps.
    pub fn run(&self, passes: u32) -> Stencil2D {
        let mut s = self.clone();
        for _ in 0..passes {
            s = s.step();
        }
        s
    }

    /// Serialise row `r` as one fixed-size record (`cols` little-endian
    /// f64s, zero-padded to `record_size`).
    pub fn row_record(&self, r: usize, record_size: usize) -> Vec<u8> {
        assert!(record_size >= self.cols * 8);
        let mut rec = vec![0u8; record_size];
        for c in 0..self.cols {
            rec[c * 8..(c + 1) * 8].copy_from_slice(&self.cells[r * self.cols + c].to_le_bytes());
        }
        rec
    }

    /// Parse a row record written by [`Stencil2D::row_record`].
    pub fn parse_row(rec: &[u8], cols: usize) -> Vec<f64> {
        (0..cols)
            .map(|c| f64::from_le_bytes(rec[c * 8..(c + 1) * 8].try_into().expect("f64")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_smooths() {
        let s = Stencil1D {
            cells: vec![0.0, 1.0, 0.0],
        };
        let t = s.step();
        assert!((t.cells[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((t.cells[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((t.cells[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_mean() {
        let s = Stencil1D::random(32, 7);
        let r = s.run(8000);
        let first = r.cells[0];
        // The slowest smoothing mode decays like ~0.997^passes; 8000
        // passes bring a 32-cell line well under 1e-4 spread.
        assert!(r.cells.iter().all(|&c| (c - first).abs() < 1e-4));
    }

    #[test]
    fn record_round_trip() {
        let s = Stencil1D::random(4, 1);
        let rec = s.record(2, 64);
        assert_eq!(rec.len(), 64);
        assert_eq!(Stencil1D::parse(&rec), s.cells[2]);
    }

    #[test]
    fn stencil2d_smooths_and_serialises() {
        let s = Stencil2D {
            rows: 3,
            cols: 3,
            cells: vec![0.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0],
        };
        let t = s.step();
        assert!((t.cells[4] - 1.0).abs() < 1e-12); // centre: 5/5
        assert!((t.cells[1] - 1.0).abs() < 1e-12); // edge neighbour
                                                   // Corner (0,0): clamped — (0 + 0 + 0 + 0 + 0)/5 = 0.
        assert_eq!(t.cells[0], 0.0);
        let rec = t.row_record(1, 64);
        assert_eq!(Stencil2D::parse_row(&rec, 3), t.cells[3..6].to_vec());
    }

    #[test]
    fn stencil2d_converges() {
        let s = Stencil2D::random(8, 8, 3);
        let r = s.run(4000);
        let first = r.cells[0];
        assert!(r.cells.iter().all(|&c| (c - first).abs() < 1e-4));
    }

    #[test]
    fn deterministic_seed() {
        assert_eq!(Stencil1D::random(8, 3).cells, Stencil1D::random(8, 3).cells);
        assert_ne!(Stencil1D::random(8, 3).cells, Stencil1D::random(8, 4).cells);
    }
}
