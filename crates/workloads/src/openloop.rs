//! Open-loop load generation for the scale harness (E19).
//!
//! A closed-loop population ([`ClosedLoop`](crate::ClosedLoop)) adapts
//! its offered load to the service rate: clients wait for each response
//! before issuing the next request, so an overloaded server simply slows
//! its clients down and the measured latency stays flat. An **open-loop**
//! generator instead fixes the *arrival* schedule up front — operation
//! `i` is due at a set instant regardless of how the server is doing —
//! which is how real populations of independent clients behave and the
//! only way to see overload: past saturation the queue grows without
//! bound and tail latency climbs a cliff (the "knee").
//!
//! Two disciplines matter for honest numbers:
//!
//! * **Coordinated-omission safety.** Per-op latency must be measured
//!   from the operation's *intended* start (its arrival time), not from
//!   when a delayed worker actually got around to issuing it. Otherwise
//!   a stalled server silently erases the queueing delay it caused.
//! * **Work conservation.** Workers pull the next due operation from a
//!   shared atomic cursor (the self-scheduled cursor discipline), so a
//!   slow worker never strands scheduled arrivals behind it.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::Zipf;

/// An open-loop workload: `ops` operations offered at a fixed aggregate
/// `rate`, addressing `records` with Zipf skew `theta`. Deterministic
/// for a fixed seed — the full arrival schedule and operation sequence
/// are pure functions of the parameters.
#[derive(Copy, Clone, Debug)]
pub struct OpenLoop {
    /// Offered arrival rate, operations per second.
    pub rate: f64,
    /// Total operations to offer.
    pub ops: u64,
    /// Distinct records addressed.
    pub records: u64,
    /// Zipf exponent over records (0 = uniform).
    pub theta: f64,
    /// Fraction of operations that are writes (0.0 - 1.0).
    pub write_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

/// splitmix64: a tiny, well-mixed pure hash, used to jitter arrivals
/// without threading an RNG through the schedule.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl OpenLoop {
    /// Nanoseconds between scheduled arrivals.
    fn spacing_nanos(&self) -> f64 {
        assert!(self.rate > 0.0, "offered rate must be positive");
        1e9 / self.rate
    }

    /// The intended start of operation `i`, in nanoseconds from the run
    /// origin: uniformly spaced slots of width `1e9/rate`, each arrival
    /// jittered within its own slot by a seeded hash. Arrivals are
    /// strictly monotone in `i`, every arrival `i` lies in
    /// `[i*spacing, (i+1)*spacing)`, and the long-run offered rate is
    /// exactly `rate`.
    pub fn arrival_nanos(&self, i: u64) -> u64 {
        let sp = self.spacing_nanos();
        let lo = (sp * i as f64) as u64;
        let hi = (sp * (i + 1) as f64) as u64;
        // Jitter in [0, 1): 53 high bits of the hash as a fraction.
        let j = (splitmix64(self.seed ^ i) >> 11) as f64 / (1u64 << 53) as f64;
        // Clamp into the slot: rounding at the f64 boundary must not
        // push an arrival onto (or past) the next slot's start.
        ((sp * i as f64 + j * sp) as u64).clamp(lo, hi.saturating_sub(1).max(lo))
    }

    /// The operation at schedule position `i`: `(record, is_write)`,
    /// drawn from an independent seeded stream per position (same
    /// per-stream idiom as `ClosedLoop::client_ops`).
    pub fn op(&self, i: u64, zipf: &Zipf) -> (u64, bool) {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (
            zipf.sample(&mut rng) as u64,
            rng.random::<f64>() < self.write_fraction,
        )
    }

    /// Materialize the full schedule: arrival times and operations for
    /// all `ops` positions, with the Zipf table built once. Workers
    /// index into the plan via a shared atomic cursor.
    pub fn plan(&self) -> OpenLoopPlan {
        let zipf = Zipf::new(self.records as usize, self.theta);
        let arrivals = (0..self.ops).map(|i| self.arrival_nanos(i)).collect();
        let ops = (0..self.ops).map(|i| self.op(i, &zipf)).collect();
        OpenLoopPlan { arrivals, ops }
    }

    /// Wall-clock length of the offered schedule, in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.ops as f64 / self.rate
    }
}

/// A materialized open-loop schedule; position `i` of both vectors
/// describes operation `i`.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenLoopPlan {
    /// Intended start of each operation, nanoseconds from the run origin.
    pub arrivals: Vec<u64>,
    /// `(record, is_write)` for each operation.
    pub ops: Vec<(u64, bool)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(rate: f64, seed: u64) -> OpenLoop {
        OpenLoop {
            rate,
            ops: 2_000,
            records: 64,
            theta: 0.8,
            write_fraction: 0.25,
            seed,
        }
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = w(50_000.0, 7).plan();
        let b = w(50_000.0, 7).plan();
        assert_eq!(a, b, "same seed, same plan");
        let c = w(50_000.0, 8).plan();
        assert_ne!(a.arrivals, c.arrivals);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn arrivals_monotone_and_rate_exact() {
        let ol = w(100_000.0, 3);
        let plan = ol.plan();
        let sp = 1e9 / ol.rate;
        for i in 1..plan.arrivals.len() {
            assert!(plan.arrivals[i] > plan.arrivals[i - 1], "monotone at {i}");
        }
        for (i, &a) in plan.arrivals.iter().enumerate() {
            let lo = (sp * i as f64) as u64;
            let hi = (sp * (i + 1) as f64) as u64;
            assert!(a >= lo && a < hi, "arrival {i} = {a} outside [{lo},{hi})");
        }
        // Long-run offered rate is the slot rate.
        let span = plan.arrivals[plan.arrivals.len() - 1] - plan.arrivals[0];
        let measured = (ol.ops - 1) as f64 / (span as f64 / 1e9);
        assert!(
            (measured - ol.rate).abs() / ol.rate < 0.01,
            "measured {measured} vs offered {}",
            ol.rate
        );
    }

    #[test]
    fn ops_respect_record_space_and_write_fraction() {
        let ol = w(10_000.0, 11);
        let plan = ol.plan();
        assert!(plan.ops.iter().all(|&(r, _)| r < 64));
        let writes = plan.ops.iter().filter(|&&(_, wr)| wr).count();
        // 25% of 2000 with slack.
        assert!((350..650).contains(&writes), "writes={writes}");
        // Skew: rank 0 is the hottest record.
        let hot = plan.ops.iter().filter(|&&(r, _)| r == 0).count();
        assert!(hot * 64 > plan.ops.len(), "expected a hot record: {hot}");
    }
}
