//! One socket type over both transports (TCP and Unix-domain), so the
//! connection machinery is written once. Cloning a [`Sock`] clones the
//! OS handle: the reader thread keeps one clone, the writer another,
//! and `shutdown` on either unblocks both.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use crate::error::{NetError, Result};

/// A connected stream socket on either transport.
pub enum Sock {
    /// A TCP connection (`TCP_NODELAY` is set by the constructors; the
    /// protocol pipelines small frames and must not wait out Nagle).
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Sock {
    /// Wrap a TCP stream, setting `TCP_NODELAY`.
    pub fn tcp(s: TcpStream) -> Result<Sock> {
        s.set_nodelay(true)?;
        Ok(Sock::Tcp(s))
    }

    /// Wrap a Unix-domain stream.
    pub fn unix(s: UnixStream) -> Sock {
        Sock::Unix(s)
    }

    /// Clone the OS handle (shared file description).
    pub fn try_clone(&self) -> Result<Sock> {
        Ok(match self {
            Sock::Tcp(s) => Sock::Tcp(s.try_clone()?),
            Sock::Unix(s) => Sock::Unix(s.try_clone()?),
        })
    }

    /// Shut down both directions; pending and future reads on every
    /// clone return EOF, which is what unblocks a parked reader thread.
    pub fn shutdown(&self) {
        let _ = match self {
            Sock::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Sock::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    /// Shut down only the receive direction: a parked reader wakes with
    /// EOF, but the send half stays open so a writer thread can still
    /// flush replies already in flight. This is the graceful half of
    /// server shutdown; `shutdown` is the hard half.
    pub fn shutdown_read(&self) {
        let _ = match self {
            Sock::Tcp(s) => s.shutdown(std::net::Shutdown::Read),
            Sock::Unix(s) => s.shutdown(std::net::Shutdown::Read),
        };
    }

    /// A short peer label for thread names and error messages.
    pub fn peer_label(&self) -> String {
        match self {
            Sock::Tcp(s) => s
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "tcp-peer".to_string()),
            Sock::Unix(_) => "unix-peer".to_string(),
        }
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            Sock::Unix(s) => s.flush(),
        }
    }
}

/// Connect over TCP.
pub fn connect_tcp(addr: &str) -> Result<Sock> {
    let s = TcpStream::connect(addr).map_err(|e| NetError::Io(format!("connect {addr}: {e}")))?;
    Sock::tcp(s)
}

/// Connect over a Unix-domain socket.
pub fn connect_unix(path: &std::path::Path) -> Result<Sock> {
    let s = UnixStream::connect(path)
        .map_err(|e| NetError::Io(format!("connect {}: {e}", path.display())))?;
    Ok(Sock::unix(s))
}
