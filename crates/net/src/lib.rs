//! pario-net: a framed wire protocol and network service layer in
//! front of `pario-server`.
//!
//! The paper's file concepts assume the I/O system is a *service*:
//! compute processes on other nodes reach the file system through
//! messages, not shared memory. This crate supplies that boundary for
//! the in-process [`Server`](pario_server::Server):
//!
//! * [`wire`] / [`proto`] — a small length-prefixed, versioned binary
//!   codec (no serde, no async runtime) carrying the full session
//!   surface: every file organization's open, read, write and cursor
//!   operations, SS shared-cursor claims, partition claims, and GDA
//!   byte-range locks, plus a lossless encoding of the typed
//!   `ServerError` taxonomy so remote callers match on the very same
//!   variants.
//! * [`frame`] — framing, bounds-checked lengths, and the handshake
//!   that grants each connection its flow-control credits.
//! * [`NetServer`] — a listener (TCP or Unix-domain) with one reader
//!   and one writer thread per connection. Each connection multiplexes
//!   onto one `Session`, so the existing bounded admission and
//!   `ServerStats` remain the backpressure story; read replies are
//!   written straight from pool frames into the socket (zero copy on
//!   the serve path).
//! * [`NetClient`] — the remote mirror of `Session`: typed handles
//!   ([`RemoteSeq`], [`RemoteSs`], [`RemotePartition`],
//!   [`RemoteInterleaved`], [`RemoteDirect`]) with pipelined submission
//!   under the credit window.
//!
//! Concurrency follows the workspace rules: locks are
//! `pario_check`-ranked (`net.credits` < `net.replies` < `net.send`),
//! threads are named, and every blocking wait has a shutdown path that
//! unblocks it (socket shutdown wakes parked readers and writers).

#![warn(missing_docs)]

pub mod client;
pub mod credits;
pub mod error;
pub mod frame;
pub mod proto;
pub mod server;
pub mod sock;
pub mod wire;

pub use client::{
    NetClient, Pending, RemoteDirect, RemoteInterleaved, RemoteLock, RemotePartition, RemoteSeq,
    RemoteSs, SsReadTicket, SsWriteTicket,
};
pub use credits::CreditWindow;
pub use error::{NetError, Result};
pub use frame::Grant;
pub use proto::StatsSummary;
pub use server::{NetConfig, NetServer};
pub use sock::Sock;
