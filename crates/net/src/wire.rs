//! The primitive byte codec under the frame protocol: little-endian
//! integers, length-prefixed byte strings, and a reader that fails
//! closed — every decode returns [`WireError::Truncated`] or
//! [`WireError::Malformed`] instead of panicking, whatever the input
//! bytes are.

use std::fmt;

/// A decode failure. Any sequence of bytes either decodes or returns
/// one of these; the connection layer treats both as fatal for the
/// connection (fail closed), never for the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The value ran past the end of the buffer.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        had: usize,
    },
    /// The bytes decoded to something no encoder produces (bad tag,
    /// non-UTF-8 string, trailing garbage).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, had } => {
                write!(f, "truncated value: needed {needed} bytes, had {had}")
            }
            WireError::Malformed(msg) => write!(f, "malformed wire data: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for decoding.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// An append-only encoder over a reusable byte vector.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Take the encoded bytes, leaving the writer empty.
    pub fn take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Clear without deallocating (reuse across frames).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) -> &mut WireWriter {
        self.buf.push(v);
        self
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut WireWriter {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut WireWriter {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut WireWriter {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append raw bytes with no prefix (a frame's trailing payload).
    pub fn raw(&mut self, v: &[u8]) -> &mut WireWriter {
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn bytes_prefixed(&mut self, v: &[u8]) -> &mut WireWriter {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn str_prefixed(&mut self, v: &str) -> &mut WireWriter {
        self.bytes_prefixed(v.as_bytes())
    }
}

/// A cursor-style decoder over a byte slice.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte was consumed — trailing garbage after a
    /// well-formed value is a protocol violation, not padding.
    pub fn finish(&self) -> WireResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after value",
                self.remaining()
            )))
        }
    }

    fn need(&self, n: usize) -> WireResult<()> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                had: self.remaining(),
            });
        }
        Ok(())
    }

    /// Read one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> WireResult<u16> {
        self.need(2)?;
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 2]);
        self.pos += 2;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> WireResult<u32> {
        self.need(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> WireResult<u64> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }

    /// Read a `u32`-length-prefixed byte string (borrowed).
    pub fn bytes_prefixed(&mut self) -> WireResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let v = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(v)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str_prefixed(&mut self) -> WireResult<String> {
        let b = self.bytes_prefixed()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".to_string()))
    }

    /// Read the rest of the buffer (the frame's trailing payload).
    pub fn rest(&mut self) -> &'a [u8] {
        let v = &self.buf[self.pos..];
        self.pos = self.buf.len();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = WireWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40);
        w.str_prefixed("héllo").bytes_prefixed(&[1, 2, 3]);
        let bytes = w.take();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.str_prefixed().unwrap(), "héllo");
        assert_eq!(r.bytes_prefixed().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(matches!(
            r.u64(),
            Err(WireError::Truncated { needed: 8, had: 2 })
        ));
        // A length prefix promising more than the buffer holds.
        let mut w = WireWriter::new();
        w.u32(1000);
        let bytes = w.take();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.bytes_prefixed(),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.finish(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut w = WireWriter::new();
        w.bytes_prefixed(&[0xFF, 0xFE]);
        let bytes = w.take();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.str_prefixed(), Err(WireError::Malformed(_))));
    }
}
