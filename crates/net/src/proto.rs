//! The protocol layer: the handshake constants, the typed request set
//! (one variant per operation on the [`pario_server::Session`]
//! surface), the fixed response bodies, and a lossless wire encoding of
//! the whole error taxonomy — a [`ServerError`] decoded on the client
//! compares equal to the one the server produced.

use bytes::Bytes;
use pario_core::{intern_expected, CoreError, Organization};
use pario_disk::DiskError;
use pario_fs::{FsError, HealthState};
use pario_server::ServerError;

use crate::error::NetError;
use crate::wire::{WireError, WireReader, WireResult, WireWriter};

/// First bytes of every connection, both directions.
pub const MAGIC: [u8; 4] = *b"PIO1";

/// Protocol version spoken by this build. The handshake carries it both
/// ways; a mismatch fails the connection with [`NetError::Handshake`]
/// instead of misparsing frames. Version 2 added the typed shutdown
/// error class (`ERR_CLASS_SHUTDOWN`) for graceful drain — a v1 peer
/// would decode that reply as malformed and tear the connection, so the
/// incompatibility is surfaced at the handshake instead.
pub const VERSION: u16 = 2;

/// Reply status byte: the request succeeded; the body is the
/// operation's result.
pub const STATUS_OK: u8 = 0;

/// Reply status byte: the request failed; the body encodes the error.
pub const STATUS_ERR: u8 = 1;

// Error-body class tags under STATUS_ERR.
const ERR_CLASS_SERVER: u8 = 0;
const ERR_CLASS_PROTOCOL: u8 = 1;
const ERR_CLASS_SHUTDOWN: u8 = 2;

/// One request on the wire. Bulk write payloads are [`Bytes`], so a
/// benchmark replaying one record body across thousands of requests
/// clones a reference, not the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; empty OK reply.
    Ping,
    /// Server statistics snapshot; [`StatsSummary`] reply.
    Stats,
    /// `Session::open_sequential`; [`Opened`] reply.
    OpenSeq {
        /// File name.
        name: String,
    },
    /// `Session::open_self_sched`; [`Opened`] reply.
    OpenSs {
        /// File name.
        name: String,
    },
    /// `Session::open_self_sched_naive` (big-lock baseline); [`Opened`].
    OpenSsNaive {
        /// File name.
        name: String,
    },
    /// `Session::open_partition`; [`Opened`] reply with the claimed
    /// record range.
    OpenPartition {
        /// File name.
        name: String,
        /// Partition index to claim.
        partition: u32,
    },
    /// `Session::open_interleaved`; [`Opened`] reply.
    OpenInterleaved {
        /// File name.
        name: String,
        /// Interleave slot to claim.
        process: u32,
    },
    /// `Session::open_direct`; [`Opened`] reply.
    OpenDirect {
        /// File name.
        name: String,
    },
    /// Drop the server-side client behind `handle`, releasing any
    /// exclusive hold, partition/slot claim, or range locks it owns.
    Close {
        /// Handle to close.
        handle: u64,
    },

    /// `SeqClient::read_next`. Reply: `u8` flag (0 = EOF), then the
    /// record bytes.
    SeqRead {
        /// Open handle.
        handle: u64,
    },
    /// `SeqClient::write_next`. Empty reply.
    SeqWrite {
        /// Open handle.
        handle: u64,
        /// One record.
        data: Bytes,
    },
    /// `SeqClient::finish`. Reply: `u64` published length.
    SeqFinish {
        /// Open handle.
        handle: u64,
    },
    /// `SeqClient::rewind`. Empty reply.
    SeqRewind {
        /// Open handle.
        handle: u64,
    },

    /// `SsClient::read_next`. Reply: `u8` flag; when 1, `u64` record
    /// index then the record bytes.
    SsRead {
        /// Open handle.
        handle: u64,
    },
    /// `SsClient::read_next_block`. Reply: `u8` flag; when 1, `u64`
    /// first record index, `u32` record count, then the block bytes.
    SsReadBlock {
        /// Open handle.
        handle: u64,
    },
    /// `SsClient::write_next`. Reply: `u64` slot written.
    SsWrite {
        /// Open handle.
        handle: u64,
        /// One record.
        data: Bytes,
    },
    /// `SsClient::finish_writes`. Reply: `u64` published length.
    SsFinish {
        /// Open handle.
        handle: u64,
    },
    /// `SsClient::claimed`. Reply: `u64`.
    SsClaimed {
        /// Open handle.
        handle: u64,
    },

    /// `PartitionClient::read_record`. Reply: the record bytes.
    PartRead {
        /// Open handle.
        handle: u64,
        /// Global record index.
        record: u64,
    },
    /// `PartitionClient::write_record`. Empty reply.
    PartWrite {
        /// Open handle.
        handle: u64,
        /// Global record index.
        record: u64,
        /// One record.
        data: Bytes,
    },
    /// `PartitionClient::read_next`. Reply: `u8` flag, record bytes.
    PartReadNext {
        /// Open handle.
        handle: u64,
    },
    /// `PartitionClient::write_next`. Empty reply.
    PartWriteNext {
        /// Open handle.
        handle: u64,
        /// One record.
        data: Bytes,
    },
    /// `PartitionClient::rewind`. Empty reply.
    PartRewind {
        /// Open handle.
        handle: u64,
    },

    /// `InterleavedClient::read_next`. Reply: `u8` flag, record bytes.
    IlvReadNext {
        /// Open handle.
        handle: u64,
    },
    /// `InterleavedClient::write_next`. Reply: `u64` record written.
    IlvWriteNext {
        /// Open handle.
        handle: u64,
        /// One record.
        data: Bytes,
    },
    /// `InterleavedClient::read_next_block`. Reply: `u8` flag; when 1,
    /// `u64` block index then the block bytes.
    IlvReadBlock {
        /// Open handle.
        handle: u64,
    },
    /// `InterleavedClient::write_next_block`. Reply: `u64` block index.
    IlvWriteBlock {
        /// Open handle.
        handle: u64,
        /// One file block.
        data: Bytes,
    },

    /// `DirectClient::read_record`. Reply: the record bytes.
    DirRead {
        /// Open handle.
        handle: u64,
        /// Record index.
        record: u64,
    },
    /// `DirectClient::write_record`. Empty reply.
    DirWrite {
        /// Open handle.
        handle: u64,
        /// Record index.
        record: u64,
        /// One record.
        data: Bytes,
    },
    /// `DirectClient::lock_range`. Reply: `u64` lock id.
    DirLock {
        /// Open handle.
        handle: u64,
        /// First record of the range.
        r_lo: u64,
        /// One past the last record.
        r_hi: u64,
    },
    /// `DirectClient::unlock` — flushes the span (durable-at-unlock)
    /// then releases. Empty reply.
    DirUnlock {
        /// Open handle.
        handle: u64,
        /// Lock id from [`Request::DirLock`].
        lock: u64,
    },
    /// `DirectClient::write_record_locked`. Empty reply.
    DirWriteLocked {
        /// Open handle.
        handle: u64,
        /// Lock id from [`Request::DirLock`].
        lock: u64,
        /// Record index.
        record: u64,
        /// One record.
        data: Bytes,
    },
    /// `DirectClient::len_records`. Reply: `u64`.
    DirLen {
        /// Open handle.
        handle: u64,
    },
}

impl Request {
    /// The request's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => 0x01,
            Request::Stats => 0x02,
            Request::OpenSeq { .. } => 0x10,
            Request::OpenSs { .. } => 0x11,
            Request::OpenSsNaive { .. } => 0x12,
            Request::OpenPartition { .. } => 0x13,
            Request::OpenInterleaved { .. } => 0x14,
            Request::OpenDirect { .. } => 0x15,
            Request::Close { .. } => 0x16,
            Request::SeqRead { .. } => 0x20,
            Request::SeqWrite { .. } => 0x21,
            Request::SeqFinish { .. } => 0x22,
            Request::SeqRewind { .. } => 0x23,
            Request::SsRead { .. } => 0x28,
            Request::SsReadBlock { .. } => 0x29,
            Request::SsWrite { .. } => 0x2A,
            Request::SsFinish { .. } => 0x2B,
            Request::SsClaimed { .. } => 0x2C,
            Request::PartRead { .. } => 0x30,
            Request::PartWrite { .. } => 0x31,
            Request::PartReadNext { .. } => 0x32,
            Request::PartWriteNext { .. } => 0x33,
            Request::PartRewind { .. } => 0x34,
            Request::IlvReadNext { .. } => 0x38,
            Request::IlvWriteNext { .. } => 0x39,
            Request::IlvReadBlock { .. } => 0x3A,
            Request::IlvWriteBlock { .. } => 0x3B,
            Request::DirRead { .. } => 0x40,
            Request::DirWrite { .. } => 0x41,
            Request::DirLock { .. } => 0x42,
            Request::DirUnlock { .. } => 0x43,
            Request::DirWriteLocked { .. } => 0x44,
            Request::DirLen { .. } => 0x45,
        }
    }

    /// Every opcode this build understands, for exhaustive tests.
    pub const ALL_OPCODES: &'static [u8] = &[
        0x01, 0x02, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x20, 0x21, 0x22, 0x23, 0x28, 0x29,
        0x2A, 0x2B, 0x2C, 0x30, 0x31, 0x32, 0x33, 0x34, 0x38, 0x39, 0x3A, 0x3B, 0x40, 0x41, 0x42,
        0x43, 0x44, 0x45,
    ];

    /// Encode the payload (everything after the opcode byte). Bulk data
    /// is always the trailing field, unprefixed, so the receiver can
    /// slice it without another length.
    pub fn encode_payload(&self, w: &mut WireWriter) {
        match self {
            Request::Ping | Request::Stats => {}
            Request::OpenSeq { name }
            | Request::OpenSs { name }
            | Request::OpenSsNaive { name }
            | Request::OpenDirect { name } => {
                w.str_prefixed(name);
            }
            Request::OpenPartition { name, partition } => {
                w.str_prefixed(name).u32(*partition);
            }
            Request::OpenInterleaved { name, process } => {
                w.str_prefixed(name).u32(*process);
            }
            Request::Close { handle }
            | Request::SeqRead { handle }
            | Request::SeqFinish { handle }
            | Request::SeqRewind { handle }
            | Request::SsRead { handle }
            | Request::SsReadBlock { handle }
            | Request::SsFinish { handle }
            | Request::SsClaimed { handle }
            | Request::PartReadNext { handle }
            | Request::PartRewind { handle }
            | Request::IlvReadNext { handle }
            | Request::IlvReadBlock { handle }
            | Request::DirLen { handle } => {
                w.u64(*handle);
            }
            Request::SeqWrite { handle, data }
            | Request::SsWrite { handle, data }
            | Request::PartWriteNext { handle, data }
            | Request::IlvWriteNext { handle, data }
            | Request::IlvWriteBlock { handle, data } => {
                w.u64(*handle);
                w.raw(data);
            }
            Request::PartRead { handle, record } | Request::DirRead { handle, record } => {
                w.u64(*handle).u64(*record);
            }
            Request::PartWrite {
                handle,
                record,
                data,
            }
            | Request::DirWrite {
                handle,
                record,
                data,
            } => {
                w.u64(*handle).u64(*record);
                w.raw(data);
            }
            Request::DirLock { handle, r_lo, r_hi } => {
                w.u64(*handle).u64(*r_lo).u64(*r_hi);
            }
            Request::DirUnlock { handle, lock } => {
                w.u64(*handle).u64(*lock);
            }
            Request::DirWriteLocked {
                handle,
                lock,
                record,
                data,
            } => {
                w.u64(*handle).u64(*lock).u64(*record);
                w.raw(data);
            }
        }
    }

    /// Decode a request from its opcode and payload bytes. Unknown
    /// opcodes and malformed payloads are [`WireError`]s — the
    /// connection layer treats them as fatal for that connection.
    pub fn decode(opcode: u8, payload: &[u8]) -> WireResult<Request> {
        let mut r = WireReader::new(payload);
        let req = match opcode {
            0x01 => Request::Ping,
            0x02 => Request::Stats,
            0x10 => Request::OpenSeq {
                name: r.str_prefixed()?,
            },
            0x11 => Request::OpenSs {
                name: r.str_prefixed()?,
            },
            0x12 => Request::OpenSsNaive {
                name: r.str_prefixed()?,
            },
            0x13 => Request::OpenPartition {
                name: r.str_prefixed()?,
                partition: r.u32()?,
            },
            0x14 => Request::OpenInterleaved {
                name: r.str_prefixed()?,
                process: r.u32()?,
            },
            0x15 => Request::OpenDirect {
                name: r.str_prefixed()?,
            },
            0x16 => Request::Close { handle: r.u64()? },
            0x20 => Request::SeqRead { handle: r.u64()? },
            0x21 => Request::SeqWrite {
                handle: r.u64()?,
                data: Bytes::copy_from_slice(r.rest()),
            },
            0x22 => Request::SeqFinish { handle: r.u64()? },
            0x23 => Request::SeqRewind { handle: r.u64()? },
            0x28 => Request::SsRead { handle: r.u64()? },
            0x29 => Request::SsReadBlock { handle: r.u64()? },
            0x2A => Request::SsWrite {
                handle: r.u64()?,
                data: Bytes::copy_from_slice(r.rest()),
            },
            0x2B => Request::SsFinish { handle: r.u64()? },
            0x2C => Request::SsClaimed { handle: r.u64()? },
            0x30 => Request::PartRead {
                handle: r.u64()?,
                record: r.u64()?,
            },
            0x31 => Request::PartWrite {
                handle: r.u64()?,
                record: r.u64()?,
                data: Bytes::copy_from_slice(r.rest()),
            },
            0x32 => Request::PartReadNext { handle: r.u64()? },
            0x33 => Request::PartWriteNext {
                handle: r.u64()?,
                data: Bytes::copy_from_slice(r.rest()),
            },
            0x34 => Request::PartRewind { handle: r.u64()? },
            0x38 => Request::IlvReadNext { handle: r.u64()? },
            0x39 => Request::IlvWriteNext {
                handle: r.u64()?,
                data: Bytes::copy_from_slice(r.rest()),
            },
            0x3A => Request::IlvReadBlock { handle: r.u64()? },
            0x3B => Request::IlvWriteBlock {
                handle: r.u64()?,
                data: Bytes::copy_from_slice(r.rest()),
            },
            0x40 => Request::DirRead {
                handle: r.u64()?,
                record: r.u64()?,
            },
            0x41 => Request::DirWrite {
                handle: r.u64()?,
                record: r.u64()?,
                data: Bytes::copy_from_slice(r.rest()),
            },
            0x42 => Request::DirLock {
                handle: r.u64()?,
                r_lo: r.u64()?,
                r_hi: r.u64()?,
            },
            0x43 => Request::DirUnlock {
                handle: r.u64()?,
                lock: r.u64()?,
            },
            0x44 => Request::DirWriteLocked {
                handle: r.u64()?,
                lock: r.u64()?,
                record: r.u64()?,
                data: Bytes::copy_from_slice(r.rest()),
            },
            0x45 => Request::DirLen { handle: r.u64()? },
            other => {
                return Err(WireError::Malformed(format!("unknown opcode {other:#04x}")));
            }
        };
        r.finish()?;
        Ok(req)
    }
}

/// The reply body of every successful open: the server-side handle and
/// the sizing the client needs before its first transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opened {
    /// Server-side handle for subsequent requests on this connection.
    pub handle: u64,
    /// Fixed record size in bytes.
    pub record_size: u32,
    /// Records per file block (block reads need
    /// `record_size * records_per_block` byte buffers).
    pub records_per_block: u32,
    /// File length in records when opened (point-in-time).
    pub len_records: u64,
    /// First record this handle may touch (partition opens; 0 otherwise).
    pub start: u64,
    /// One past the last record this handle may touch (partition opens;
    /// `len_records` otherwise).
    pub end: u64,
}

impl Opened {
    /// Encode as a reply body.
    pub fn encode(&self, w: &mut WireWriter) {
        w.u64(self.handle)
            .u32(self.record_size)
            .u32(self.records_per_block)
            .u64(self.len_records)
            .u64(self.start)
            .u64(self.end);
    }

    /// Decode a reply body.
    pub fn decode(body: &[u8]) -> WireResult<Opened> {
        let mut r = WireReader::new(body);
        let v = Opened {
            handle: r.u64()?,
            record_size: r.u32()?,
            records_per_block: r.u32()?,
            len_records: r.u64()?,
            start: r.u64()?,
            end: r.u64()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// The reply body of [`Request::Stats`]: the remote-visible slice of
/// [`pario_server::ServerStats`], including the latency percentiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSummary {
    /// Sessions currently connected (one per network connection, plus
    /// any in-process sessions).
    pub sessions: u64,
    /// Operations in flight right now.
    pub in_flight: u64,
    /// Requests rejected with `Busy`.
    pub rejected: u64,
    /// Cumulative operations ever admitted — remote clients compute
    /// achieved (goodput) rates from two snapshots of this.
    pub total_admitted: u64,
    /// Median end-to-end operation latency, nanoseconds.
    pub p50_nanos: Option<u64>,
    /// 99th-percentile latency, nanoseconds.
    pub p99_nanos: Option<u64>,
    /// 99.9th-percentile latency, nanoseconds.
    pub p999_nanos: Option<u64>,
}

fn encode_opt_u64(w: &mut WireWriter, v: Option<u64>) {
    match v {
        Some(n) => {
            w.u8(1).u64(n);
        }
        None => {
            w.u8(0);
        }
    }
}

fn decode_opt_u64(r: &mut WireReader<'_>) -> WireResult<Option<u64>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        other => Err(WireError::Malformed(format!("bad option tag {other}"))),
    }
}

impl StatsSummary {
    /// Encode as a reply body.
    pub fn encode(&self, w: &mut WireWriter) {
        w.u64(self.sessions)
            .u64(self.in_flight)
            .u64(self.rejected)
            .u64(self.total_admitted);
        encode_opt_u64(w, self.p50_nanos);
        encode_opt_u64(w, self.p99_nanos);
        encode_opt_u64(w, self.p999_nanos);
    }

    /// Decode a reply body.
    pub fn decode(body: &[u8]) -> WireResult<StatsSummary> {
        let mut r = WireReader::new(body);
        let v = StatsSummary {
            sessions: r.u64()?,
            in_flight: r.u64()?,
            rejected: r.u64()?,
            total_admitted: r.u64()?,
            p50_nanos: decode_opt_u64(&mut r)?,
            p99_nanos: decode_opt_u64(&mut r)?,
            p999_nanos: decode_opt_u64(&mut r)?,
        };
        r.finish()?;
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Error taxonomy on the wire
// ---------------------------------------------------------------------

/// Encode the error body of a `STATUS_ERR` reply. Only the classes a
/// server produces are encodable losslessly: typed [`ServerError`]s,
/// the shutdown notice, and connection-survivable protocol complaints
/// (bad handle, oversized payload). Everything else a [`NetError`] can
/// hold is local to one endpoint and never crosses the wire; those
/// encode as their display string in the protocol class.
pub fn encode_reply_error(w: &mut WireWriter, e: &NetError) {
    match e {
        NetError::Server(se) => {
            w.u8(ERR_CLASS_SERVER);
            encode_server_error(w, se);
        }
        NetError::Shutdown => {
            w.u8(ERR_CLASS_SHUTDOWN);
        }
        other => {
            w.u8(ERR_CLASS_PROTOCOL);
            w.str_prefixed(&other.to_string());
        }
    }
}

/// Decode the error body of a `STATUS_ERR` reply.
pub fn decode_reply_error(body: &[u8]) -> WireResult<NetError> {
    let mut r = WireReader::new(body);
    let e = match r.u8()? {
        ERR_CLASS_SERVER => NetError::Server(decode_server_error(&mut r)?),
        ERR_CLASS_PROTOCOL => NetError::Protocol(r.str_prefixed()?),
        ERR_CLASS_SHUTDOWN => NetError::Shutdown,
        other => {
            return Err(WireError::Malformed(format!("bad error class {other}")));
        }
    };
    r.finish()?;
    Ok(e)
}

/// Encode a [`ServerError`] losslessly (tagged, exhaustive).
pub fn encode_server_error(w: &mut WireWriter, e: &ServerError) {
    match e {
        ServerError::Busy => {
            w.u8(0);
        }
        ServerError::Exclusive { name, by } => {
            w.u8(1).str_prefixed(name).u64(*by);
        }
        ServerError::Claimed { name, index, by } => {
            w.u8(2).str_prefixed(name).u32(*index).u64(*by);
        }
        ServerError::OutsidePartition {
            record,
            partition,
            start,
            end,
        } => {
            w.u8(3).u64(*record).u32(*partition).u64(*start).u64(*end);
        }
        ServerError::RangeNotLocked { lo, hi } => {
            w.u8(4).u64(*lo).u64(*hi);
        }
        ServerError::Degraded { device, state } => {
            w.u8(5).u64(*device as u64).u8(state.wire_tag());
        }
        ServerError::Core(e) => {
            w.u8(6);
            encode_core_error(w, e);
        }
    }
}

/// Decode a [`ServerError`] written by [`encode_server_error`].
pub fn decode_server_error(r: &mut WireReader<'_>) -> WireResult<ServerError> {
    Ok(match r.u8()? {
        0 => ServerError::Busy,
        1 => ServerError::Exclusive {
            name: r.str_prefixed()?,
            by: r.u64()?,
        },
        2 => ServerError::Claimed {
            name: r.str_prefixed()?,
            index: r.u32()?,
            by: r.u64()?,
        },
        3 => ServerError::OutsidePartition {
            record: r.u64()?,
            partition: r.u32()?,
            start: r.u64()?,
            end: r.u64()?,
        },
        4 => ServerError::RangeNotLocked {
            lo: r.u64()?,
            hi: r.u64()?,
        },
        5 => ServerError::Degraded {
            device: r.u64()? as usize,
            state: {
                let tag = r.u8()?;
                HealthState::from_wire_tag(tag)
                    .ok_or_else(|| WireError::Malformed(format!("bad health-state tag {tag}")))?
            },
        },
        6 => ServerError::Core(decode_core_error(r)?),
        other => {
            return Err(WireError::Malformed(format!(
                "bad server-error tag {other}"
            )));
        }
    })
}

fn encode_core_error(w: &mut WireWriter, e: &CoreError) {
    match e {
        CoreError::Fs(e) => {
            w.u8(0);
            encode_fs_error(w, e);
        }
        CoreError::WrongOrganization { expected, actual } => {
            w.u8(1).str_prefixed(expected).str_prefixed(&actual.tag());
        }
        CoreError::BadProcess { process, of } => {
            w.u8(2).u32(*process).u32(*of);
        }
        CoreError::BadTag(tag) => {
            w.u8(3).str_prefixed(tag);
        }
        CoreError::BadGeometry(msg) => {
            w.u8(4).str_prefixed(msg);
        }
    }
}

fn decode_core_error(r: &mut WireReader<'_>) -> WireResult<CoreError> {
    Ok(match r.u8()? {
        0 => CoreError::Fs(decode_fs_error(r)?),
        1 => {
            let expected = intern_expected(&r.str_prefixed()?);
            let tag = r.str_prefixed()?;
            let actual = Organization::from_tag(&tag)
                .ok_or_else(|| WireError::Malformed(format!("bad organization tag '{tag}'")))?;
            CoreError::WrongOrganization { expected, actual }
        }
        2 => CoreError::BadProcess {
            process: r.u32()?,
            of: r.u32()?,
        },
        3 => CoreError::BadTag(r.str_prefixed()?),
        4 => CoreError::BadGeometry(r.str_prefixed()?),
        other => {
            return Err(WireError::Malformed(format!("bad core-error tag {other}")));
        }
    })
}

fn encode_fs_error(w: &mut WireWriter, e: &FsError) {
    match e {
        FsError::Disk(e) => {
            w.u8(0);
            encode_disk_error(w, e);
        }
        FsError::NoSpace { device, requested } => {
            w.u8(1).u64(*device as u64).u64(*requested);
        }
        FsError::NotFound(name) => {
            w.u8(2).str_prefixed(name);
        }
        FsError::AlreadyExists(name) => {
            w.u8(3).str_prefixed(name);
        }
        FsError::BadSpec(msg) => {
            w.u8(4).str_prefixed(msg);
        }
        FsError::OutOfBounds { record, len } => {
            w.u8(5).u64(*record).u64(*len);
        }
        FsError::CapacityExceeded {
            requested,
            capacity,
        } => {
            w.u8(6).u64(*requested).u64(*capacity);
        }
        FsError::Meta(msg) => {
            w.u8(7).str_prefixed(msg);
        }
    }
}

fn decode_fs_error(r: &mut WireReader<'_>) -> WireResult<FsError> {
    Ok(match r.u8()? {
        0 => FsError::Disk(decode_disk_error(r)?),
        1 => FsError::NoSpace {
            device: r.u64()? as usize,
            requested: r.u64()?,
        },
        2 => FsError::NotFound(r.str_prefixed()?),
        3 => FsError::AlreadyExists(r.str_prefixed()?),
        4 => FsError::BadSpec(r.str_prefixed()?),
        5 => FsError::OutOfBounds {
            record: r.u64()?,
            len: r.u64()?,
        },
        6 => FsError::CapacityExceeded {
            requested: r.u64()?,
            capacity: r.u64()?,
        },
        7 => FsError::Meta(r.str_prefixed()?),
        other => {
            return Err(WireError::Malformed(format!("bad fs-error tag {other}")));
        }
    })
}

fn encode_disk_error(w: &mut WireWriter, e: &DiskError) {
    match e {
        DiskError::DeviceFailed { device } => {
            w.u8(0).str_prefixed(device);
        }
        DiskError::OutOfRange { block, capacity } => {
            w.u8(1).u64(*block).u64(*capacity);
        }
        DiskError::BadBufferSize { got, expected } => {
            w.u8(2).u64(*got as u64).u64(*expected as u64);
        }
        DiskError::Corruption { block } => {
            w.u8(3).u64(*block);
        }
        DiskError::Transient { device } => {
            w.u8(4).str_prefixed(device);
        }
        DiskError::Timeout { device } => {
            w.u8(5).str_prefixed(device);
        }
        DiskError::Io(msg) => {
            w.u8(6).str_prefixed(msg);
        }
    }
}

fn decode_disk_error(r: &mut WireReader<'_>) -> WireResult<DiskError> {
    Ok(match r.u8()? {
        0 => DiskError::DeviceFailed {
            device: r.str_prefixed()?,
        },
        1 => DiskError::OutOfRange {
            block: r.u64()?,
            capacity: r.u64()?,
        },
        2 => DiskError::BadBufferSize {
            got: r.u64()? as usize,
            expected: r.u64()? as usize,
        },
        3 => DiskError::Corruption { block: r.u64()? },
        4 => DiskError::Transient {
            device: r.str_prefixed()?,
        },
        5 => DiskError::Timeout {
            device: r.str_prefixed()?,
        },
        6 => DiskError::Io(r.str_prefixed()?),
        other => {
            return Err(WireError::Malformed(format!("bad disk-error tag {other}")));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let mut w = WireWriter::new();
        req.encode_payload(&mut w);
        let back = Request::decode(req.opcode(), w.bytes()).expect("decode");
        assert_eq!(back, req);
    }

    #[test]
    fn request_round_trips() {
        round_trip(Request::Ping);
        round_trip(Request::OpenPartition {
            name: "grid".into(),
            partition: 3,
        });
        round_trip(Request::SsWrite {
            handle: 9,
            data: Bytes::copy_from_slice(b"payload"),
        });
        round_trip(Request::DirWriteLocked {
            handle: 1,
            lock: 2,
            record: 3,
            data: Bytes::copy_from_slice(&[0u8; 64]),
        });
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(Request::decode(0xEE, &[]).is_err());
    }

    #[test]
    fn server_error_round_trips_exactly() {
        let samples = vec![
            ServerError::Busy,
            ServerError::Claimed {
                name: "grid".into(),
                index: 2,
                by: 77,
            },
            ServerError::Degraded {
                device: 3,
                state: HealthState::Rebuilding,
            },
            ServerError::Core(CoreError::WrongOrganization {
                expected: "SS",
                actual: Organization::PartitionedSeq { partitions: 8 },
            }),
            ServerError::Core(CoreError::Fs(FsError::Disk(DiskError::Timeout {
                device: "mem3".into(),
            }))),
        ];
        for e in samples {
            let mut w = WireWriter::new();
            encode_server_error(&mut w, &e);
            let mut r = WireReader::new(w.bytes());
            let back = decode_server_error(&mut r).expect("decode");
            r.finish().expect("no trailing bytes");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn opened_and_stats_round_trip() {
        let o = Opened {
            handle: 5,
            record_size: 128,
            records_per_block: 32,
            len_records: 4096,
            start: 1024,
            end: 2048,
        };
        let mut w = WireWriter::new();
        o.encode(&mut w);
        assert_eq!(Opened::decode(w.bytes()).expect("decode"), o);

        let s = StatsSummary {
            sessions: 9,
            in_flight: 2,
            rejected: 14,
            total_admitted: 7_700,
            p50_nanos: Some(1_000),
            p99_nanos: Some(9_000),
            p999_nanos: None,
        };
        let mut w = WireWriter::new();
        s.encode(&mut w);
        assert_eq!(StatsSummary::decode(w.bytes()).expect("decode"), s);
    }
}
