//! The network-layer error type. [`NetError`] is `Clone` on purpose:
//! when a connection dies, the client fans the same terminal error out
//! to every request still pending on it.

use std::fmt;

use pario_server::ServerError;

use crate::wire::WireError;

/// Errors surfaced by the network service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The server executed the request and it failed with a typed
    /// service error — decoded losslessly, so remote callers match on
    /// the same variants in-process callers do.
    Server(ServerError),
    /// The peer violated the protocol (malformed frame, unknown opcode,
    /// stale handle, trailing bytes). Frame-level violations close the
    /// connection; request-level ones (a bad handle id) fail only that
    /// request.
    Protocol(String),
    /// The peers speak different protocol versions.
    Handshake {
        /// Version this endpoint speaks.
        ours: u16,
        /// Version the peer announced.
        theirs: u16,
    },
    /// The connection died with requests still outstanding; those
    /// requests may or may not have executed on the server.
    ConnectionLost(String),
    /// An OS-level socket error (message form, so the error stays
    /// cloneable).
    Io(String),
    /// The server is shutting down; the request was **not** executed.
    /// Sent as a typed reply to requests still in the pipe when
    /// shutdown begins, so clients can distinguish an orderly drain
    /// (safe to retry elsewhere) from a torn connection.
    Shutdown,
    /// A payload exceeds the limit the handshake advertised.
    TooLarge {
        /// Offending payload length.
        len: usize,
        /// Advertised maximum.
        max: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Server(e) => write!(f, "{e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Handshake { ours, theirs } => {
                write!(
                    f,
                    "version mismatch: we speak v{ours}, peer speaks v{theirs}"
                )
            }
            NetError::Shutdown => write!(f, "server shutting down; request not executed"),
            NetError::ConnectionLost(msg) => write!(f, "connection lost: {msg}"),
            NetError::Io(msg) => write!(f, "socket error: {msg}"),
            NetError::TooLarge { len, max } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the advertised limit {max}"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<ServerError> for NetError {
    fn from(e: ServerError) -> NetError {
        NetError::Server(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        NetError::Protocol(e.to_string())
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e.to_string())
    }
}

/// Result alias for network operations.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_stable() {
        assert_eq!(
            NetError::Handshake { ours: 1, theirs: 2 }.to_string(),
            "version mismatch: we speak v1, peer speaks v2"
        );
        assert!(NetError::Server(ServerError::Busy)
            .to_string()
            .contains("busy"));
    }
}
