//! The network client: a [`NetClient`] mirrors the [`Session`] API of
//! `pario-server` over a socket, with **pipelined** requests under a
//! credit window.
//!
//! Three locks, ranked in DESIGN.md §8 and acquired strictly in this
//! order (rank ascends):
//!
//! * `credits` (net.credits, 3) — the flow-control window granted at
//!   handshake; `submit` blocks here when the window is exhausted.
//! * `replies` (net.replies, 5) — the pending-request map, request id →
//!   reply slot.
//! * `wire` (net.send, 7) — the send half of the socket plus its frame
//!   staging buffer; holds exactly one `write_all` per request.
//!
//! A dedicated reader thread dispatches reply frames by request id:
//! releases a credit, removes the slot, fills it, wakes the waiter.
//! Requests submitted back-to-back overlap their network round trips —
//! the server executes them in order, but the wire carries many at
//! once.
//!
//! [`Session`]: pario_server::Session

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::sync::Arc;

use bytes::Bytes;
use pario_check::{AtomicU64, Condvar, LockLevel, Mutex};
use std::sync::atomic::Ordering;

use crate::credits::CreditWindow;
use crate::error::{NetError, Result};
use crate::frame::{client_handshake, encode_frame, read_frame, Grant, FRAME_OVERHEAD};
use crate::proto::{decode_reply_error, Opened, Request, StatsSummary, STATUS_ERR, STATUS_OK};
use crate::sock::{self, Sock};
use crate::wire::{WireReader, WireWriter};

struct PendingMap {
    slots: HashMap<u64, Arc<ReplySlot>>,
    dead: Option<NetError>,
}

struct ReplySlot {
    cell: Mutex<Option<Result<Vec<u8>>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> ReplySlot {
        ReplySlot {
            cell: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

struct WireHalf {
    sock: Sock,
    frame: Vec<u8>,
}

struct ClientCore {
    credits: CreditWindow,
    replies: Mutex<PendingMap>,
    wire: Mutex<WireHalf>,
    next_id: AtomicU64,
    max_payload: usize,
}

/// One request in flight. Dropping it abandons the reply (the reader
/// thread still consumes and discards it); [`Pending::wait`] blocks for
/// it.
#[must_use = "a pending request resolves only through wait()"]
pub struct Pending {
    slot: Arc<ReplySlot>,
}

impl Pending {
    /// Block until the reply arrives; returns the raw OK body, or the
    /// decoded error.
    pub fn wait(self) -> Result<Vec<u8>> {
        let mut cell = self.slot.cell.lock();
        while cell.is_none() {
            self.slot.ready.wait(&mut cell);
        }
        // invariant: the loop above exits only once the slot is filled.
        cell.take().expect("slot filled")
    }
}

impl ClientCore {
    /// Acquire a credit, register a reply slot, and send the frame.
    /// This is the only path that touches the three ranked locks; they
    /// are taken in ascending rank order and never nested.
    fn submit(&self, req: &Request) -> Result<Pending> {
        let mut payload = WireWriter::new();
        req.encode_payload(&mut payload);
        if payload.bytes().len() > self.max_payload {
            return Err(NetError::TooLarge {
                len: payload.bytes().len(),
                max: self.max_payload,
            });
        }

        self.credits.acquire()?;

        let id = self.next_id.fetch_add(1, Ordering::Relaxed); // ordering: id allocation needs uniqueness, not ordering
        let slot = Arc::new(ReplySlot::new());
        {
            let mut map = self.replies.lock();
            if let Some(e) = map.dead.clone() {
                drop(map);
                // lock-order: released above
                self.credits.release();
                return Err(e);
            }
            map.slots.insert(id, Arc::clone(&slot));
        }

        let sent = {
            let mut wire = self.wire.lock();
            wire.frame.clear();
            // Move the staging buffer out so the borrow of `wire.frame`
            // and the write on `wire.sock` do not overlap.
            let mut frame = std::mem::take(&mut wire.frame);
            encode_frame(&mut frame, id, req.opcode(), payload.bytes());
            let r = wire.sock.write_all(&frame);
            wire.frame = frame;
            r
        };
        if let Err(e) = sent {
            // lock-order: released above
            self.credits.release();
            // lock-order: released above
            self.replies.lock().slots.remove(&id);
            return Err(NetError::Io(e.to_string()));
        }
        Ok(Pending { slot })
    }

    fn call(&self, req: &Request) -> Result<Vec<u8>> {
        self.submit(req)?.wait()
    }
}

/// The reader thread: dispatch one reply frame.
fn dispatch(core: &ClientCore, request_id: u64, code: u8, body: Vec<u8>) {
    core.credits.release();
    let slot = core.replies.lock().slots.remove(&request_id);
    let Some(slot) = slot else {
        return; // an abandoned or already-failed request
    };
    let result = match code {
        STATUS_OK => Ok(body),
        STATUS_ERR => Err(match decode_reply_error(&body) {
            Ok(e) => e,
            Err(wire) => wire.into(),
        }),
        other => Err(NetError::Protocol(format!("bad reply status {other}"))),
    };
    *slot.cell.lock() = Some(result);
    slot.ready.notify_all();
}

/// The reader thread: the connection died — fail every waiter.
fn fail_all(core: &ClientCore, err: NetError) {
    core.credits.kill(err.clone());
    let drained: Vec<Arc<ReplySlot>> = {
        let mut map = core.replies.lock();
        map.dead = Some(err.clone());
        map.slots.drain().map(|(_, s)| s).collect()
    };
    for slot in drained {
        *slot.cell.lock() = Some(Err(err.clone()));
        slot.ready.notify_all();
    }
}

/// A connection to a [`NetServer`](crate::NetServer), exposing the
/// session surface remotely. Open handles borrow the client's
/// connection; the client itself is cheap to share behind an `Arc`.
pub struct NetClient {
    core: Arc<ClientCore>,
    grant: Grant,
    ctl: Sock,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl NetClient {
    /// Connect over TCP (e.g. `"127.0.0.1:9630"`).
    pub fn connect_tcp(addr: &str) -> Result<NetClient> {
        NetClient::connect(sock::connect_tcp(addr)?)
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_unix(path: &std::path::Path) -> Result<NetClient> {
        NetClient::connect(sock::connect_unix(path)?)
    }

    fn connect(mut s: Sock) -> Result<NetClient> {
        let grant = client_handshake(&mut s)?;
        let read_half = s.try_clone()?;
        let ctl = s.try_clone()?;
        let core = Arc::new(ClientCore {
            credits: CreditWindow::new(grant.credits),
            replies: Mutex::new_named(
                PendingMap {
                    slots: HashMap::new(),
                    dead: None,
                },
                LockLevel::NetReplies,
            ),
            wire: Mutex::new_named(
                WireHalf {
                    sock: s,
                    frame: Vec::new(),
                },
                LockLevel::NetSend,
            ),
            next_id: AtomicU64::new(1),
            max_payload: grant.max_payload as usize,
        });
        let reader_core = Arc::clone(&core);
        let max_frame = grant.max_payload as usize + FRAME_OVERHEAD + 64;
        let reader = std::thread::Builder::new()
            .name("pario-net-client-recv".to_string())
            .spawn(move || reader_loop(reader_core, read_half, max_frame))
            .map_err(|e| NetError::Io(format!("spawn reader: {e}")))?;
        Ok(NetClient {
            core,
            grant,
            ctl,
            reader: Some(reader),
        })
    }

    /// The flow-control grant the server issued at handshake.
    pub fn grant(&self) -> Grant {
        self.grant
    }

    /// Round-trip liveness probe.
    pub fn ping(&self) -> Result<()> {
        self.core.call(&Request::Ping).map(|_| ())
    }

    /// The server's statistics snapshot, latency percentiles included.
    pub fn stats(&self) -> Result<StatsSummary> {
        let body = self.core.call(&Request::Stats)?;
        Ok(StatsSummary::decode(&body)?)
    }

    fn open(&self, req: Request) -> Result<(Arc<ClientCore>, Opened)> {
        let body = self.core.call(&req)?;
        Ok((Arc::clone(&self.core), Opened::decode(&body)?))
    }

    /// Open a type-S file exclusively (see `Session::open_sequential`).
    pub fn open_sequential(&self, name: &str) -> Result<RemoteSeq> {
        let (core, opened) = self.open(Request::OpenSeq { name: name.into() })?;
        Ok(RemoteSeq {
            h: RemoteHandle { core, opened },
        })
    }

    /// Open an SS file; the record cursor is shared server-wide, so
    /// records are delivered exactly once across every client and
    /// in-process session (see `Session::open_self_sched`).
    pub fn open_self_sched(&self, name: &str) -> Result<RemoteSs> {
        let (core, opened) = self.open(Request::OpenSs { name: name.into() })?;
        Ok(RemoteSs {
            h: RemoteHandle { core, opened },
        })
    }

    /// The big-lock SS baseline (see `Session::open_self_sched_naive`).
    pub fn open_self_sched_naive(&self, name: &str) -> Result<RemoteSs> {
        let (core, opened) = self.open(Request::OpenSsNaive { name: name.into() })?;
        Ok(RemoteSs {
            h: RemoteHandle { core, opened },
        })
    }

    /// Claim partition `p` of a PS/PDA file; refused with
    /// `ServerError::Claimed` while any other client holds it.
    pub fn open_partition(&self, name: &str, p: u32) -> Result<RemotePartition> {
        let (core, opened) = self.open(Request::OpenPartition {
            name: name.into(),
            partition: p,
        })?;
        Ok(RemotePartition {
            h: RemoteHandle { core, opened },
            partition: p,
        })
    }

    /// Claim interleave slot `p` of an IS file.
    pub fn open_interleaved(&self, name: &str, p: u32) -> Result<RemoteInterleaved> {
        let (core, opened) = self.open(Request::OpenInterleaved {
            name: name.into(),
            process: p,
        })?;
        Ok(RemoteInterleaved {
            h: RemoteHandle { core, opened },
        })
    }

    /// Open a GDA file for direct access with byte-range locking.
    pub fn open_direct(&self, name: &str) -> Result<RemoteDirect> {
        let (core, opened) = self.open(Request::OpenDirect { name: name.into() })?;
        Ok(RemoteDirect {
            h: RemoteHandle { core, opened },
        })
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.ctl.shutdown();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

fn reader_loop(core: Arc<ClientCore>, read_half: Sock, max_frame: usize) {
    let mut r = BufReader::with_capacity(64 * 1024, read_half);
    loop {
        match read_frame(&mut r, max_frame) {
            Ok(Some(f)) => dispatch(&core, f.request_id, f.code, f.body),
            Ok(None) => {
                fail_all(
                    &core,
                    NetError::ConnectionLost("server closed the connection".to_string()),
                );
                return;
            }
            Err(e) => {
                fail_all(&core, e);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Remote handles
// ---------------------------------------------------------------------

struct RemoteHandle {
    core: Arc<ClientCore>,
    opened: Opened,
}

impl std::fmt::Debug for RemoteHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteHandle")
            .field("opened", &self.opened)
            .finish_non_exhaustive()
    }
}

impl RemoteHandle {
    fn id(&self) -> u64 {
        self.opened.handle
    }
}

impl Drop for RemoteHandle {
    fn drop(&mut self) {
        // Fire-and-forget close; the reader thread consumes the reply.
        // On a dead connection the server-side drop already happened.
        let _ = self.core.submit(&Request::Close { handle: self.id() });
    }
}

/// Decode a `u8` flag + record body into `out`.
fn take_flagged(body: &[u8], out: &mut [u8]) -> Result<bool> {
    let mut r = WireReader::new(body);
    match r.u8()? {
        0 => {
            r.finish()?;
            Ok(false)
        }
        1 => {
            copy_record(r.rest(), out)?;
            Ok(true)
        }
        other => Err(NetError::Protocol(format!("bad reply flag {other}"))),
    }
}

fn copy_record(rec: &[u8], out: &mut [u8]) -> Result<()> {
    if rec.len() != out.len() {
        return Err(NetError::Protocol(format!(
            "reply carries {} record bytes, caller expected {}",
            rec.len(),
            out.len()
        )));
    }
    out.copy_from_slice(rec);
    Ok(())
}

fn take_u64(body: &[u8]) -> Result<u64> {
    let mut r = WireReader::new(body);
    let v = r.u64()?;
    r.finish()?;
    Ok(v)
}

/// Exclusive sequential access to a remote type-S file.
#[derive(Debug)]
pub struct RemoteSeq {
    h: RemoteHandle,
}

impl RemoteSeq {
    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.h.opened.record_size as usize
    }

    /// File length in records at open time.
    pub fn len_records(&self) -> u64 {
        self.h.opened.len_records
    }

    /// Read the next record; `false` at end of file.
    pub fn read_next(&self, out: &mut [u8]) -> Result<bool> {
        let body = self.h.core.call(&Request::SeqRead {
            handle: self.h.id(),
        })?;
        take_flagged(&body, out)
    }

    /// Append the next record.
    pub fn write_next(&self, data: &[u8]) -> Result<()> {
        self.h
            .core
            .call(&Request::SeqWrite {
                handle: self.h.id(),
                data: Bytes::copy_from_slice(data),
            })
            .map(|_| ())
    }

    /// Flush buffered appends and publish the length.
    pub fn finish(&self) -> Result<u64> {
        take_u64(&self.h.core.call(&Request::SeqFinish {
            handle: self.h.id(),
        })?)
    }

    /// Rewind the read cursor.
    pub fn rewind(&self) -> Result<()> {
        self.h
            .core
            .call(&Request::SeqRewind {
                handle: self.h.id(),
            })
            .map(|_| ())
    }
}

/// A claimed read from a remote SS cursor (see [`RemoteSs::submit_read_next`]).
pub struct SsReadTicket {
    pending: Pending,
}

/// A submitted SS write (see [`RemoteSs::submit_write_next`]).
pub struct SsWriteTicket {
    pending: Pending,
}

/// A self-scheduled client over the wire: reads claim the globally next
/// record across all sessions — local or remote — of the file.
#[derive(Debug)]
pub struct RemoteSs {
    h: RemoteHandle,
}

impl RemoteSs {
    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.h.opened.record_size as usize
    }

    /// File length in records at open time.
    pub fn len_records(&self) -> u64 {
        self.h.opened.len_records
    }

    /// Claim and read the next unclaimed record; the index served, or
    /// `None` once the file is drained.
    pub fn read_next(&self, out: &mut [u8]) -> Result<Option<u64>> {
        let t = self.submit_read_next()?;
        self.finish_read_next(t, out)
    }

    /// Pipelined read: send the claim without waiting. Issue several,
    /// then [`finish_read_next`](RemoteSs::finish_read_next) them in
    /// order — the round trips overlap, which is where remote SS
    /// throughput comes from.
    pub fn submit_read_next(&self) -> Result<SsReadTicket> {
        Ok(SsReadTicket {
            pending: self.h.core.submit(&Request::SsRead {
                handle: self.h.id(),
            })?,
        })
    }

    /// Resolve a pipelined read into `out`.
    pub fn finish_read_next(&self, t: SsReadTicket, out: &mut [u8]) -> Result<Option<u64>> {
        let body = t.pending.wait()?;
        let mut r = WireReader::new(&body);
        match r.u8()? {
            0 => {
                r.finish()?;
                Ok(None)
            }
            1 => {
                let idx = r.u64()?;
                copy_record(r.rest(), out)?;
                Ok(Some(idx))
            }
            other => Err(NetError::Protocol(format!("bad reply flag {other}"))),
        }
    }

    /// Claim the next free slot and write `data` there; the slot index.
    pub fn write_next(&self, data: &[u8]) -> Result<u64> {
        let t = self.submit_write_next(Bytes::copy_from_slice(data))?;
        self.finish_write_next(t)
    }

    /// Pipelined write; `data` is [`Bytes`], so replaying one payload
    /// across thousands of submissions clones a reference, not bytes.
    pub fn submit_write_next(&self, data: Bytes) -> Result<SsWriteTicket> {
        Ok(SsWriteTicket {
            pending: self.h.core.submit(&Request::SsWrite {
                handle: self.h.id(),
                data,
            })?,
        })
    }

    /// Resolve a pipelined write into its slot index.
    pub fn finish_write_next(&self, t: SsWriteTicket) -> Result<u64> {
        take_u64(&t.pending.wait()?)
    }

    /// Publish the final length once all writers are done.
    pub fn finish_writes(&self) -> Result<u64> {
        take_u64(&self.h.core.call(&Request::SsFinish {
            handle: self.h.id(),
        })?)
    }

    /// Records claimed so far across all sessions of the file.
    pub fn claimed(&self) -> Result<u64> {
        take_u64(&self.h.core.call(&Request::SsClaimed {
            handle: self.h.id(),
        })?)
    }
}

/// A claimed partition of a remote PS/PDA file; addresses records by
/// their global index, refused outside the claimed range.
#[derive(Debug)]
pub struct RemotePartition {
    h: RemoteHandle,
    partition: u32,
}

impl RemotePartition {
    /// The claimed partition index.
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// The global record range `[start, end)` this client may touch.
    pub fn range(&self) -> (u64, u64) {
        (self.h.opened.start, self.h.opened.end)
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.h.opened.record_size as usize
    }

    /// Read global record `r` (must lie inside the partition).
    pub fn read_record(&self, r: u64, out: &mut [u8]) -> Result<()> {
        let body = self.h.core.call(&Request::PartRead {
            handle: self.h.id(),
            record: r,
        })?;
        copy_record(&body, out)
    }

    /// Write global record `r` (must lie inside the partition).
    pub fn write_record(&self, r: u64, data: &[u8]) -> Result<()> {
        self.h
            .core
            .call(&Request::PartWrite {
                handle: self.h.id(),
                record: r,
                data: Bytes::copy_from_slice(data),
            })
            .map(|_| ())
    }

    /// Read the next record of the partition; `false` at its end.
    pub fn read_next(&self, out: &mut [u8]) -> Result<bool> {
        let body = self.h.core.call(&Request::PartReadNext {
            handle: self.h.id(),
        })?;
        take_flagged(&body, out)
    }

    /// Append at the partition cursor.
    pub fn write_next(&self, data: &[u8]) -> Result<()> {
        self.h
            .core
            .call(&Request::PartWriteNext {
                handle: self.h.id(),
                data: Bytes::copy_from_slice(data),
            })
            .map(|_| ())
    }

    /// Rewind the partition cursor.
    pub fn rewind(&self) -> Result<()> {
        self.h
            .core
            .call(&Request::PartRewind {
                handle: self.h.id(),
            })
            .map(|_| ())
    }
}

/// A claimed interleave slot of a remote IS file.
#[derive(Debug)]
pub struct RemoteInterleaved {
    h: RemoteHandle,
}

impl RemoteInterleaved {
    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.h.opened.record_size as usize
    }

    /// Bytes in one file block (for [`read_next_block`](Self::read_next_block)).
    pub fn block_bytes(&self) -> usize {
        (self.h.opened.record_size * self.h.opened.records_per_block) as usize
    }

    /// Read this slot's next record; `false` when the stride passes the
    /// end of the file.
    pub fn read_next(&self, out: &mut [u8]) -> Result<bool> {
        let body = self.h.core.call(&Request::IlvReadNext {
            handle: self.h.id(),
        })?;
        take_flagged(&body, out)
    }

    /// Write this slot's next record; the global record index written.
    pub fn write_next(&self, data: &[u8]) -> Result<u64> {
        take_u64(&self.h.core.call(&Request::IlvWriteNext {
            handle: self.h.id(),
            data: Bytes::copy_from_slice(data),
        })?)
    }

    /// Read this slot's next whole block into `out` (one block); the
    /// block index, or `None` past the end.
    pub fn read_next_block(&self, out: &mut [u8]) -> Result<Option<u64>> {
        let body = self.h.core.call(&Request::IlvReadBlock {
            handle: self.h.id(),
        })?;
        let mut r = WireReader::new(&body);
        match r.u8()? {
            0 => {
                r.finish()?;
                Ok(None)
            }
            1 => {
                let b = r.u64()?;
                copy_record(r.rest(), out)?;
                Ok(Some(b))
            }
            other => Err(NetError::Protocol(format!("bad reply flag {other}"))),
        }
    }

    /// Write this slot's next whole block; the block index written.
    pub fn write_next_block(&self, data: &[u8]) -> Result<u64> {
        take_u64(&self.h.core.call(&Request::IlvWriteBlock {
            handle: self.h.id(),
            data: Bytes::copy_from_slice(data),
        })?)
    }
}

/// A held remote byte-range lock (see [`RemoteDirect::lock_range`]).
/// Release it with [`RemoteDirect::unlock`] — that flushes the span on
/// the server before the release (durable-at-unlock). If it is simply
/// dropped, the server releases the range without the flush when the
/// handle or connection closes, same as dropping an in-process
/// `LockedRange`.
#[must_use = "locks must be released with RemoteDirect::unlock"]
#[derive(Debug)]
pub struct RemoteLock {
    id: u64,
}

/// Direct (GDA) access to a remote file: any record, any order, with
/// explicit byte-range locks for cross-record atomicity.
#[derive(Debug)]
pub struct RemoteDirect {
    h: RemoteHandle,
}

impl RemoteDirect {
    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.h.opened.record_size as usize
    }

    /// Current file length in records (a server round trip).
    pub fn len_records(&self) -> Result<u64> {
        take_u64(&self.h.core.call(&Request::DirLen {
            handle: self.h.id(),
        })?)
    }

    /// Read record `r`.
    pub fn read_record(&self, r: u64, out: &mut [u8]) -> Result<()> {
        let body = self.h.core.call(&Request::DirRead {
            handle: self.h.id(),
            record: r,
        })?;
        copy_record(&body, out)
    }

    /// Write record `r` (takes the record's byte-range lock server-side
    /// for the duration of the write).
    pub fn write_record(&self, r: u64, data: &[u8]) -> Result<()> {
        self.h
            .core
            .call(&Request::DirWrite {
                handle: self.h.id(),
                record: r,
                data: Bytes::copy_from_slice(data),
            })
            .map(|_| ())
    }

    /// Pipelined write: send without waiting.
    pub fn submit_write(&self, r: u64, data: Bytes) -> Result<Pending> {
        self.h.core.submit(&Request::DirWrite {
            handle: self.h.id(),
            record: r,
            data,
        })
    }

    /// Lock records `[r_lo, r_hi)` exclusively across every client of
    /// the file, local or remote. Writes under the lock go through
    /// [`write_record_locked`](Self::write_record_locked); release with
    /// [`unlock`](Self::unlock).
    pub fn lock_range(&self, r_lo: u64, r_hi: u64) -> Result<RemoteLock> {
        let body = self.h.core.call(&Request::DirLock {
            handle: self.h.id(),
            r_lo,
            r_hi,
        })?;
        Ok(RemoteLock {
            id: take_u64(&body)?,
        })
    }

    /// Write record `r` under a held lock; refused with
    /// `ServerError::RangeNotLocked` if `r` lies outside it.
    pub fn write_record_locked(&self, lock: &RemoteLock, r: u64, data: &[u8]) -> Result<()> {
        self.h
            .core
            .call(&Request::DirWriteLocked {
                handle: self.h.id(),
                lock: lock.id,
                record: r,
                data: Bytes::copy_from_slice(data),
            })
            .map(|_| ())
    }

    /// Flush the locked span to the devices, then release the lock: a
    /// reader that observes the release observes the data (the paper's
    /// durable-at-unlock contract for GDA files).
    pub fn unlock(&self, lock: RemoteLock) -> Result<()> {
        self.h
            .core
            .call(&Request::DirUnlock {
                handle: self.h.id(),
                lock: lock.id,
            })
            .map(|_| ())
    }

    /// Locked read-modify-write of record `r`: lock, read, apply `f`
    /// locally, write back, flush, unlock.
    pub fn update(&self, r: u64, f: impl FnOnce(&mut [u8])) -> Result<()> {
        let lock = self.lock_range(r, r + 1)?;
        let mut rec = vec![0u8; self.record_size()];
        match self.read_record(r, &mut rec).and_then(|()| {
            f(&mut rec);
            self.write_record_locked(&lock, r, &rec)
        }) {
            Ok(()) => self.unlock(lock),
            Err(e) => {
                // Best-effort release; the read-modify-write error wins.
                let _ = self.unlock(lock);
                Err(e)
            }
        }
    }
}
