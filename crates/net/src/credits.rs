//! The client-side flow-control window: a counting semaphore over the
//! credits granted at handshake, with a kill switch for connection
//! death.
//!
//! Extracted from the client so the protocol is model-checkable on its
//! own: `pario-check` drives [`CreditWindow`] directly (no sockets, no
//! reader thread) and proves with the happens-before detector that a
//! released credit *synchronizes* — work done before [`release`]
//! happens-before the [`acquire`] that consumes the credit. The mutex
//! ranks at `net.credits` (3), the bottom of the client's lock order.
//!
//! [`release`]: CreditWindow::release
//! [`acquire`]: CreditWindow::acquire

use pario_check::{Condvar, LockLevel, Mutex};

use crate::error::{NetError, Result};

struct Credits {
    avail: u32,
    dead: Option<NetError>,
}

/// A bounded window of request credits shared by submitters and the
/// reply-dispatching reader thread.
pub struct CreditWindow {
    m: Mutex<Credits>,
    cv: Condvar,
}

impl CreditWindow {
    /// A window holding `initial` credits.
    pub fn new(initial: u32) -> CreditWindow {
        CreditWindow {
            m: Mutex::new_named(
                Credits {
                    avail: initial,
                    dead: None,
                },
                LockLevel::NetCredits,
            ),
            cv: Condvar::new(),
        }
    }

    /// Take one credit, blocking while the window is exhausted. Fails
    /// once the window is [`kill`](CreditWindow::kill)ed — including
    /// for waiters already parked.
    pub fn acquire(&self) -> Result<()> {
        let mut credits = self.m.lock();
        loop {
            if let Some(e) = &credits.dead {
                return Err(e.clone());
            }
            if credits.avail > 0 {
                credits.avail -= 1;
                return Ok(());
            }
            self.cv.wait(&mut credits);
        }
    }

    /// Return one credit and wake one parked submitter.
    pub fn release(&self) {
        let mut credits = self.m.lock();
        credits.avail += 1;
        self.cv.notify_one();
    }

    /// The connection died: fail every parked and future acquirer.
    pub fn kill(&self, err: NetError) {
        let mut credits = self.m.lock();
        credits.dead = Some(err);
        self.cv.notify_all();
    }

    /// Credits currently available (diagnostic).
    pub fn available(&self) -> u32 {
        self.m.lock().avail
    }
}
