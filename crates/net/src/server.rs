//! The network server: listeners, per-connection threads, and the
//! dispatch from decoded [`Request`]s onto a [`pario_server::Session`].
//!
//! Each accepted connection gets its **own** session (so claims and
//! exclusive holds release when the connection dies, exactly as they do
//! when an in-process client drops) and two threads:
//!
//! * a **reader** that parses frames and executes requests
//!   *sequentially* — session semantics are preserved per connection,
//!   and pipelining hides the network round trip because the next
//!   request is already parsed while the reply is in flight;
//! * a **writer** that drains a channel of outgoing replies. Read
//!   replies travel as a small header plus a [`PoolBuf`] staged from a
//!   per-connection [`BufferPool`]; the writer sends the pool frame's
//!   bytes straight into the socket (no per-reply copy), and the pool's
//!   fixed capacity bounds how many read replies can be staged at once —
//!   the server-side half of flow control. The client-side half is the
//!   credit window granted at handshake.
//!
//! Backpressure composes end to end: a slow client blocks its writer,
//! which drains the pool, which parks the reader in `acquire`, which
//! stops consuming frames — and the admission queue
//! ([`pario_server::ServerStats`] remains the observability story) never
//! sees more than the configured in-flight load.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;

use pario_buffer::{BufferPool, PoolBuf};
use pario_check::{AtomicBool, AtomicU64, Mutex};
use pario_server::{
    DirectClient, InterleavedClient, LockedRange, PartitionClient, SeqClient, Server, Session,
    SsClient,
};
use std::sync::atomic::Ordering;

use crate::error::{NetError, Result};
use crate::frame::{
    encode_frame, encode_frame_header, read_frame, server_handshake, Grant, FRAME_OVERHEAD,
};
use crate::proto::{Opened, Request, StatsSummary, STATUS_ERR, STATUS_OK};
use crate::sock::Sock;
use crate::wire::WireWriter;

/// Tuning for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Requests each connection may have outstanding (the credit window
    /// granted at handshake, and the connection's staging-pool size).
    pub credits: u32,
    /// Largest request payload accepted, bytes.
    pub max_payload: usize,
    /// Staging buffer size, bytes. Reads up to this size take the
    /// zero-copy pool path; larger ones fall back to a heap buffer.
    pub frame_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            credits: 32,
            max_payload: 1 << 20,
            frame_bytes: 64 * 1024,
        }
    }
}

enum Endpoint {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

struct NetInner {
    server: Server,
    cfg: NetConfig,
    stop: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
    socks: Mutex<Vec<Sock>>,
    endpoint: Endpoint,
}

/// A listening network front end over a [`Server`].
pub struct NetServer {
    inner: Arc<NetInner>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Bind a TCP listener (use port 0 for an ephemeral port, then
    /// [`local_addr`](NetServer::local_addr)).
    pub fn bind_tcp(addr: &str, server: Server, cfg: NetConfig) -> Result<NetServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| NetError::Io(format!("bind {addr}: {e}")))?;
        let local = listener.local_addr()?;
        NetServer::start(server, cfg, Endpoint::Tcp(local), Listener::Tcp(listener))
    }

    /// Bind a Unix-domain listener at `path` (removed again when the
    /// server shuts down).
    pub fn bind_unix(path: &std::path::Path, server: Server, cfg: NetConfig) -> Result<NetServer> {
        let listener = UnixListener::bind(path)
            .map_err(|e| NetError::Io(format!("bind {}: {e}", path.display())))?;
        NetServer::start(
            server,
            cfg,
            Endpoint::Unix(path.to_path_buf()),
            Listener::Unix(listener),
        )
    }

    fn start(
        server: Server,
        cfg: NetConfig,
        endpoint: Endpoint,
        listener: Listener,
    ) -> Result<NetServer> {
        let inner = Arc::new(NetInner {
            server,
            cfg,
            stop: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
            socks: Mutex::new(Vec::new()),
            endpoint,
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("pario-net-accept".to_string())
            .spawn(move || accept_loop(accept_inner, listener))
            .map_err(|e| NetError::Io(format!("spawn acceptor: {e}")))?;
        Ok(NetServer {
            inner,
            accept: Some(accept),
        })
    }

    /// The bound TCP address, if this is a TCP server.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self.inner.endpoint {
            Endpoint::Tcp(a) => Some(a),
            Endpoint::Unix(_) => None,
        }
    }

    /// The flow-control grant connections receive at handshake.
    pub fn grant(&self) -> Grant {
        Grant {
            credits: self.inner.cfg.credits,
            max_payload: self.inner.cfg.max_payload as u32,
        }
    }

    /// Stop accepting, **drain** every live connection, and join all
    /// server-side threads. Idempotent.
    ///
    /// The drain is graceful: only the *read* half of each live socket
    /// is closed, so parked readers wake with EOF while writers keep
    /// the send half open to flush replies already in flight. Requests
    /// still in the pipe when the stop flag rises are answered with a
    /// typed [`NetError::Shutdown`] reply — they were **not** executed —
    /// instead of a torn connection. A peer that has stopped reading
    /// could wedge that drain, so a watchdog falls back to the old hard
    /// close of every socket after a grace period.
    pub fn shutdown(&mut self) {
        if self.inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close only the receive half: readers wake, writers drain.
        for s in self.inner.socks.lock().iter() {
            s.shutdown_read();
        }
        // A throwaway connection unblocks the acceptor.
        match &self.inner.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The acceptor is gone, so the sock list is complete now; a
        // connection that registered after the first pass gets its
        // read half closed here.
        for s in self.inner.socks.lock().iter() {
            s.shutdown_read();
        }
        // Liveness net for the joins below: a peer that has stopped
        // reading blocks its writer mid-flush indefinitely. If the
        // drain outlives the grace period, hard-close everything.
        let watchdog_inner = Arc::clone(&self.inner);
        let (drained_tx, drained_rx) = mpsc::channel::<()>();
        let watchdog = std::thread::Builder::new()
            .name("pario-net-shutdown-watchdog".to_string())
            .spawn(move || {
                if drained_rx
                    .recv_timeout(std::time::Duration::from_secs(5))
                    .is_err()
                {
                    for s in watchdog_inner.socks.lock().iter() {
                        s.shutdown();
                    }
                }
            });
        let conns: Vec<_> = self.inner.conns.lock().drain(..).collect();
        for h in conns {
            let _ = h.join();
        }
        let _ = drained_tx.send(());
        if let Ok(h) = watchdog {
            let _ = h.join();
        }
        self.inner.socks.lock().clear();
        if let Endpoint::Unix(path) = &self.inner.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Sock> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Sock::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Sock::Unix(s))
            }
        }
    }
}

fn accept_loop(inner: Arc<NetInner>, listener: Listener) {
    loop {
        let sock = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.stop.load(Ordering::SeqCst) {
            return; // the shutdown wake-up connection
        }
        let id = inner.next_conn.fetch_add(1, Ordering::Relaxed); // ordering: id allocation needs uniqueness, not ordering
        let conn_inner = Arc::clone(&inner);
        let spawned = std::thread::Builder::new()
            .name(format!("pario-net-conn-{id}"))
            .spawn(move || {
                run_connection(conn_inner, sock, id);
            });
        if let Ok(h) = spawned {
            inner.conns.lock().push(h);
        }
    }
}

/// Outgoing messages from a connection's reader to its writer.
enum Outgoing {
    /// A complete small frame.
    Frame(Vec<u8>),
    /// A frame header (+ body prefix) followed by `len` bytes served
    /// straight from a staged pool buffer.
    Split {
        head: Vec<u8>,
        buf: PoolBuf,
        len: usize,
    },
}

fn run_connection(inner: Arc<NetInner>, mut sock: Sock, id: u64) {
    if server_handshake(
        &mut sock,
        Grant {
            credits: inner.cfg.credits,
            max_payload: inner.cfg.max_payload as u32,
        },
    )
    .is_err()
    {
        return; // fail closed: bad preamble or version mismatch
    }
    let Ok(write_sock) = sock.try_clone() else {
        return;
    };
    let Ok(ctl_sock) = sock.try_clone() else {
        return;
    };
    inner.socks.lock().push(match sock.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });

    let (tx, rx) = mpsc::channel::<Outgoing>();
    let writer = std::thread::Builder::new()
        .name(format!("pario-net-send-{id}"))
        .spawn(move || writer_loop(write_sock, rx));
    let Ok(writer) = writer else {
        return;
    };

    let mut conn = Conn {
        server: inner.server.clone(),
        session: inner.server.connect(),
        pool: BufferPool::new(inner.cfg.credits as usize, inner.cfg.frame_bytes),
        frame_bytes: inner.cfg.frame_bytes,
        handles: HashMap::new(),
        next_handle: 1,
    };
    let max_frame = inner.cfg.max_payload + FRAME_OVERHEAD + 64;
    let mut reader = BufReader::with_capacity(64 * 1024, sock);

    loop {
        let frame = match read_frame(&mut reader, max_frame) {
            Ok(Some(f)) => f,
            // Clean EOF, connection loss, or a frame-level protocol
            // violation: all tear down this connection only. Under a
            // server shutdown the EOF comes from the closed read half
            // once the pipelined backlog below has drained.
            Ok(None) | Err(_) => break,
        };
        if inner.stop.load(Ordering::SeqCst) {
            // Server-wide shutdown: this request was *not* executed.
            // Keep draining the pipeline and answer every frame with
            // the typed notice — the writer flushes them all before
            // the socket closes, so no client is left mid-reply.
            if !send_reply(&tx, frame.request_id, Err(NetError::Shutdown)) {
                break;
            }
            continue;
        }
        let reply = match Request::decode(frame.code, &frame.body) {
            Ok(req) => conn.execute(req),
            Err(e) => {
                // A malformed payload under a known-length frame: tell
                // the client which request died, then fail closed.
                let mut body = WireWriter::new();
                crate::proto::encode_reply_error(&mut body, &e.into());
                let mut f = Vec::new();
                encode_frame(&mut f, frame.request_id, STATUS_ERR, body.bytes());
                let _ = tx.send(Outgoing::Frame(f));
                break;
            }
        };
        if !send_reply(&tx, frame.request_id, reply) {
            break; // writer is gone
        }
    }

    // Dropping the handle table releases exclusive holds, partition and
    // slot claims, and any GDA range locks this connection still owns.
    drop(conn);
    // Disconnect the channel and let the writer drain: any final error
    // frame — including the typed shutdown notices — must reach the
    // socket *before* the connection is shut down (the writer closes
    // the socket itself once it has flushed). A stalled writer under a
    // server-wide shutdown is unwedged by the shutdown watchdog's hard
    // close after the grace period.
    drop(tx);
    let _ = writer.join();
    ctl_sock.shutdown();
}

fn send_reply(tx: &mpsc::Sender<Outgoing>, request_id: u64, reply: Result<Reply>) -> bool {
    let msg = match reply {
        Ok(Reply::Empty) => {
            let mut f = Vec::new();
            encode_frame(&mut f, request_id, STATUS_OK, &[]);
            Outgoing::Frame(f)
        }
        Ok(Reply::U64(v)) => {
            let mut f = Vec::new();
            encode_frame(&mut f, request_id, STATUS_OK, &v.to_le_bytes());
            Outgoing::Frame(f)
        }
        Ok(Reply::Body(body)) => {
            let mut f = Vec::new();
            encode_frame(&mut f, request_id, STATUS_OK, &body);
            Outgoing::Frame(f)
        }
        Ok(Reply::Split { prefix, buf, len }) => {
            let mut head = Vec::with_capacity(4 + FRAME_OVERHEAD + prefix.len());
            encode_frame_header(&mut head, request_id, STATUS_OK, &prefix, len);
            Outgoing::Split { head, buf, len }
        }
        Err(e) => {
            let mut body = WireWriter::new();
            crate::proto::encode_reply_error(&mut body, &e);
            let mut f = Vec::new();
            encode_frame(&mut f, request_id, STATUS_ERR, body.bytes());
            Outgoing::Frame(f)
        }
    };
    tx.send(msg).is_ok()
}

/// The writer half: drain the channel into the socket. The `BufWriter`
/// capacity is deliberately *small* — it batches the little reply
/// headers, while any staged record payload (≥ its capacity) bypasses
/// the buffer and is written to the socket directly from the pool
/// frame: the zero-copy path.
fn writer_loop(sock: Sock, rx: mpsc::Receiver<Outgoing>) {
    let ctl = sock.try_clone();
    let mut w = BufWriter::with_capacity(512, sock);
    'outer: while let Ok(mut msg) = rx.recv() {
        loop {
            if write_outgoing(&mut w, msg).is_err() {
                break 'outer;
            }
            match rx.try_recv() {
                Ok(m) => msg = m,
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => break 'outer,
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
    let _ = w.flush();
    // Wake the reader (it may be parked in a blocking read) so the
    // connection tears down instead of leaking a half-dead thread.
    if let Ok(c) = ctl {
        c.shutdown();
    }
}

fn write_outgoing(w: &mut BufWriter<Sock>, msg: Outgoing) -> std::io::Result<()> {
    match msg {
        Outgoing::Frame(f) => w.write_all(&f),
        Outgoing::Split { head, buf, len } => {
            w.write_all(&head)?;
            w.write_all(&buf[..len])
            // `buf` drops here; the frame returns to the pool and
            // un-parks the reader if it was waiting to stage.
        }
    }
}

enum Reply {
    Empty,
    U64(u64),
    Body(Vec<u8>),
    Split {
        prefix: Vec<u8>,
        buf: PoolBuf,
        len: usize,
    },
}

enum HandleObj {
    Seq(SeqClient),
    Ss(SsClient),
    Part(PartitionClient),
    Ilv(InterleavedClient),
    Dir(DirState),
}

struct DirState {
    client: DirectClient,
    locks: HashMap<u64, LockedRange>,
    next_lock: u64,
}

struct HandleEntry {
    obj: HandleObj,
    record_size: usize,
    block_bytes: usize,
}

struct Conn {
    server: Server,
    session: Session,
    pool: BufferPool,
    frame_bytes: usize,
    handles: HashMap<u64, HandleEntry>,
    next_handle: u64,
}

fn unknown_handle(h: u64) -> NetError {
    NetError::Protocol(format!("unknown or closed handle {h}"))
}

impl Conn {
    fn insert(&mut self, obj: HandleObj, record_size: usize, block_bytes: usize) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(
            h,
            HandleEntry {
                obj,
                record_size,
                block_bytes,
            },
        );
        h
    }

    fn open_reply(
        &mut self,
        name: &str,
        make: impl FnOnce(&Session) -> pario_server::Result<(HandleObj, Option<(u64, u64)>)>,
    ) -> Result<Reply> {
        let st = self.session.stat(name).map_err(NetError::Server)?;
        let (obj, range) = make(&self.session).map_err(NetError::Server)?;
        let block_bytes = st.record_size * st.records_per_block;
        let handle = self.insert(obj, st.record_size, block_bytes);
        let (start, end) = range.unwrap_or((0, st.len_records));
        let mut w = WireWriter::new();
        Opened {
            handle,
            record_size: st.record_size as u32,
            records_per_block: st.records_per_block as u32,
            len_records: st.len_records,
            start,
            end,
        }
        .encode(&mut w);
        Ok(Reply::Body(w.take()))
    }

    /// Stage a read of `n` bytes. At most `pool.capacity()` replies can
    /// be staged at once; `acquire` parks this connection's reader until
    /// the writer returns a frame — flow control by construction.
    fn staged_read<T>(
        &self,
        n: usize,
        prefix: impl FnOnce(T, &mut WireWriter),
        read: impl FnOnce(&mut [u8]) -> pario_server::Result<Option<T>>,
    ) -> Result<Reply> {
        if n <= self.frame_bytes {
            let mut buf = self.pool.acquire();
            match read(&mut buf[..n]).map_err(NetError::Server)? {
                Some(t) => {
                    let mut w = WireWriter::new();
                    w.u8(1);
                    prefix(t, &mut w);
                    Ok(Reply::Split {
                        prefix: w.take(),
                        buf,
                        len: n,
                    })
                }
                None => Ok(Reply::Body(vec![0])),
            }
        } else {
            // Oversized record: heap fallback (still one copy total).
            let mut v = vec![0u8; n];
            match read(&mut v).map_err(NetError::Server)? {
                Some(t) => {
                    let mut w = WireWriter::new();
                    w.u8(1);
                    prefix(t, &mut w);
                    w.raw(&v);
                    Ok(Reply::Body(w.take()))
                }
                None => Ok(Reply::Body(vec![0])),
            }
        }
    }

    fn execute(&mut self, req: Request) -> Result<Reply> {
        match req {
            Request::Ping => Ok(Reply::Empty),
            Request::Stats => {
                let s = self.server.stats();
                let mut w = WireWriter::new();
                StatsSummary {
                    sessions: s.sessions.len() as u64,
                    in_flight: s.in_flight as u64,
                    rejected: s.rejected,
                    total_admitted: s.total_admitted,
                    p50_nanos: s.p50(),
                    p99_nanos: s.p99(),
                    p999_nanos: s.p999(),
                }
                .encode(&mut w);
                Ok(Reply::Body(w.take()))
            }

            Request::OpenSeq { name } => self.open_reply(&name, |s| {
                Ok((HandleObj::Seq(s.open_sequential(&name)?), None))
            }),
            Request::OpenSs { name } => self.open_reply(&name, |s| {
                Ok((HandleObj::Ss(s.open_self_sched(&name)?), None))
            }),
            Request::OpenSsNaive { name } => self.open_reply(&name, |s| {
                Ok((HandleObj::Ss(s.open_self_sched_naive(&name)?), None))
            }),
            Request::OpenPartition { name, partition } => self.open_reply(&name, |s| {
                let c = s.open_partition(&name, partition)?;
                let range = c.range();
                Ok((HandleObj::Part(c), Some(range)))
            }),
            Request::OpenInterleaved { name, process } => self.open_reply(&name, |s| {
                Ok((HandleObj::Ilv(s.open_interleaved(&name, process)?), None))
            }),
            Request::OpenDirect { name } => self.open_reply(&name, |s| {
                Ok((
                    HandleObj::Dir(DirState {
                        client: s.open_direct(&name)?,
                        locks: HashMap::new(),
                        next_lock: 1,
                    }),
                    None,
                ))
            }),
            Request::Close { handle } => match self.handles.remove(&handle) {
                Some(_) => Ok(Reply::Empty),
                None => Err(unknown_handle(handle)),
            },

            Request::SeqRead { handle } => {
                let e = self
                    .handles
                    .get_mut(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let n = e.record_size;
                let HandleObj::Seq(c) = &mut e.obj else {
                    return Err(NetError::Protocol(format!("handle {handle} is not seq")));
                };
                // `staged_read` borrows the pool immutably; clients are
                // borrowed mutably out of the table first.
                stage_flagged_read(&self.pool, self.frame_bytes, n, |out| c.read_next(out))
            }
            Request::SeqWrite { handle, data } => {
                self.seq(handle)?
                    .write_next(&data)
                    .map_err(NetError::Server)?;
                Ok(Reply::Empty)
            }
            Request::SeqFinish { handle } => {
                let v = self.seq(handle)?.finish().map_err(NetError::Server)?;
                Ok(Reply::U64(v))
            }
            Request::SeqRewind { handle } => {
                self.seq(handle)?.rewind();
                Ok(Reply::Empty)
            }

            Request::SsRead { handle } => {
                let (n, c) = self.ss(handle)?;
                self.staged_read(
                    n,
                    |idx, w| {
                        w.u64(idx);
                    },
                    |out| c.read_next(out),
                )
            }
            Request::SsReadBlock { handle } => {
                let (_, c) = self.ss(handle)?;
                let block = self.handles[&handle].block_bytes;
                let rs = self.handles[&handle].record_size;
                // Read into a full block, then ship only the records
                // actually claimed (the final block may be short).
                let mut v = vec![0u8; block];
                match c.read_next_block(&mut v).map_err(NetError::Server)? {
                    Some((start, count)) => {
                        let mut w = WireWriter::new();
                        w.u8(1).u64(start).u32(count as u32);
                        w.raw(&v[..count * rs]);
                        Ok(Reply::Body(w.take()))
                    }
                    None => Ok(Reply::Body(vec![0])),
                }
            }
            Request::SsWrite { handle, data } => {
                let (_, c) = self.ss(handle)?;
                let slot = c.write_next(&data).map_err(NetError::Server)?;
                Ok(Reply::U64(slot))
            }
            Request::SsFinish { handle } => {
                let (_, c) = self.ss(handle)?;
                Ok(Reply::U64(c.finish_writes().map_err(NetError::Server)?))
            }
            Request::SsClaimed { handle } => {
                let (_, c) = self.ss(handle)?;
                Ok(Reply::U64(c.claimed()))
            }

            Request::PartRead { handle, record } => {
                let e = self
                    .handles
                    .get(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let n = e.record_size;
                let HandleObj::Part(c) = &e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not a partition"
                    )));
                };
                self.staged_read(n, |(), _| {}, |out| c.read_record(record, out).map(Some))
                    .map(strip_some_flag)
            }
            Request::PartWrite {
                handle,
                record,
                data,
            } => {
                let e = self
                    .handles
                    .get(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let HandleObj::Part(c) = &e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not a partition"
                    )));
                };
                c.write_record(record, &data).map_err(NetError::Server)?;
                Ok(Reply::Empty)
            }
            Request::PartReadNext { handle } => {
                let e = self
                    .handles
                    .get_mut(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let n = e.record_size;
                let HandleObj::Part(c) = &mut e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not a partition"
                    )));
                };
                stage_flagged_read(&self.pool, self.frame_bytes, n, |out| c.read_next(out))
            }
            Request::PartWriteNext { handle, data } => {
                let e = self
                    .handles
                    .get_mut(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let HandleObj::Part(c) = &mut e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not a partition"
                    )));
                };
                c.write_next(&data).map_err(NetError::Server)?;
                Ok(Reply::Empty)
            }
            Request::PartRewind { handle } => {
                let e = self
                    .handles
                    .get_mut(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let HandleObj::Part(c) = &mut e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not a partition"
                    )));
                };
                c.rewind();
                Ok(Reply::Empty)
            }

            Request::IlvReadNext { handle } => {
                let e = self
                    .handles
                    .get_mut(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let n = e.record_size;
                let HandleObj::Ilv(c) = &mut e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not interleaved"
                    )));
                };
                stage_flagged_read(&self.pool, self.frame_bytes, n, |out| c.read_next(out))
            }
            Request::IlvWriteNext { handle, data } => {
                let e = self
                    .handles
                    .get_mut(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let HandleObj::Ilv(c) = &mut e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not interleaved"
                    )));
                };
                Ok(Reply::U64(c.write_next(&data).map_err(NetError::Server)?))
            }
            Request::IlvReadBlock { handle } => {
                let e = self
                    .handles
                    .get_mut(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let block = e.block_bytes;
                let HandleObj::Ilv(c) = &mut e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not interleaved"
                    )));
                };
                let mut v = vec![0u8; block];
                match c.read_next_block(&mut v).map_err(NetError::Server)? {
                    Some(b) => {
                        let mut w = WireWriter::new();
                        w.u8(1).u64(b);
                        w.raw(&v);
                        Ok(Reply::Body(w.take()))
                    }
                    None => Ok(Reply::Body(vec![0])),
                }
            }
            Request::IlvWriteBlock { handle, data } => {
                let e = self
                    .handles
                    .get_mut(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let HandleObj::Ilv(c) = &mut e.obj else {
                    return Err(NetError::Protocol(format!(
                        "handle {handle} is not interleaved"
                    )));
                };
                Ok(Reply::U64(
                    c.write_next_block(&data).map_err(NetError::Server)?,
                ))
            }

            Request::DirRead { handle, record } => {
                let e = self
                    .handles
                    .get(&handle)
                    .ok_or_else(|| unknown_handle(handle))?;
                let n = e.record_size;
                let HandleObj::Dir(d) = &e.obj else {
                    return Err(NetError::Protocol(format!("handle {handle} is not direct")));
                };
                let c = &d.client;
                self.staged_read(n, |(), _| {}, |out| c.read_record(record, out).map(Some))
                    .map(strip_some_flag)
            }
            Request::DirWrite {
                handle,
                record,
                data,
            } => {
                self.dir(handle)?
                    .client
                    .write_record(record, &data)
                    .map_err(NetError::Server)?;
                Ok(Reply::Empty)
            }
            Request::DirLock { handle, r_lo, r_hi } => {
                let d = self.dir(handle)?;
                let lock = d.client.lock_range(r_lo, r_hi).map_err(NetError::Server)?;
                let id = d.next_lock;
                d.next_lock += 1;
                d.locks.insert(id, lock);
                Ok(Reply::U64(id))
            }
            Request::DirUnlock { handle, lock } => {
                let d = self.dir(handle)?;
                let held = d
                    .locks
                    .remove(&lock)
                    .ok_or_else(|| NetError::Protocol(format!("unknown lock id {lock}")))?;
                d.client.unlock(held).map_err(NetError::Server)?;
                Ok(Reply::Empty)
            }
            Request::DirWriteLocked {
                handle,
                lock,
                record,
                data,
            } => {
                let d = self.dir(handle)?;
                let held = d
                    .locks
                    .get(&lock)
                    .ok_or_else(|| NetError::Protocol(format!("unknown lock id {lock}")))?;
                d.client
                    .write_record_locked(held, record, &data)
                    .map_err(NetError::Server)?;
                Ok(Reply::Empty)
            }
            Request::DirLen { handle } => Ok(Reply::U64(self.dir(handle)?.client.len_records())),
        }
    }

    fn seq(&mut self, h: u64) -> Result<&mut SeqClient> {
        match self.handles.get_mut(&h) {
            Some(HandleEntry {
                obj: HandleObj::Seq(c),
                ..
            }) => Ok(c),
            Some(_) => Err(NetError::Protocol(format!("handle {h} is not seq"))),
            None => Err(unknown_handle(h)),
        }
    }

    fn ss(&self, h: u64) -> Result<(usize, &SsClient)> {
        match self.handles.get(&h) {
            Some(HandleEntry {
                obj: HandleObj::Ss(c),
                record_size,
                ..
            }) => Ok((*record_size, c)),
            Some(_) => Err(NetError::Protocol(format!("handle {h} is not ss"))),
            None => Err(unknown_handle(h)),
        }
    }

    fn dir(&mut self, h: u64) -> Result<&mut DirState> {
        match self.handles.get_mut(&h) {
            Some(HandleEntry {
                obj: HandleObj::Dir(d),
                ..
            }) => Ok(d),
            Some(_) => Err(NetError::Protocol(format!("handle {h} is not direct"))),
            None => Err(unknown_handle(h)),
        }
    }
}

/// Flag-less single-record reads (`PartRead`, `DirRead`) reuse
/// [`Conn::staged_read`] with a unit prefix, then drop the leading
/// `Some` flag byte so the body is exactly the record.
fn strip_some_flag(r: Reply) -> Reply {
    match r {
        Reply::Split { prefix, buf, len } => {
            // invariant: staged_read wrote [1] then the (empty) prefix.
            Reply::Split {
                prefix: prefix[1..].to_vec(),
                buf,
                len,
            }
        }
        Reply::Body(b) if !b.is_empty() => Reply::Body(b[1..].to_vec()),
        other => other,
    }
}

/// Stage a flagged single-record read (`SeqRead`, `PartReadNext`,
/// `IlvReadNext`): reply body is a `u8` flag (0 = end of stream) then
/// the record, served from a pool frame when it fits.
fn stage_flagged_read(
    pool: &BufferPool,
    frame_bytes: usize,
    n: usize,
    mut read: impl FnMut(&mut [u8]) -> pario_server::Result<bool>,
) -> Result<Reply> {
    if n <= frame_bytes {
        let mut buf = pool.acquire();
        if read(&mut buf[..n]).map_err(NetError::Server)? {
            Ok(Reply::Split {
                prefix: vec![1],
                buf,
                len: n,
            })
        } else {
            Ok(Reply::Body(vec![0]))
        }
    } else {
        let mut v = vec![0u8; n];
        if read(&mut v).map_err(NetError::Server)? {
            let mut body = vec![1];
            body.extend_from_slice(&v);
            Ok(Reply::Body(body))
        } else {
            Ok(Reply::Body(vec![0]))
        }
    }
}
