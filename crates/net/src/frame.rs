//! Framing and the handshake: how messages sit on a byte stream.
//!
//! Every frame, both directions, is:
//!
//! ```text
//! u32 len            bytes after this field (9 ..= max frame)
//! u64 request_id     client-chosen; echoed verbatim in the reply
//! u8  code           opcode (requests) or status byte (replies)
//! ...                payload / body
//! ```
//!
//! Before the first frame, each side sends a preamble: the client's
//! hello is `MAGIC + u16 version`; the server's welcome echoes the
//! magic and version and appends `u32 credits + u32 max_payload` — the
//! flow-control window and the largest payload the client may send.
//!
//! Decoding is fail-closed: a frame that violates the length bounds or
//! carries bytes no encoder produces kills that connection with a
//! [`NetError::Protocol`]; the server itself is unaffected.

use std::io::{Read, Write};

use crate::error::{NetError, Result};
use crate::proto::{MAGIC, VERSION};

/// Fixed bytes of a frame after the length field: request id + code.
pub const FRAME_OVERHEAD: usize = 8 + 1;

/// One parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Client-chosen request id (echoed in the reply).
    pub request_id: u64,
    /// Opcode (requests) or status byte (replies).
    pub code: u8,
    /// Payload / body bytes.
    pub body: Vec<u8>,
}

/// Append a complete frame to `out`.
pub fn encode_frame(out: &mut Vec<u8>, request_id: u64, code: u8, body: &[u8]) {
    let len = (FRAME_OVERHEAD + body.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.push(code);
    out.extend_from_slice(body);
}

/// Encode only the frame header plus a body *prefix*, declaring a total
/// body of `prefix.len() + payload_len` bytes. The caller transmits the
/// payload bytes itself, straight from whatever buffer holds them —
/// this is the server's zero-copy read path.
pub fn encode_frame_header(
    out: &mut Vec<u8>,
    request_id: u64,
    code: u8,
    prefix: &[u8],
    payload_len: usize,
) {
    let len = (FRAME_OVERHEAD + prefix.len() + payload_len) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.push(code);
    out.extend_from_slice(prefix);
}

/// Read exactly `buf.len()` bytes, distinguishing clean EOF before the
/// first byte (`Ok(false)`) from a mid-value disconnect (error).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(NetError::ConnectionLost(format!(
                    "peer closed mid-frame ({filled}/{} bytes)",
                    buf.len()
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// Read one frame. `Ok(None)` is a clean shutdown at a frame boundary;
/// anything else that cannot produce a whole well-formed frame is an
/// error. `max_frame` bounds the declared length so a garbage length
/// prefix cannot make the reader allocate gigabytes.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<RawFrame>> {
    let mut len4 = [0u8; 4];
    if !read_exact_or_eof(r, &mut len4)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len < FRAME_OVERHEAD || len > max_frame {
        return Err(NetError::Protocol(format!(
            "frame length {len} outside [{FRAME_OVERHEAD}, {max_frame}]"
        )));
    }
    let mut frame = vec![0u8; len];
    if !read_exact_or_eof(r, &mut frame)? {
        return Err(NetError::ConnectionLost(
            "peer closed between length and frame".to_string(),
        ));
    }
    let mut id8 = [0u8; 8];
    id8.copy_from_slice(&frame[..8]);
    let request_id = u64::from_le_bytes(id8);
    let code = frame[8];
    frame.drain(..FRAME_OVERHEAD);
    Ok(Some(RawFrame {
        request_id,
        code,
        body: frame,
    }))
}

/// Flow-control terms a server grants a connection at handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Requests the client may have outstanding at once.
    pub credits: u32,
    /// Largest request payload the client may send, bytes.
    pub max_payload: u32,
}

/// Client side of the preamble: send hello, read the welcome, return
/// the server's grant.
pub fn client_handshake(stream: &mut (impl Read + Write)) -> Result<Grant> {
    let mut hello = Vec::with_capacity(6);
    hello.extend_from_slice(&MAGIC);
    hello.extend_from_slice(&VERSION.to_le_bytes());
    stream.write_all(&hello)?;
    stream.flush()?;

    let mut welcome = [0u8; 14];
    if !read_exact_or_eof(stream, &mut welcome)? {
        return Err(NetError::ConnectionLost(
            "server closed during handshake".to_string(),
        ));
    }
    if welcome[..4] != MAGIC {
        return Err(NetError::Protocol(
            "server preamble does not carry the protocol magic".to_string(),
        ));
    }
    let theirs = u16::from_le_bytes([welcome[4], welcome[5]]);
    if theirs != VERSION {
        return Err(NetError::Handshake {
            ours: VERSION,
            theirs,
        });
    }
    let credits = u32::from_le_bytes([welcome[6], welcome[7], welcome[8], welcome[9]]);
    let max_payload = u32::from_le_bytes([welcome[10], welcome[11], welcome[12], welcome[13]]);
    if credits == 0 {
        return Err(NetError::Protocol(
            "server granted zero credits".to_string(),
        ));
    }
    Ok(Grant {
        credits,
        max_payload,
    })
}

/// Server side of the preamble: read the hello, validate it, send the
/// welcome with `grant`. Returns the client's version; a mismatch is
/// reported *after* the welcome is written, so the client learns our
/// version before the socket closes.
pub fn server_handshake(stream: &mut (impl Read + Write), grant: Grant) -> Result<()> {
    let mut hello = [0u8; 6];
    if !read_exact_or_eof(stream, &mut hello)? {
        return Err(NetError::ConnectionLost(
            "client closed during handshake".to_string(),
        ));
    }
    if hello[..4] != MAGIC {
        return Err(NetError::Protocol(
            "client preamble does not carry the protocol magic".to_string(),
        ));
    }
    let theirs = u16::from_le_bytes([hello[4], hello[5]]);

    let mut welcome = Vec::with_capacity(14);
    welcome.extend_from_slice(&MAGIC);
    welcome.extend_from_slice(&VERSION.to_le_bytes());
    welcome.extend_from_slice(&grant.credits.to_le_bytes());
    welcome.extend_from_slice(&grant.max_payload.to_le_bytes());
    stream.write_all(&welcome)?;
    stream.flush()?;

    if theirs != VERSION {
        return Err(NetError::Handshake {
            ours: VERSION,
            theirs,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 42, 0x28, b"body");
        let f = read_frame(&mut Cursor::new(&buf), 1 << 20)
            .expect("read")
            .expect("one frame");
        assert_eq!(
            f,
            RawFrame {
                request_id: 42,
                code: 0x28,
                body: b"body".to_vec()
            }
        );
        // EOF at a frame boundary is a clean None.
        let mut c = Cursor::new(&buf[buf.len()..]);
        assert_eq!(read_frame(&mut c, 1 << 20).expect("read"), None);
    }

    #[test]
    fn header_plus_payload_equals_whole_frame() {
        let mut whole = Vec::new();
        encode_frame(&mut whole, 7, 1, b"\x01payload");
        let mut split = Vec::new();
        encode_frame_header(&mut split, 7, 1, b"\x01", b"payload".len());
        split.extend_from_slice(b"payload");
        assert_eq!(whole, split);
    }

    #[test]
    fn oversized_and_undersized_lengths_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(8u32).to_le_bytes()); // < FRAME_OVERHEAD
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1 << 20),
            Err(NetError::Protocol(_))
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1 << 20),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn mid_frame_disconnect_is_connection_lost() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, 1, b"xyz");
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1 << 20),
            Err(NetError::ConnectionLost(_))
        ));
    }

    #[test]
    fn handshake_agrees_over_a_pipe() {
        // Simulate the two directions with separate buffers.
        struct Duplex {
            rx: Cursor<Vec<u8>>,
            tx: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, b: &mut [u8]) -> std::io::Result<usize> {
                self.rx.read(b)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.tx.write(b)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let grant = Grant {
            credits: 32,
            max_payload: 1 << 20,
        };
        // Client writes its hello...
        let mut client = Duplex {
            rx: Cursor::new(Vec::new()),
            tx: Vec::new(),
        };
        // (run only the write half by handing it an unfilled rx; the
        // read will fail, which we ignore here)
        let _ = client_handshake(&mut client);
        // ...server consumes it and writes the welcome...
        let mut server = Duplex {
            rx: Cursor::new(client.tx.clone()),
            tx: Vec::new(),
        };
        server_handshake(&mut server, grant).expect("server side");
        // ...client consumes the welcome.
        let mut client2 = Duplex {
            rx: Cursor::new(server.tx),
            tx: Vec::new(),
        };
        assert_eq!(client_handshake(&mut client2).expect("client side"), grant);
    }

    #[test]
    fn garbage_magic_fails_closed() {
        let mut s = Cursor::new(b"GARBAGE-BYTES!".to_vec());
        assert!(matches!(
            server_handshake(
                &mut s,
                Grant {
                    credits: 1,
                    max_payload: 1024
                }
            ),
            Err(NetError::Protocol(_))
        ));
    }
}
