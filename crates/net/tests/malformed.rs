//! Garbage in, connection closed — server intact. A peer that violates
//! the protocol (bad magic, absurd frame lengths, unknown opcodes,
//! malformed payloads) loses *its* connection, fail-closed; the server
//! keeps serving well-behaved clients on the same volume throughout.

use std::io::{Read, Write};
use std::net::TcpStream;

use pario_core::{Organization, ParallelFile};
use pario_fs::{Volume, VolumeConfig};
use pario_net::frame::{encode_frame, read_frame, FRAME_OVERHEAD};
use pario_net::proto::{MAGIC, STATUS_ERR, VERSION};
use pario_net::{NetClient, NetConfig, NetServer};
use pario_server::{Server, ServerConfig};

const REC: usize = 64;

fn serve() -> (NetServer, String) {
    let volume = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 512,
        block_size: 256,
    })
    .unwrap();
    let pf =
        ParallelFile::create(&volume, "queue", Organization::SelfScheduledSeq, REC, 4).unwrap();
    let w = pf.self_sched_writer().unwrap();
    for i in 0..8u64 {
        w.write_next(&[i as u8; REC]).unwrap();
    }
    w.finish().unwrap();
    drop(pf);
    let net = NetServer::bind_tcp(
        "127.0.0.1:0",
        Server::new(volume, ServerConfig::default()),
        NetConfig::default(),
    )
    .unwrap();
    let addr = net.local_addr().unwrap().to_string();
    (net, addr)
}

/// Drain the socket until the peer closes it; the bytes read (if any).
fn read_until_eof(s: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => return out,
        }
    }
}

fn hello() -> Vec<u8> {
    let mut h = Vec::new();
    h.extend_from_slice(&MAGIC);
    h.extend_from_slice(&VERSION.to_le_bytes());
    h
}

/// The server still answers a real client — the poisoning attempt died
/// with its own connection, nothing more.
fn assert_server_alive(addr: &str) {
    let client = NetClient::connect_tcp(addr).unwrap();
    client.ping().unwrap();
    let q = client.open_self_sched("queue").unwrap();
    let mut buf = [0u8; REC];
    // At least one record is still claimable through the shared cursor.
    q.read_next(&mut buf).unwrap();
}

#[test]
fn garbage_handshake_closes_only_that_connection() {
    let (_net, addr) = serve();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(b"NOT-THE-PROTOCOL-YOU-ARE-LOOKING-FOR")
        .unwrap();
    let _ = read_until_eof(&mut s); // server hangs up
    assert_server_alive(&addr);
}

#[test]
fn absurd_frame_length_closes_the_connection() {
    let (_net, addr) = serve();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(&hello()).unwrap();
    let mut welcome = [0u8; 14];
    s.read_exact(&mut welcome).unwrap();
    // Declare a 4 GiB frame; the reader must refuse the length, not
    // attempt the allocation.
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let _ = read_until_eof(&mut s);
    assert_server_alive(&addr);
}

#[test]
fn unknown_opcode_gets_an_error_frame_then_the_boot() {
    let (_net, addr) = serve();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(&hello()).unwrap();
    let mut welcome = [0u8; 14];
    s.read_exact(&mut welcome).unwrap();

    let mut f = Vec::new();
    encode_frame(&mut f, 99, 0xEE, b""); // no such opcode
    s.write_all(&f).unwrap();

    // One final STATUS_ERR frame explains the violation, then EOF.
    let reply = read_until_eof(&mut s);
    let frame = read_frame(&mut &reply[..], 1 << 20)
        .expect("parseable reply")
        .expect("one frame");
    assert_eq!(frame.request_id, 99);
    assert_eq!(frame.code, STATUS_ERR);
    assert!(reply.len() >= FRAME_OVERHEAD);
    assert_server_alive(&addr);
}

#[test]
fn malformed_payload_gets_an_error_frame_then_the_boot() {
    let (_net, addr) = serve();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(&hello()).unwrap();
    let mut welcome = [0u8; 14];
    s.read_exact(&mut welcome).unwrap();

    // Opcode 0x10 (OpenSeq) wants a length-prefixed name; send a length
    // that runs past the payload.
    let mut bad = Vec::new();
    bad.extend_from_slice(&(1000u32).to_le_bytes());
    bad.extend_from_slice(b"short");
    let mut f = Vec::new();
    encode_frame(&mut f, 7, 0x10, &bad);
    s.write_all(&f).unwrap();

    let reply = read_until_eof(&mut s);
    let frame = read_frame(&mut &reply[..], 1 << 20)
        .expect("parseable reply")
        .expect("one frame");
    assert_eq!((frame.request_id, frame.code), (7, STATUS_ERR));
    assert_server_alive(&addr);
}

#[test]
fn random_bytes_after_handshake_never_poison_the_server() {
    let (_net, addr) = serve();
    // A deterministic pseudo-random garbage stream, several rounds.
    let mut seed = 0x9E3779B97F4A7C15u64;
    for _ in 0..8 {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&hello()).unwrap();
        let mut welcome = [0u8; 14];
        s.read_exact(&mut welcome).unwrap();
        let mut junk = Vec::with_capacity(256);
        for _ in 0..256 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            junk.push((seed >> 33) as u8);
        }
        let _ = s.write_all(&junk);
        let _ = read_until_eof(&mut s);
    }
    assert_server_alive(&addr);
}
