//! Property tests for the wire codec: frames round-trip through
//! arbitrary split/partial reads, every request variant survives
//! encode→decode exactly, and the full `ServerError` taxonomy maps
//! losslessly both ways.

use std::io::Read;

use bytes::Bytes;
use proptest::prelude::*;

use pario_core::{CoreError, Organization};
use pario_disk::DiskError;
use pario_fs::{FsError, HealthState};
use pario_net::frame::{encode_frame, read_frame, RawFrame};
use pario_net::proto::{
    decode_reply_error, decode_server_error, encode_reply_error, encode_server_error, Request,
};
use pario_net::wire::WireWriter;
use pario_net::NetError;
use pario_server::ServerError;

/// A reader that hands out at most `chunk` bytes per call — the
/// severest form of short reads a socket can produce.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any frame survives any split of the byte stream.
    #[test]
    fn frames_survive_arbitrary_split_reads(
        request_id in any::<u64>(),
        code in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..13,
    ) {
        let mut wire = Vec::new();
        encode_frame(&mut wire, request_id, code, &body);
        let mut r = Trickle { data: &wire, pos: 0, chunk };
        let f = read_frame(&mut r, 1 << 20).unwrap().expect("one frame");
        prop_assert_eq!(f, RawFrame { request_id, code, body });
        // And the stream then ends cleanly at the frame boundary.
        prop_assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), None);
    }

    /// Several frames back to back parse one by one, whatever the
    /// chunking.
    #[test]
    fn back_to_back_frames_parse_in_order(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..8),
        chunk in 1usize..5,
    ) {
        let mut wire = Vec::new();
        for (i, b) in bodies.iter().enumerate() {
            encode_frame(&mut wire, i as u64, 1, b);
        }
        let mut r = Trickle { data: &wire, pos: 0, chunk };
        for (i, b) in bodies.iter().enumerate() {
            let f = read_frame(&mut r, 1 << 20).unwrap().expect("frame");
            prop_assert_eq!(f.request_id, i as u64);
            prop_assert_eq!(&f.body, b);
        }
        prop_assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), None);
    }

    /// Data-carrying requests round-trip arbitrary payloads byte-exact.
    #[test]
    fn write_requests_round_trip_arbitrary_payloads(
        handle in any::<u64>(),
        record in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let reqs = [
            Request::SeqWrite { handle, data: Bytes::copy_from_slice(&data) },
            Request::SsWrite { handle, data: Bytes::copy_from_slice(&data) },
            Request::PartWrite { handle, record, data: Bytes::copy_from_slice(&data) },
            Request::DirWrite { handle, record, data: Bytes::copy_from_slice(&data) },
        ];
        for req in reqs {
            let mut w = WireWriter::new();
            req.encode_payload(&mut w);
            let back = Request::decode(req.opcode(), w.bytes()).unwrap();
            prop_assert_eq!(back, req);
        }
    }

    /// A truncated payload never decodes and never panics, for every
    /// opcode the protocol defines.
    #[test]
    fn truncated_payloads_fail_closed_for_every_opcode(cut in 0usize..16) {
        for &op in Request::ALL_OPCODES {
            // A payload of `cut` arbitrary bytes: far too short for most
            // requests, trailing garbage for no-payload ones.
            let junk = vec![0xEEu8; cut];
            if let Ok(req) = Request::decode(op, &junk) {
                // If it decodes, re-encoding must reproduce the
                // bytes — decode accepts nothing an encoder would
                // not produce.
                let mut w = WireWriter::new();
                req.encode_payload(&mut w);
                prop_assert_eq!(w.bytes(), &junk[..]);
            }
        }
    }
}

/// Every `ServerError` variant — including the nested Core/Fs/Disk
/// chains — crosses the wire without losing a field.
#[test]
fn server_error_taxonomy_is_lossless() {
    let samples = vec![
        ServerError::Busy,
        ServerError::Exclusive {
            name: "a file".into(),
            by: 7,
        },
        ServerError::Claimed {
            name: "part".into(),
            index: 3,
            by: 9,
        },
        ServerError::OutsidePartition {
            record: 55,
            partition: 1,
            start: 56,
            end: 108,
        },
        ServerError::RangeNotLocked { lo: 20, hi: 24 },
        ServerError::Degraded {
            device: 2,
            state: HealthState::Rebuilding,
        },
        ServerError::Core(CoreError::Fs(FsError::NotFound("x".into()))),
        ServerError::Core(CoreError::Fs(FsError::Disk(DiskError::Timeout {
            device: "mem-1".into(),
        }))),
        ServerError::Core(CoreError::WrongOrganization {
            expected: "SS",
            actual: Organization::PartitionedSeq { partitions: 8 },
        }),
        ServerError::Core(CoreError::BadProcess { process: 9, of: 4 }),
    ];
    for e in samples {
        let mut w = WireWriter::new();
        encode_server_error(&mut w, &e);
        let back = decode_server_error(&mut pario_net::wire::WireReader::new(w.bytes())).unwrap();
        assert_eq!(back, e, "taxonomy lost a field crossing the wire");
    }
}

/// The shutdown notice is its own wire class: it round-trips as the
/// typed [`NetError::Shutdown`] variant clients can match on, while
/// endpoint-local errors still degrade to protocol-class strings.
#[test]
fn shutdown_error_class_round_trips() {
    let mut w = WireWriter::new();
    encode_reply_error(&mut w, &NetError::Shutdown);
    assert_eq!(decode_reply_error(w.bytes()).unwrap(), NetError::Shutdown);

    let mut w = WireWriter::new();
    encode_reply_error(&mut w, &NetError::Io("no route".into()));
    match decode_reply_error(w.bytes()).unwrap() {
        NetError::Protocol(msg) => assert!(msg.contains("no route")),
        other => panic!("expected protocol-class fallback, got {other:?}"),
    }
}
