//! The ISSUE acceptance scenario over real sockets: eight [`NetClient`]s
//! on TCP connections to one [`NetServer`] over a shared volume observe
//! the same sharing semantics the in-process suites assert — SS
//! exactly-once delivery, exclusive partition claims, and GDA writes
//! durable on the raw media at unlock.

use std::collections::HashSet;
use std::sync::Mutex;

use bytes::Bytes;
use pario_core::{CoreError, Organization, ParallelFile};
use pario_fs::{resolve, RawFile, Volume, VolumeCacheConfig, VolumeConfig};
use pario_net::{NetClient, NetConfig, NetError, NetServer};
use pario_server::{Server, ServerConfig, ServerError};

const REC: usize = 64;
const BS: usize = 256;

fn volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: BS,
    })
    .unwrap()
}

fn serve(volume: Volume) -> (NetServer, String) {
    let net = NetServer::bind_tcp(
        "127.0.0.1:0",
        Server::new(volume, ServerConfig::default()),
        NetConfig::default(),
    )
    .unwrap();
    let addr = net.local_addr().unwrap().to_string();
    (net, addr)
}

fn fill_ss(volume: &Volume, name: &str, records: u64) {
    let pf = ParallelFile::create(volume, name, Organization::SelfScheduledSeq, REC, 4).unwrap();
    let w = pf.self_sched_writer().unwrap();
    for i in 0..records {
        w.write_next(&[i as u8; REC]).unwrap();
    }
    w.finish().unwrap();
}

#[test]
fn eight_tcp_clients_drain_ss_exactly_once() {
    const RECORDS: u64 = 400;
    const CLIENTS: usize = 8;
    const DEPTH: usize = 8; // pipelined claims in flight per client

    let volume = volume();
    fill_ss(&volume, "queue", RECORDS);
    let (_net, addr) = serve(volume);

    let seen = Mutex::new(HashSet::new());
    crossbeam::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let addr = addr.as_str();
            let seen = &seen;
            s.spawn(move |_| {
                let client = NetClient::connect_tcp(addr).unwrap();
                let q = client.open_self_sched("queue").unwrap();
                assert_eq!(q.record_size(), REC);
                // Keep a window of claims on the wire; resolve in order.
                let mut window = std::collections::VecDeque::new();
                for _ in 0..DEPTH {
                    window.push_back(q.submit_read_next().unwrap());
                }
                let mut buf = [0u8; REC];
                let mut draining = false;
                while let Some(t) = window.pop_front() {
                    match q.finish_read_next(t, &mut buf).unwrap() {
                        Some(idx) => {
                            assert_eq!(buf, [idx as u8; REC], "torn record {idx}");
                            assert!(seen.lock().unwrap().insert(idx), "record {idx} twice");
                            if !draining {
                                window.push_back(q.submit_read_next().unwrap());
                            }
                        }
                        None => draining = true,
                    }
                }
            });
        }
    })
    .unwrap();
    assert_eq!(seen.into_inner().unwrap().len(), RECORDS as usize);
}

#[test]
fn partition_claims_are_exclusive_over_the_wire() {
    let volume = volume();
    // 160 records over 4 partitions of a PS file.
    ParallelFile::create_sized(
        &volume,
        "part",
        Organization::PartitionedSeq { partitions: 4 },
        REC,
        4,
        160,
    )
    .unwrap();
    let (_net, addr) = serve(volume);

    let a = NetClient::connect_tcp(&addr).unwrap();
    let b = NetClient::connect_tcp(&addr).unwrap();

    let pa = a.open_partition("part", 1).unwrap();
    // The same partition from another connection is refused with the
    // exact typed error the in-process suite matches on.
    match b.open_partition("part", 1) {
        Err(NetError::Server(ServerError::Claimed { name, index, .. })) => {
            assert_eq!(name, "part");
            assert_eq!(index, 1);
        }
        other => panic!("expected Claimed, got {other:?}"),
    }
    // A different partition is fine, and the range travels back.
    let pb = b.open_partition("part", 2).unwrap();
    let (start, end) = pb.range();
    assert!(start < end);

    // Writes inside the claim work; outside the claim they are refused,
    // never silently corrupting a neighbour's records.
    let data = [7u8; REC];
    pb.write_record(start, &data).unwrap();
    let mut back = [0u8; REC];
    pb.read_record(start, &mut back).unwrap();
    assert_eq!(back, data);
    match pb.write_record(end, &data) {
        Err(NetError::Server(ServerError::OutsidePartition { record, .. })) => {
            assert_eq!(record, end);
        }
        other => panic!("expected OutsidePartition, got {other:?}"),
    }

    // Dropping the remote handle releases the claim server-side. The
    // close rides the same ordered connection, so a ping barrier on
    // client A guarantees it has executed.
    drop(pa);
    a.ping().unwrap();
    let pa2 = b.open_partition("part", 1).unwrap();
    assert_eq!(pa2.partition(), 1);
}

/// Record `r`'s bytes assembled straight from the raw devices, bypassing
/// the cache tier entirely (same probe as the in-process cached_gda
/// suite).
fn media_record(v: &Volume, f: &RawFile, r: u64) -> Vec<u8> {
    let layout = f.layout();
    let meta = f.meta_snapshot();
    let mut out = vec![0u8; REC];
    let mut byte = r * REC as u64;
    let mut done = 0usize;
    while done < REC {
        let l = byte / BS as u64;
        let within = (byte % BS as u64) as usize;
        let take = (BS - within).min(REC - done);
        let p = layout.map(l);
        let dev = meta.device_map[p.device];
        let abs = resolve(&meta.extents[p.device], p.block);
        let mut block = vec![0u8; BS];
        v.device(dev).read_block(abs, &mut block).unwrap();
        out[done..done + take].copy_from_slice(&block[within..within + take]);
        byte += take as u64;
        done += take;
    }
    out
}

#[test]
fn remote_gda_writes_are_durable_on_media_at_unlock() {
    let volume = volume()
        .enable_cache(VolumeCacheConfig::write_back(32))
        .unwrap();
    let pf = ParallelFile::create(&volume, "d", Organization::GlobalDirect, REC, 4).unwrap();
    let raw = pf.raw().clone();
    drop(pf);
    let probe = volume.clone();
    let (_net, addr) = serve(volume);

    let client = NetClient::connect_tcp(&addr).unwrap();
    let c = client.open_direct("d").unwrap();

    // No flush anywhere: by the time write_record's reply arrives, the
    // server-side range-lock release must have pushed the span out of
    // the write-back tier (the paper's durable-at-unlock contract).
    for r in 0..16u64 {
        let data: Vec<u8> = (0..REC).map(|i| (r as usize * 31 + i) as u8).collect();
        c.write_record(r, &data).unwrap();
        assert_eq!(
            media_record(&probe, &raw, r),
            data,
            "record {r} not on media after its range lock released"
        );
    }

    // Explicit lock / locked-write / unlock over the wire: durable at
    // the unlock reply, and writes outside the locked range are refused.
    let lock = c.lock_range(20, 24).unwrap();
    let data = [0xA5u8; REC];
    c.write_record_locked(&lock, 21, &data).unwrap();
    match c.write_record_locked(&lock, 30, &data) {
        Err(NetError::Server(ServerError::RangeNotLocked { .. })) => {}
        other => panic!("expected RangeNotLocked, got {other:?}"),
    }
    c.unlock(lock).unwrap();
    assert_eq!(
        media_record(&probe, &raw, 21),
        data,
        "not durable at unlock"
    );
}

#[test]
fn remote_gda_updates_never_lose_increments() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: u64 = 25;
    let volume = volume()
        .enable_cache(VolumeCacheConfig::write_back(32))
        .unwrap();
    let pf = ParallelFile::create(&volume, "shared", Organization::GlobalDirect, REC, 4).unwrap();
    pf.direct_handle()
        .unwrap()
        .write_record(0, &[0; REC])
        .unwrap();
    drop(pf);
    let (_net, addr) = serve(volume);

    crossbeam::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let addr = addr.as_str();
            s.spawn(move |_| {
                let client = NetClient::connect_tcp(addr).unwrap();
                let c = client.open_direct("shared").unwrap();
                for _ in 0..PER_CLIENT {
                    c.update(0, |bytes| {
                        let v = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                        bytes[..8].copy_from_slice(&(v + 1).to_le_bytes());
                    })
                    .unwrap();
                }
            });
        }
    })
    .unwrap();

    let client = NetClient::connect_tcp(&addr).unwrap();
    let c = client.open_direct("shared").unwrap();
    let mut buf = [0u8; REC];
    c.read_record(0, &mut buf).unwrap();
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    assert_eq!(v, CLIENTS as u64 * PER_CLIENT, "lost increments");

    // The server saw every one of these connections as a session.
    let stats = client.stats().unwrap();
    assert!(stats.sessions >= CLIENTS as u64);
}

#[test]
fn unix_socket_carries_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("pario-net-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pario.sock");
    let _ = std::fs::remove_file(&path);

    let volume = volume();
    ParallelFile::create(&volume, "log", Organization::Sequential, REC, 4).unwrap();
    let mut net = NetServer::bind_unix(
        &path,
        Server::new(volume, ServerConfig::default()),
        NetConfig::default(),
    )
    .unwrap();

    let client = NetClient::connect_unix(&path).unwrap();
    client.ping().unwrap();

    // Exclusive type-S over the unix transport: write, finish, read
    // back; a second exclusive open is refused while the first is held.
    {
        let log = client.open_sequential("log").unwrap();
        for i in 0..10u8 {
            log.write_next(&[i; REC]).unwrap();
        }
        assert_eq!(log.finish().unwrap(), 10);
        match NetClient::connect_unix(&path)
            .unwrap()
            .open_sequential("log")
        {
            Err(NetError::Server(ServerError::Exclusive { name, .. })) => assert_eq!(name, "log"),
            other => panic!("expected Exclusive, got {other:?}"),
        }
        let mut buf = [0u8; REC];
        for i in 0..10u8 {
            assert!(log.read_next(&mut buf).unwrap(), "record {i} missing");
            assert_eq!(buf, [i; REC]);
        }
        assert!(!log.read_next(&mut buf).unwrap(), "EOF after 10 records");
    }

    // A missing file fails with the typed FS error, not a socket error.
    match client.open_sequential("absent") {
        Err(NetError::Server(ServerError::Core(CoreError::Fs(_)))) => {}
        other => panic!("open of a missing file must fail typed, got {other:?}"),
    }

    net.shutdown();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Graceful shutdown drains in-flight work and answers pipelined
/// requests still in the pipe with the typed shutdown notice instead of
/// tearing the socket mid-reply.
#[test]
fn shutdown_drains_in_flight_and_replies_typed_notice() {
    let volume = volume();
    drop(ParallelFile::create(&volume, "d", Organization::GlobalDirect, REC, 4).unwrap());
    let (mut net, addr) = serve(volume);

    let a = NetClient::connect_tcp(&addr).unwrap();
    let da = a.open_direct("d").unwrap();
    let b = NetClient::connect_tcp(&addr).unwrap();
    let db = b.open_direct("d").unwrap();

    // A holds record 0's byte range, so B's write of record 0 starts
    // executing server-side and parks on that lock — a genuinely
    // in-flight request. Three more writes queue behind it on B's
    // ordered connection, unread while the first is parked.
    let _lock = da.lock_range(0, 1).unwrap();
    let in_flight = db.submit_write(0, Bytes::from(vec![0x5A; REC])).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let queued: Vec<_> = (1..4u64)
        .map(|r| db.submit_write(r, Bytes::from(vec![r as u8; REC])).unwrap())
        .collect();

    // Shutdown tears down A's connection, which releases the range
    // lock, which lets B's parked write finish; its reply must be
    // flushed before B's socket closes. The three queued writes were
    // never executed and must come back as the typed notice.
    net.shutdown();

    in_flight
        .wait()
        .expect("the in-flight write must complete and its reply must be drained");
    for t in queued {
        match t.wait() {
            Err(NetError::Shutdown) => {}
            other => panic!("queued request expected the typed shutdown notice, got {other:?}"),
        }
    }
}

#[test]
fn wrong_organization_round_trips_the_full_error_chain() {
    let volume = volume();
    fill_ss(&volume, "queue", 4);
    let (_net, addr) = serve(volume);
    let client = NetClient::connect_tcp(&addr).unwrap();
    match client.open_sequential("queue") {
        Err(NetError::Server(ServerError::Core(CoreError::WrongOrganization {
            expected,
            actual,
        }))) => {
            assert!(!expected.is_empty());
            assert_eq!(actual, Organization::SelfScheduledSeq);
        }
        other => panic!("expected WrongOrganization, got {other:?}"),
    }
}
