//! A failure campaign: drives fail one after another on the schedule the
//! exponential model draws, and after each failure the system detects,
//! serves degraded, rebuilds onto a replacement, and scrubs clean —
//! sustained over many events, the operational story behind the paper's
//! reliability arithmetic.

use pario_fs::{FileSpec, Volume, VolumeConfig};
use pario_layout::LayoutSpec;
use pario_reliability::{failure_schedule, rebuild_parity_slot, scrub, PAPER_DEVICE_MTBF_HOURS};

const BS: usize = 512;

#[test]
fn survive_a_decade_of_failures() {
    let devices = 5usize;
    let v = Volume::create_in_memory(VolumeConfig {
        devices,
        device_blocks: 1024,
        block_size: BS,
    })
    .unwrap();
    let f = v
        .create_file(FileSpec::new(
            "archive",
            BS,
            1,
            LayoutSpec::Parity {
                data_devices: 4,
                rotated: true,
            },
        ))
        .unwrap();
    let n = 64u64;
    for r in 0..n {
        f.write_record(r, &vec![(r % 251) as u8 + 1; BS]).unwrap();
    }

    // Ten simulated years of failures on 5 drives at the paper's MTBF.
    // Each year draws a fresh schedule (replaced drives can fail again);
    // expectation is 5 * 8,760 / 30,000 ≈ 1.5 events per year.
    let events: Vec<_> = (0..10)
        .flat_map(|year| failure_schedule(devices, PAPER_DEVICE_MTBF_HOURS, 8_760.0, 100 + year))
        .collect();
    assert!(
        events.len() >= 8,
        "seeded schedules should produce a healthy number of failures, got {}",
        events.len()
    );

    let mut buf = vec![0u8; BS];
    let mut generation = 0u64;
    for (k, ev) in events.iter().enumerate() {
        // Drive dies.
        v.device(ev.device).fail();

        // Degraded operation: every record readable; one record updated
        // each generation to prove writes continue too.
        for r in 0..n {
            f.read_record(r, &mut buf).unwrap();
        }
        generation += 1;
        f.write_record(generation % n, &vec![(generation % 250) as u8 + 1; BS])
            .unwrap();

        // Replacement arrives blank; rebuild and scrub.
        v.device(ev.device).heal();
        let zero = vec![0u8; BS];
        for b in 0..v.device(ev.device).num_blocks() {
            v.device(ev.device).write_block(b, &zero).unwrap();
        }
        rebuild_parity_slot(&f, ev.device).unwrap();
        assert!(
            scrub(&f).unwrap().is_empty(),
            "event {k} (device {}): scrub dirty after rebuild",
            ev.device
        );
    }

    // Final content check: every record present; the per-generation
    // updates took effect.
    for r in 0..n {
        f.read_record(r, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == buf[0]), "record {r} torn");
        assert_ne!(buf[0], 0, "record {r} lost");
    }
}
