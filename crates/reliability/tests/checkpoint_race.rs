//! Regression for the checkpoint/journal lost-durability race: a
//! checkpoint that snapshots the directory and then resets the intent
//! journal must never discard the record of a metadata operation that
//! completed (and was acknowledged durable) in between. Workers hammer
//! create/grow/remove until a stop flag that is raised right after the
//! final checkpoint, so that checkpoint races live operation windows
//! and the simulated crash that follows has no later checkpoint to
//! paper over a discarded record. After remount the volume must hold
//! exactly the acknowledged directory state and audit clean.

use std::sync::atomic::{AtomicBool, Ordering};

use pario_disk::mem_array;
use pario_fs::{FileSpec, Volume};
use pario_layout::LayoutSpec;
use pario_reliability::audit_volume;

const BS: usize = 256;

fn directory_state(v: &Volume) -> Vec<(String, u64)> {
    let mut state: Vec<(String, u64)> = v
        .list()
        .into_iter()
        .map(|n| {
            let f = v.open(&n).unwrap();
            (n, f.nblocks())
        })
        .collect();
    state.sort();
    state
}

#[test]
fn checkpoints_racing_metadata_ops_lose_nothing_acked() {
    for round in 0..8 {
        let devs = mem_array(4, 16384, BS);
        let v = Volume::new(devs.clone()).unwrap();
        // A wide directory makes every checkpoint snapshot slow
        // (hundreds of metas to serialise), stretching the window in
        // which a racing operation can complete and be lost. Bounded so
        // the serialised image always fits a superblock slot.
        for i in 0..200 {
            v.create_file(
                FileSpec::new(
                    &format!("pad-{i}"),
                    BS,
                    1,
                    LayoutSpec::Striped {
                        devices: 4,
                        unit: 1,
                    },
                )
                .initial_records(1),
            )
            .unwrap();
        }
        let stop = AtomicBool::new(false);
        crossbeam::thread::scope(|s| {
            for t in 0..3u64 {
                let v = v.clone();
                let stop = &stop;
                s.spawn(move |_| {
                    // Cycle over a fixed set of names so the directory
                    // (and the superblock image) stays bounded no
                    // matter how long the checkpointer takes.
                    for k in 0..20_000u64 {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let name = format!("f-{t}-{}", k % 20);
                        if k >= 20 {
                            v.remove(&name).unwrap();
                        }
                        let f = v
                            .create_file(FileSpec::new(
                                &name,
                                BS,
                                1,
                                LayoutSpec::Striped {
                                    devices: 4,
                                    unit: 1,
                                },
                            ))
                            .unwrap();
                        // Every record extends the file: each write is
                        // a journaled grow racing the checkpointer.
                        for r in 0..8u64 {
                            f.write_record(r, &[t as u8 + 1; BS]).unwrap();
                        }
                    }
                });
            }
            // The checkpointer races sync_meta against the operation
            // windows; the moment its last checkpoint returns, stop the
            // workers so nothing can checkpoint again before the crash.
            for _ in 0..30 {
                v.sync_meta().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
        // Every operation above returned, so with journaling enabled
        // all of them are durable. Capture the acknowledged state,
        // crash without a teardown checkpoint, and remount.
        let acked = directory_state(&v);
        v.abandon();
        drop(v);
        let v2 = Volume::mount(devs).unwrap();
        assert_eq!(
            directory_state(&v2),
            acked,
            "round {round}: acknowledged metadata lost or resurrected"
        );
        let report = audit_volume(&v2).unwrap();
        assert!(report.is_clean(), "round {round}: {:?}", report.errors);
    }
}
