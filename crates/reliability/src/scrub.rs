//! Parity scrubbing and cross-device consistency checking.
//!
//! The paper's §5 warning: "if a single drive in a parallel file system
//! fails, it is not sufficient to restore just that disk from backups.
//! Since each drive contains a slice of every file, all of the disks will
//! have to be rolled back to the same point in time in order to maintain
//! consistency." A parity scrub makes the inconsistency *visible*: a
//! stripe whose parity disagrees with its data blocks has been torn by a
//! partial rollback (or by updates that bypassed parity maintenance, as
//! independently-accessed PS/IS layouts would — the reason the paper says
//! parity "does not appear to be applicable" there).

use pario_fs::{FsError, RawFile, Result};
use pario_layout::{LayoutSpec, ParityPlacement, ParityStriped};

use pario_disk::DeviceRef;

fn parity_model(raw: &RawFile) -> Result<ParityStriped> {
    match raw.meta_snapshot().layout {
        LayoutSpec::Parity {
            data_devices,
            rotated,
        } => Ok(ParityStriped::new(
            data_devices,
            if rotated {
                ParityPlacement::Rotated
            } else {
                ParityPlacement::Dedicated
            },
        )),
        _ => Err(FsError::BadSpec("scrub needs a parity-striped file".into())),
    }
}

/// Verify every stripe of a parity-protected file; returns the stripe
/// indices whose parity does not match their data.
pub fn scrub(raw: &RawFile) -> Result<Vec<u64>> {
    let ps = parity_model(raw)?;
    let _quiesce = raw.lock_stripes();
    let total = raw.nblocks();
    let bs = raw.block_size();
    let mut acc = vec![0u8; bs];
    let mut buf = vec![0u8; bs];
    let mut bad = Vec::new();
    for s in 0..ps.stripes(total) {
        acc.fill(0);
        for (_, loc) in ps.stripe_data(s, total) {
            raw.read_device_block(loc.device, loc.block, &mut buf)?;
            for (a, b) in acc.iter_mut().zip(&buf) {
                *a ^= b;
            }
        }
        let ploc = ps.parity_location(s);
        raw.read_device_block(ploc.device, ploc.block, &mut buf)?;
        if acc != buf {
            bad.push(s);
        }
    }
    Ok(bad)
}

/// Scrub-and-repair: find blocks whose reads fail with
/// [`Corruption`](pario_disk::DiskError::Corruption) and reconstruct
/// each from its stripe peers in place. Handles any number of corrupt
/// blocks as long as no stripe has more than one. Returns the number of
/// blocks repaired.
pub fn repair(raw: &RawFile) -> Result<u64> {
    use pario_disk::DiskError;
    let ps = parity_model(raw)?;
    let _quiesce = raw.lock_stripes();
    let total = raw.nblocks();
    let bs = raw.block_size();
    let mut buf = vec![0u8; bs];
    let mut acc = vec![0u8; bs];
    let mut repaired = 0;
    for s in 0..ps.stripes(total) {
        // Locations participating in this stripe: data members + parity.
        let mut locs: Vec<pario_layout::PhysBlock> = ps
            .stripe_data(s, total)
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        locs.push(ps.parity_location(s));
        let mut bad: Option<pario_layout::PhysBlock> = None;
        for &loc in &locs {
            match raw.read_device_block(loc.device, loc.block, &mut buf) {
                Ok(()) => {}
                Err(FsError::Disk(DiskError::Corruption { .. })) => {
                    if bad.replace(loc).is_some() {
                        return Err(FsError::Meta(format!(
                            "stripe {s} has multiple corrupt blocks; \
                             parity cannot repair it"
                        )));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(bad_loc) = bad {
            acc.fill(0);
            for &loc in &locs {
                if loc == bad_loc {
                    continue;
                }
                raw.read_device_block(loc.device, loc.block, &mut buf)?;
                for (a, b) in acc.iter_mut().zip(&buf) {
                    *a ^= b;
                }
            }
            raw.write_device_block(bad_loc.device, bad_loc.block, &acc)?;
            repaired += 1;
        }
    }
    Ok(repaired)
}

/// Copy every block of a device into memory — a point-in-time "backup".
pub fn snapshot_device(dev: &DeviceRef) -> Result<Vec<u8>> {
    let bs = dev.block_size();
    let mut image = vec![0u8; bs * dev.num_blocks() as usize];
    for b in 0..dev.num_blocks() {
        dev.read_block(b, &mut image[b as usize * bs..(b as usize + 1) * bs])?;
    }
    Ok(image)
}

/// Restore a device from a snapshot taken by [`snapshot_device`] —
/// deliberately *only this device*, to reproduce the paper's partial-
/// rollback inconsistency.
pub fn restore_device(dev: &DeviceRef, image: &[u8]) -> Result<()> {
    let bs = dev.block_size();
    assert_eq!(image.len(), bs * dev.num_blocks() as usize);
    for b in 0..dev.num_blocks() {
        dev.write_block(b, &image[b as usize * bs..(b as usize + 1) * bs])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_fs::{FileSpec, Volume, VolumeConfig};

    const BS: usize = 256;

    fn setup() -> (Volume, RawFile) {
        let v = Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 256,
            block_size: BS,
        })
        .unwrap();
        let f = v
            .create_file(FileSpec::new(
                "p",
                BS,
                1,
                LayoutSpec::Parity {
                    data_devices: 3,
                    rotated: true,
                },
            ))
            .unwrap();
        for r in 0..24u64 {
            f.write_record(r, &vec![(r + 1) as u8; BS]).unwrap();
        }
        (v, f)
    }

    #[test]
    fn clean_file_scrubs_clean() {
        let (_v, f) = setup();
        assert!(scrub(&f).unwrap().is_empty());
    }

    #[test]
    fn bypassing_parity_maintenance_is_detected() {
        // Simulate the paper's independently-accessed PS/IS case: a
        // process updates "its" device directly without the parity RMW.
        let (_v, f) = setup();
        f.write_device_block(1, 3, &vec![0xEE; BS]).unwrap();
        let bad = scrub(&f).unwrap();
        assert_eq!(bad, vec![3], "the bypassed stripe must be flagged");
    }

    #[test]
    fn partial_rollback_breaks_consistency_and_full_rollback_heals_it() {
        let (v, f) = setup();
        // Point-in-time backup of ALL devices.
        let backups: Vec<Vec<u8>> = (0..4)
            .map(|d| snapshot_device(&v.device(d)).unwrap())
            .collect();
        // More (parity-coherent) updates after the backup.
        for r in 0..24u64 {
            f.write_record(r, &vec![(r + 101) as u8; BS]).unwrap();
        }
        assert!(scrub(&f).unwrap().is_empty());
        // Restore ONLY device 2 from backup — the paper's mistake.
        restore_device(&v.device(2), &backups[2]).unwrap();
        let bad = scrub(&f).unwrap();
        assert!(!bad.is_empty(), "single-device restore must tear stripes");
        // Rolling back the REMAINING devices to the same point restores
        // consistency — "all of the disks will have to be rolled back".
        for d in [0usize, 1, 3] {
            restore_device(&v.device(d), &backups[d]).unwrap();
        }
        assert!(scrub(&f).unwrap().is_empty());
        // And the data is the pre-update data.
        let mut buf = vec![0u8; BS];
        f.read_record(5, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 6));
    }

    #[test]
    fn repair_fixes_corrupt_blocks() {
        use crate::checksum::ChecksumDevice;
        use pario_disk::{DeviceRef, MemDisk};
        use std::sync::Arc;
        let raw_devs: Vec<Arc<MemDisk>> = (0..4)
            .map(|i| Arc::new(MemDisk::named(&format!("m{i}"), 256, BS)))
            .collect();
        let wrapped: Vec<DeviceRef> = raw_devs
            .iter()
            .map(|m| Arc::new(ChecksumDevice::new(Arc::clone(m) as DeviceRef)) as DeviceRef)
            .collect();
        let v = Volume::new(wrapped).unwrap();
        let f = v
            .create_file(FileSpec::new(
                "p",
                BS,
                1,
                LayoutSpec::Parity {
                    data_devices: 3,
                    rotated: true,
                },
            ))
            .unwrap();
        for r in 0..24u64 {
            f.write_record(r, &vec![(r + 1) as u8; BS]).unwrap();
        }
        // Corrupt three blocks on three devices (distinct stripes).
        let meta = f.meta_snapshot();
        for (slot, dblock, bit) in [(0usize, 1u64, 5usize), (1, 3, 77), (3, 6, 900)] {
            let abs = pario_fs::resolve(&meta.extents[slot], dblock);
            raw_devs[slot].corrupt_bit(abs, bit);
        }
        let repaired = repair(&f).unwrap();
        assert_eq!(repaired, 3);
        // Everything reads directly (no degraded path needed) and a
        // second repair finds nothing.
        let mut buf = vec![0u8; BS];
        for r in 0..24u64 {
            f.read_record(r, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == (r + 1) as u8), "record {r}");
        }
        assert_eq!(repair(&f).unwrap(), 0);
    }

    #[test]
    fn scrub_rejects_non_parity_files() {
        let v = Volume::create_in_memory(VolumeConfig {
            devices: 2,
            device_blocks: 128,
            block_size: BS,
        })
        .unwrap();
        let f = v
            .create_file(FileSpec::new(
                "s",
                BS,
                1,
                LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            ))
            .unwrap();
        assert!(scrub(&f).is_err());
    }
}
