//! # pario-reliability — failure, redundancy, recovery
//!
//! The paper's §5 identifies reliability as the limiting factor on I/O
//! parallelism: MTBF falls linearly in device count, parity handles a
//! single failed drive for striped files but not independently-accessed
//! layouts, shadowing is the expensive alternative, and restoring one
//! drive from backup tears cross-device consistency. This crate makes
//! each of those statements executable:
//!
//! * [`mtbf`] analytics reproducing the paper's 10-device / 100-device
//!   arithmetic, with a Monte-Carlo cross-check.
//! * [`ChecksumDevice`] — single-bit-error detection; combined with the
//!   file layer's parity reconstruction it *corrects* bit errors.
//! * [`rebuild_parity_slot`] / [`resync_shadow`] / [`rebuild_device`] —
//!   recovery after drive replacement.
//! * [`rebuild_device_online`] — the same recovery driven through the
//!   volume's health state machine in throttled bursts, so foreground
//!   I/O keeps flowing while the drive rebuilds.
//! * [`scrub`] + [`snapshot_device`] / [`restore_device`] — the
//!   partial-rollback consistency demonstration.
//! * [`audit_volume`] — volume-wide allocator/extent/directory
//!   agreement, the invariant the crash-recovery sweep asserts after
//!   every simulated crash and remount.
//! * [`failure_schedule`] — deterministic exponential failure campaigns.
//!
//! ```
//! use pario_reliability::{system_mtbf_hours, PAPER_DEVICE_MTBF_HOURS};
//!
//! // The paper's arithmetic: ten 30,000-hour drives fail every 3,000 h.
//! assert_eq!(system_mtbf_hours(PAPER_DEVICE_MTBF_HOURS, 10), 3_000.0);
//! ```

#![warn(missing_docs)]

mod audit;
mod checksum;
mod inject;
pub mod mtbf;
mod online;
mod rebuild;
mod scrub;

pub use audit::{audit_volume, AuditReport};
pub use checksum::{fnv1a, ChecksumDevice};
pub use inject::{apply_failures, failure_schedule, FailureEvent};
pub use mtbf::{
    expected_failures, monte_carlo_mttf, paper_table, system_mtbf_hours, MtbfRow, HOURS_PER_YEAR,
    PAPER_DEVICE_MTBF_HOURS,
};
pub use online::{rebuild_device_online, RebuildThrottle};
pub use rebuild::{rebuild_device, rebuild_parity_slot, resync_shadow, RebuildReport};
pub use scrub::{repair, restore_device, scrub, snapshot_device};
