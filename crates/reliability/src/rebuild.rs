//! Device rebuild: recovering a replaced drive's contents.
//!
//! Parity files rebuild the lost slot by XOR over each stripe ("complete
//! failure of a single drive", §5); shadowed files re-synchronise from
//! the surviving copy. [`rebuild_device`] sweeps a whole volume and
//! reports which files were recoverable — unprotected files are exactly
//! the paper's warning case.

use pario_fs::{FsError, RawFile, Result, Volume};
use pario_layout::{LayoutSpec, ParityPlacement, ParityStriped};

fn xor_into(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

fn parity_model(raw: &RawFile) -> Option<ParityStriped> {
    match raw.meta_snapshot().layout {
        LayoutSpec::Parity {
            data_devices,
            rotated,
        } => Some(ParityStriped::new(
            data_devices,
            if rotated {
                ParityPlacement::Rotated
            } else {
                ParityPlacement::Dedicated
            },
        )),
        _ => None,
    }
}

/// Rebuild layout slot `failed_slot` of a parity-protected file onto its
/// (replaced, healed) device. Returns blocks rebuilt.
///
/// The file's stripe lock is held throughout, quiescing concurrent
/// parity updates.
pub fn rebuild_parity_slot(raw: &RawFile, failed_slot: usize) -> Result<u64> {
    let ps = parity_model(raw).ok_or_else(|| {
        FsError::BadSpec("rebuild_parity_slot needs a parity-striped file".into())
    })?;
    if failed_slot > ps.stripe_width() {
        return Err(FsError::BadSpec(format!(
            "slot {failed_slot} out of range for {}+1 devices",
            ps.stripe_width()
        )));
    }
    let _quiesce = raw.lock_stripes();
    let total = raw.nblocks();
    let bs = raw.block_size();
    let mut acc = vec![0u8; bs];
    let mut buf = vec![0u8; bs];
    let mut rebuilt = 0;
    for s in 0..ps.stripes(total) {
        let pdev = ps.parity_device(s);
        let members = ps.stripe_data(s, total);
        let lost_here =
            pdev == failed_slot || members.iter().any(|(_, loc)| loc.device == failed_slot);
        if !lost_here {
            continue;
        }
        // XOR everything in the stripe except the lost block.
        acc.fill(0);
        if pdev != failed_slot {
            raw.read_device_block(pdev, s, &mut buf)?;
            xor_into(&mut acc, &buf);
        }
        for (_, loc) in &members {
            if loc.device == failed_slot {
                continue;
            }
            raw.read_device_block(loc.device, loc.block, &mut buf)?;
            xor_into(&mut acc, &buf);
        }
        raw.write_device_block(failed_slot, s, &acc)?;
        rebuilt += 1;
    }
    Ok(rebuilt)
}

/// Re-synchronise layout slot `slot` of a shadowed file from its mirror
/// partner. Returns blocks copied.
pub fn resync_shadow(raw: &RawFile, slot: usize) -> Result<u64> {
    let primaries = match raw.meta_snapshot().layout {
        LayoutSpec::Shadowed(inner) => inner.devices_required(),
        _ => {
            return Err(FsError::BadSpec(
                "resync_shadow needs a shadowed file".into(),
            ))
        }
    };
    let peer = if slot < primaries {
        slot + primaries
    } else {
        slot - primaries
    };
    let bs = raw.block_size();
    let mut buf = vec![0u8; bs];
    let blocks = raw.device_blocks(slot);
    for b in 0..blocks {
        raw.read_device_block(peer, b, &mut buf)?;
        raw.write_device_block(slot, b, &buf)?;
    }
    Ok(blocks)
}

/// Outcome of a volume-wide rebuild after replacing one device.
#[derive(Clone, Debug, Default)]
pub struct RebuildReport {
    /// Files recovered via parity, with blocks rebuilt.
    pub parity_rebuilt: Vec<(String, u64)>,
    /// Files re-synchronised from shadows, with blocks copied.
    pub shadow_resynced: Vec<(String, u64)>,
    /// Files on the device with no redundancy — data lost, exactly the
    /// paper's warning for independently-accessed PS/IS layouts.
    pub unprotected: Vec<String>,
    /// Files not touching the device at all.
    pub unaffected: Vec<String>,
}

/// Rebuild every file on `vol` that stored data on (replaced, healed)
/// device `device_idx`.
pub fn rebuild_device(vol: &Volume, device_idx: usize) -> Result<RebuildReport> {
    let mut report = RebuildReport::default();
    for name in vol.list() {
        let raw = vol.open(&name)?;
        let meta = raw.meta_snapshot();
        let slot = meta.device_map.iter().position(|&d| d == device_idx);
        let Some(slot) = slot else {
            report.unaffected.push(name);
            continue;
        };
        match &meta.layout {
            LayoutSpec::Parity { .. } => {
                let n = rebuild_parity_slot(&raw, slot)?;
                report.parity_rebuilt.push((name, n));
            }
            LayoutSpec::Shadowed(_) => {
                let n = resync_shadow(&raw, slot)?;
                report.shadow_resynced.push((name, n));
            }
            _ => report.unprotected.push(name),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_fs::{FileSpec, VolumeConfig};

    const BS: usize = 256;

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 6,
            device_blocks: 256,
            block_size: BS,
        })
        .unwrap()
    }

    fn rec(tag: u64) -> Vec<u8> {
        (0..BS).map(|i| (tag as usize * 41 + i) as u8).collect()
    }

    fn blank(dev: &pario_disk::DeviceRef) {
        let zero = vec![0u8; BS];
        for b in 0..dev.num_blocks() {
            dev.write_block(b, &zero).unwrap();
        }
    }

    fn parity_file(v: &Volume, name: &str, rotated: bool, n: u64) -> RawFile {
        let f = v
            .create_file(FileSpec::new(
                name,
                BS,
                1,
                pario_layout::LayoutSpec::Parity {
                    data_devices: 3,
                    rotated,
                },
            ))
            .unwrap();
        for r in 0..n {
            f.write_record(r, &rec(r)).unwrap();
        }
        f
    }

    #[test]
    fn parity_rebuild_restores_replaced_device() {
        for rotated in [false, true] {
            for dead_slot in 0..4usize {
                let v = vol();
                let f = parity_file(&v, "p", rotated, 24);
                // Fail, replace with a blank, rebuild.
                let dev = v.device(dead_slot);
                dev.fail();
                // (writes during the outage keep parity coherent)
                f.write_record(2, &rec(99)).unwrap();
                dev.heal();
                blank(&dev); // replacement drive arrives blank
                let rebuilt = rebuild_parity_slot(&f, dead_slot).unwrap();
                assert!(rebuilt > 0, "slot {dead_slot} had blocks to rebuild");
                // All devices healthy: every record readable *directly*.
                let mut buf = vec![0u8; BS];
                for r in 0..24u64 {
                    f.read_record(r, &mut buf).unwrap();
                    let expect = if r == 2 { rec(99) } else { rec(r) };
                    assert_eq!(buf, expect, "rotated={rotated} slot={dead_slot} rec {r}");
                }
            }
        }
    }

    #[test]
    fn shadow_resync_restores_mirror() {
        let v = vol();
        let f = v
            .create_file(FileSpec::new(
                "sh",
                BS,
                1,
                pario_layout::LayoutSpec::Shadowed(Box::new(pario_layout::LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                })),
            ))
            .unwrap();
        for r in 0..16u64 {
            f.write_record(r, &rec(r)).unwrap();
        }
        // Lose shadow device 2 (mirror of primary 0); writes continue.
        v.device(2).fail();
        f.write_record(0, &rec(77)).unwrap();
        v.device(2).heal();
        blank(&v.device(2)); // replacement mirror arrives blank
        let copied = resync_shadow(&f, 2).unwrap();
        assert!(copied >= 8);
        // Now fail the PRIMARY: reads must come from the resynced shadow.
        v.device(0).fail();
        let mut buf = vec![0u8; BS];
        for r in 0..16u64 {
            f.read_record(r, &mut buf).unwrap();
            let expect = if r == 0 { rec(77) } else { rec(r) };
            assert_eq!(buf, expect, "record {r}");
        }
    }

    #[test]
    fn volume_rebuild_classifies_files() {
        let v = vol();
        parity_file(&v, "prot", false, 12);
        let plain = v
            .create_file(FileSpec::new(
                "plain",
                BS,
                1,
                pario_layout::LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            ))
            .unwrap();
        plain.write_record(0, &rec(1)).unwrap();
        let elsewhere = v
            .create_file(
                FileSpec::new(
                    "elsewhere",
                    BS,
                    1,
                    pario_layout::LayoutSpec::Striped {
                        devices: 1,
                        unit: 1,
                    },
                )
                .device_map(vec![5]),
            )
            .unwrap();
        elsewhere.write_record(0, &rec(2)).unwrap();

        // Replace device 1 (blank) and rebuild.
        v.device(1).heal();
        let report = rebuild_device(&v, 1).unwrap();
        assert_eq!(report.parity_rebuilt.len(), 1);
        assert_eq!(report.parity_rebuilt[0].0, "prot");
        assert_eq!(report.unprotected, vec!["plain".to_string()]);
        assert_eq!(report.unaffected, vec!["elsewhere".to_string()]);
    }

    #[test]
    fn rebuild_rejects_wrong_layouts() {
        let v = vol();
        let plain = v
            .create_file(FileSpec::new(
                "x",
                BS,
                1,
                pario_layout::LayoutSpec::Striped {
                    devices: 1,
                    unit: 1,
                },
            ))
            .unwrap();
        assert!(rebuild_parity_slot(&plain, 0).is_err());
        assert!(resync_shadow(&plain, 0).is_err());
    }
}
