//! Volume-wide metadata audit: allocator / extent agreement.
//!
//! Crash recovery is only as trustworthy as the invariants it restores.
//! After any mount — clean, replayed, or rolled back — the volume must
//! satisfy a small set of accounting identities: every allocated block
//! is owned by exactly one file extent (or the reserved meta region),
//! extents never overlap or escape their device, per-device free counts
//! plus owned blocks add up to the device size, and each file's extents
//! cover every logical block its layout maps. [`audit_volume`] checks
//! all of them and reports every violation, so the crash-sweep harness
//! can assert a single predicate after each simulated crash/remount.

use pario_fs::{extents_len, Extent, Result, Volume};

/// Outcome of a metadata audit. `errors` is empty iff the volume's
/// allocator, directory, and extents are mutually consistent.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Number of files examined.
    pub files: usize,
    /// Total extents examined across all files and devices.
    pub extents: usize,
    /// Human-readable descriptions of every violated invariant.
    pub errors: Vec<String>,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Audit a volume's metadata for internal consistency.
///
/// Checks, per device:
/// 1. every extent lies inside the device and outside the reserved
///    meta region (device 0 only);
/// 2. no two extents overlap (across all files);
/// 3. `owned + free + reserved == device blocks` — the allocator and
///    the directory agree on every block's ownership.
///
/// And per file:
/// 4. each layout slot's extents cover exactly the blocks the layout
///    maps for the file's `nblocks` logical blocks;
/// 5. the slot's device index (via `device_map`) is a real device.
///
/// Violations are collected, not short-circuited, so a single audit of
/// a corrupted volume reports everything at once. I/O errors while
/// reading metadata surface as `Err`; inconsistencies do not.
pub fn audit_volume(vol: &Volume) -> Result<AuditReport> {
    let files = vol.open_all()?;
    let ndev = vol.num_devices();
    let meta_reserved = vol.meta_region_blocks();
    let mut errors = Vec::new();
    let mut extents_checked = 0usize;

    // Ownership map: (start, len, file, slot) per device, for overlap
    // and accounting checks.
    let mut owned: Vec<Vec<(Extent, String)>> = vec![Vec::new(); ndev];

    for f in &files {
        let meta = f.meta_snapshot();
        if meta.extents.len() != meta.device_map.len() {
            errors.push(format!(
                "file '{}': {} extent slots but {} device-map entries",
                meta.name,
                meta.extents.len(),
                meta.device_map.len()
            ));
        }
        // Per-slot coverage demanded by the layout for nblocks logical
        // blocks: the highest mapped per-device block index + 1.
        let layout = f.layout();
        let mut need = vec![0u64; meta.extents.len()];
        for l in 0..meta.nblocks {
            let p = layout.map(l);
            if p.device >= need.len() {
                errors.push(format!(
                    "file '{}': layout maps logical block {} to slot {} \
                     but only {} slots exist",
                    meta.name,
                    l,
                    p.device,
                    need.len()
                ));
                continue;
            }
            need[p.device] = need[p.device].max(p.block + 1);
        }
        for (slot, exts) in meta.extents.iter().enumerate() {
            extents_checked += exts.len();
            let dev = match meta.device_map.get(slot) {
                Some(&d) if d < ndev => d,
                got => {
                    errors.push(format!(
                        "file '{}' slot {slot}: device map entry {:?} out of \
                         range ({} devices)",
                        meta.name, got, ndev
                    ));
                    continue;
                }
            };
            let have = extents_len(exts);
            if have < need[slot] {
                errors.push(format!(
                    "file '{}' slot {slot}: layout needs {} blocks on device \
                     {dev} but extents hold {have}",
                    meta.name, need[slot]
                ));
            }
            let dev_blocks = vol.device(dev).num_blocks();
            for e in exts {
                if e.len == 0 {
                    errors.push(format!(
                        "file '{}' slot {slot}: zero-length extent at {} on \
                         device {dev}",
                        meta.name, e.start
                    ));
                }
                if e.end() > dev_blocks {
                    errors.push(format!(
                        "file '{}' slot {slot}: extent [{}, {}) exceeds device \
                         {dev} ({dev_blocks} blocks)",
                        meta.name,
                        e.start,
                        e.end()
                    ));
                }
                if dev == 0 && e.start < meta_reserved {
                    errors.push(format!(
                        "file '{}' slot {slot}: extent [{}, {}) intrudes into \
                         the {meta_reserved}-block reserved meta region",
                        meta.name,
                        e.start,
                        e.end()
                    ));
                }
                owned[dev].push((*e, format!("{}#{slot}", meta.name)));
            }
        }
    }

    // Overlap + accounting per device.
    let free = vol.free_blocks();
    for (dev, owners) in owned.iter_mut().enumerate() {
        owners.sort_by_key(|(e, _)| e.start);
        for pair in owners.windows(2) {
            let (a, ao) = &pair[0];
            let (b, bo) = &pair[1];
            if b.start < a.end() {
                errors.push(format!(
                    "device {dev}: extent [{}, {}) of {ao} overlaps \
                     [{}, {}) of {bo}",
                    a.start,
                    a.end(),
                    b.start,
                    b.end()
                ));
            }
        }
        let owned_blocks: u64 = owners.iter().map(|(e, _)| e.len).sum();
        let reserved = if dev == 0 { meta_reserved } else { 0 };
        let total = vol.device(dev).num_blocks();
        let accounted = owned_blocks + free[dev] + reserved;
        if accounted != total {
            errors.push(format!(
                "device {dev}: owned {owned_blocks} + free {} + reserved \
                 {reserved} = {accounted}, but device has {total} blocks",
                free[dev]
            ));
        }
    }

    // Journal cursor sanity: the pending region must fit its capacity.
    let status = vol.meta_status();
    if status.journal_pending_blocks > status.journal_capacity_blocks {
        errors.push(format!(
            "journal cursor {} exceeds capacity {}",
            status.journal_pending_blocks, status.journal_capacity_blocks
        ));
    }

    Ok(AuditReport {
        files: files.len(),
        extents: extents_checked,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_fs::{FileSpec, VolumeConfig};
    use pario_layout::LayoutSpec;

    const BS: usize = 256;

    fn volume() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 512,
            block_size: BS,
        })
        .unwrap()
    }

    #[test]
    fn fresh_volume_audits_clean() {
        let v = volume();
        let r = audit_volume(&v).unwrap();
        assert!(r.is_clean(), "{:?}", r.errors);
        assert_eq!(r.files, 0);
    }

    #[test]
    fn populated_volume_audits_clean_through_growth_and_removal() {
        let v = volume();
        let f = v
            .create_file(FileSpec::new(
                "a",
                64,
                4,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 2,
                },
            ))
            .unwrap();
        let g = v
            .create_file(FileSpec::new(
                "b",
                64,
                4,
                LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                })),
            ))
            .unwrap();
        // Force multiple growth rounds so extents fragment.
        for r in 0..200u64 {
            f.write_record(r, &[r as u8; 64]).unwrap();
            g.write_record(r, &[r as u8; 64]).unwrap();
        }
        drop(g);
        v.remove("b").unwrap();
        let r = audit_volume(&v).unwrap();
        assert!(r.is_clean(), "{:?}", r.errors);
        assert_eq!(r.files, 1);
        assert!(r.extents >= 1);
    }

    #[test]
    fn audit_survives_remount() {
        let devices = pario_disk::mem_array(4, 512, BS);
        let v = Volume::new(devices.clone()).unwrap();
        let f = v
            .create_file(FileSpec::new(
                "a",
                64,
                4,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 1,
                },
            ))
            .unwrap();
        for r in 0..100u64 {
            f.write_record(r, &[7u8; 64]).unwrap();
        }
        v.sync_meta().unwrap();
        drop(f);
        drop(v);
        let v = Volume::mount(devices).unwrap();
        let r = audit_volume(&v).unwrap();
        assert!(r.is_clean(), "{:?}", r.errors);
        assert_eq!(r.files, 1);
    }
}
