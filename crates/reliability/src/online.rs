//! Online rebuild: recovering a replaced drive *while the volume keeps
//! serving*.
//!
//! The offline path ([`crate::rebuild_device`]) holds each file's stripe
//! lock for the whole sweep — correct, but foreground traffic stalls for
//! the duration. The online path here drives the same per-stripe /
//! per-block replay through the volume's health state machine instead:
//!
//! 1. `begin_rebuild(device)` — the device flips to `Rebuilding`;
//!    foreground reads route around it (its media is stale) and shadow
//!    writes switch to the stripe-locked regime.
//! 2. `heal()` the device so its media accepts I/O again.
//! 3. Per file, `quiesce_io()` — wait out any I/O that sampled the old
//!    health state (Dekker-style counter handshake).
//! 4. Replay redundancy in **bursts**: each burst takes the stripe lock,
//!    copies up to [`RebuildThrottle::burst_blocks`] blocks, releases the
//!    lock and sleeps [`RebuildThrottle::pause`] — so foreground writers
//!    interleave with the sweep and throughput never drops to zero.
//! 5. `complete_rebuild(device)` — back to `Healthy`, unless the device
//!    failed again mid-rebuild (the racing failure report wins).

use std::time::Duration;

use pario_disk::DiskError;
use pario_fs::{FsError, RawFile, Result, Volume};
use pario_layout::{LayoutSpec, ParityPlacement, ParityStriped};

use crate::rebuild::RebuildReport;

fn xor_into(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Pacing for the online rebuild sweep: how much work each
/// stripe-locked burst does, and how long the sweep yields between
/// bursts so foreground traffic keeps flowing.
#[derive(Copy, Clone, Debug)]
pub struct RebuildThrottle {
    /// Blocks replayed per stripe-locked burst.
    pub burst_blocks: u64,
    /// Sleep between bursts (the foreground window).
    pub pause: Duration,
}

impl Default for RebuildThrottle {
    fn default() -> RebuildThrottle {
        RebuildThrottle {
            burst_blocks: 8,
            pause: Duration::from_micros(200),
        }
    }
}

/// Rebuild layout slot `slot` of a parity file in throttled bursts.
/// The stripe lock is taken per burst, not for the whole sweep.
fn online_rebuild_parity_slot(
    raw: &RawFile,
    slot: usize,
    throttle: RebuildThrottle,
) -> Result<u64> {
    let ps = match raw.meta_snapshot().layout {
        LayoutSpec::Parity {
            data_devices,
            rotated,
        } => ParityStriped::new(
            data_devices,
            if rotated {
                ParityPlacement::Rotated
            } else {
                ParityPlacement::Dedicated
            },
        ),
        _ => {
            return Err(FsError::BadSpec(
                "online parity rebuild needs a parity-striped file".into(),
            ))
        }
    };
    let total = raw.nblocks();
    let bs = raw.block_size();
    let mut acc = vec![0u8; bs];
    let mut buf = vec![0u8; bs];
    let mut rebuilt = 0u64;
    let mut s = 0u64;
    let stripes = ps.stripes(total);
    while s < stripes {
        let mut in_burst = 0u64;
        {
            let _g = raw.lock_stripes();
            while s < stripes && in_burst < throttle.burst_blocks.max(1) {
                let stripe = s;
                s += 1;
                let pdev = ps.parity_device(stripe);
                let members = ps.stripe_data(stripe, total);
                let lost_here = pdev == slot || members.iter().any(|(_, loc)| loc.device == slot);
                if !lost_here {
                    continue;
                }
                acc.fill(0);
                if pdev != slot {
                    raw.read_device_block(pdev, stripe, &mut buf)?;
                    xor_into(&mut acc, &buf);
                }
                for (_, loc) in &members {
                    if loc.device == slot {
                        continue;
                    }
                    raw.read_device_block(loc.device, loc.block, &mut buf)?;
                    xor_into(&mut acc, &buf);
                }
                raw.write_device_block(slot, stripe, &acc)?;
                rebuilt += 1;
                in_burst += 1;
            }
        }
        if s < stripes && !throttle.pause.is_zero() {
            std::thread::sleep(throttle.pause);
        }
    }
    Ok(rebuilt)
}

/// Re-synchronise layout slot `slot` of a shadowed file from its mirror
/// partner in throttled bursts. Each burst holds the stripe lock —
/// shadow writes during a rebuild take the same lock (see
/// `RawFile::enter_shadow_write` in `pario-fs`), so a live write can
/// never interleave with the copy of its own block.
fn online_resync_shadow(raw: &RawFile, slot: usize, throttle: RebuildThrottle) -> Result<u64> {
    let primaries = match raw.meta_snapshot().layout {
        LayoutSpec::Shadowed(inner) => inner.devices_required(),
        _ => {
            return Err(FsError::BadSpec(
                "online shadow resync needs a shadowed file".into(),
            ))
        }
    };
    let peer = if slot < primaries {
        slot + primaries
    } else {
        slot - primaries
    };
    let bs = raw.block_size();
    let mut buf = vec![0u8; bs];
    let blocks = raw.device_blocks(slot);
    let mut b = 0u64;
    while b < blocks {
        let burst_end = (b + throttle.burst_blocks.max(1)).min(blocks);
        {
            let _g = raw.lock_stripes();
            while b < burst_end {
                raw.read_device_block(peer, b, &mut buf)?;
                raw.write_device_block(slot, b, &buf)?;
                b += 1;
            }
        }
        if b < blocks && !throttle.pause.is_zero() {
            std::thread::sleep(throttle.pause);
        }
    }
    Ok(blocks)
}

/// Rebuild every file that stored data on device `device_idx`, online:
/// the volume keeps serving degraded I/O throughout, and foreground
/// writes interleave with the throttled replay bursts.
///
/// Drives the full health cycle `begin_rebuild` → heal → per-file
/// quiesce + replay → `complete_rebuild`. On a replay error the device
/// is marked Failed again and the error surfaces; likewise if the
/// device fails *during* the rebuild, `complete_rebuild` refuses and
/// this returns the fail-stop error instead of silently reporting
/// success.
pub fn rebuild_device_online(
    vol: &Volume,
    device_idx: usize,
    throttle: RebuildThrottle,
) -> Result<RebuildReport> {
    vol.health().begin_rebuild(device_idx);
    // Heal AFTER the flip: once media accepts I/O again, every reader
    // already routes around it and shadow writers are stripe-locked.
    vol.device(device_idx).heal();
    let sweep = || -> Result<RebuildReport> {
        let mut report = RebuildReport::default();
        for raw in vol.open_all()? {
            let name = raw.name().to_string();
            let meta = raw.meta_snapshot();
            let slot = meta.device_map.iter().position(|&d| d == device_idx);
            let Some(slot) = slot else {
                report.unaffected.push(name);
                continue;
            };
            // Drain I/O that sampled health before the flip.
            raw.quiesce_io();
            match &meta.layout {
                LayoutSpec::Parity { .. } => {
                    let n = online_rebuild_parity_slot(&raw, slot, throttle)?;
                    report.parity_rebuilt.push((name, n));
                }
                LayoutSpec::Shadowed(_) => {
                    let n = online_resync_shadow(&raw, slot, throttle)?;
                    report.shadow_resynced.push((name, n));
                }
                _ => report.unprotected.push(name),
            }
        }
        Ok(report)
    };
    match sweep() {
        Ok(report) => {
            if vol.health().complete_rebuild(device_idx) {
                Ok(report)
            } else {
                // The device failed again mid-rebuild; the racing
                // failure report wins and the rebuild did not complete.
                Err(FsError::Disk(DiskError::DeviceFailed {
                    device: format!("device {device_idx} (failed during rebuild)"),
                }))
            }
        }
        Err(e) => {
            vol.health().mark_failed(device_idx);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_fs::{FileSpec, HealthState, VolumeConfig};

    const BS: usize = 256;

    fn vol(devices: usize) -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices,
            device_blocks: 256,
            block_size: BS,
        })
        .unwrap()
    }

    fn rec(tag: u64) -> Vec<u8> {
        (0..BS).map(|i| (tag as usize * 41 + i) as u8).collect()
    }

    #[test]
    fn online_parity_rebuild_round_trips_health() {
        let v = vol(4);
        let f = v
            .create_file(FileSpec::new(
                "p",
                BS,
                1,
                LayoutSpec::Parity {
                    data_devices: 3,
                    rotated: true,
                },
            ))
            .unwrap();
        for r in 0..24u64 {
            f.write_record(r, &rec(r)).unwrap();
        }
        v.device(1).fail();
        // First touch detects the fail-stop and transitions Failed.
        let mut buf = vec![0u8; BS];
        for r in 0..24u64 {
            f.read_record(r, &mut buf).unwrap();
        }
        assert_eq!(v.device_health(1), HealthState::Failed);
        // Writes during the outage keep parity coherent.
        f.write_record(2, &rec(99)).unwrap();

        let report = rebuild_device_online(&v, 1, RebuildThrottle::default()).unwrap();
        assert_eq!(report.parity_rebuilt.len(), 1);
        assert!(report.parity_rebuilt[0].1 > 0);
        assert_eq!(v.device_health(1), HealthState::Healthy);
        let states = &v.health_snapshot()[1].transitions;
        assert_eq!(
            states,
            &vec![
                HealthState::Healthy,
                HealthState::Failed,
                HealthState::Rebuilding,
                HealthState::Healthy
            ]
        );
        for r in 0..24u64 {
            f.read_record(r, &mut buf).unwrap();
            let expect = if r == 2 { rec(99) } else { rec(r) };
            assert_eq!(buf, expect, "record {r}");
        }
    }

    #[test]
    fn online_shadow_resync_restores_mirror() {
        let v = vol(4);
        let f = v
            .create_file(FileSpec::new(
                "sh",
                BS,
                1,
                LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                })),
            ))
            .unwrap();
        for r in 0..16u64 {
            f.write_record(r, &rec(r)).unwrap();
        }
        v.device(0).fail();
        let mut buf = vec![0u8; BS];
        f.read_record(0, &mut buf).unwrap(); // detect
        assert_eq!(v.device_health(0), HealthState::Failed);
        f.write_record(0, &rec(77)).unwrap(); // survives on the mirror

        let report = rebuild_device_online(&v, 0, RebuildThrottle::default()).unwrap();
        assert_eq!(report.shadow_resynced.len(), 1);
        assert_eq!(v.device_health(0), HealthState::Healthy);
        // Kill the MIRROR: reads must come from the rebuilt primary.
        v.device(2).fail();
        for r in 0..16u64 {
            f.read_record(r, &mut buf).unwrap();
            let expect = if r == 0 { rec(77) } else { rec(r) };
            assert_eq!(buf, expect, "record {r}");
        }
    }

    #[test]
    fn failure_during_rebuild_wins() {
        let v = vol(4);
        let f = v
            .create_file(FileSpec::new(
                "sh",
                BS,
                1,
                LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                })),
            ))
            .unwrap();
        f.write_record(0, &rec(0)).unwrap();
        v.health().mark_failed(0);
        v.health().begin_rebuild(0);
        // The device dies again before the sweep finishes.
        v.health().note_error(
            0,
            &DiskError::DeviceFailed {
                device: "mem0".into(),
            },
        );
        assert!(!v.health().complete_rebuild(0));
        assert_eq!(v.device_health(0), HealthState::Failed);
    }

    #[test]
    fn foreground_writes_flow_during_online_rebuild() {
        let v = vol(4);
        let f = v
            .create_file(FileSpec::new(
                "sh",
                BS,
                1,
                LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                })),
            ))
            .unwrap();
        let n = 128u64;
        for r in 0..n {
            f.write_record(r, &rec(r)).unwrap();
        }
        v.device(1).fail();
        let mut buf = vec![0u8; BS];
        f.read_record(1, &mut buf).unwrap(); // detect -> Failed
        assert_eq!(v.device_health(1), HealthState::Failed);

        // Concurrent foreground writers churn the file while the
        // rebuild sweeps it; every write must land on both copies.
        let done = std::sync::atomic::AtomicBool::new(false);
        let wrote = std::sync::atomic::AtomicU64::new(0);
        crossbeam::thread::scope(|s| {
            let fg = s.spawn(|_| {
                let mut k = 0u64;
                while !done.load(std::sync::atomic::Ordering::SeqCst) {
                    let r = k % n;
                    f.write_record(r, &rec(1000 + r)).unwrap();
                    wrote.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    k += 1;
                }
            });
            let throttle = RebuildThrottle {
                burst_blocks: 4,
                pause: Duration::from_micros(100),
            };
            rebuild_device_online(&v, 1, throttle).unwrap();
            done.store(true, std::sync::atomic::Ordering::SeqCst);
            fg.join().unwrap();
        })
        .unwrap();
        assert_eq!(v.device_health(1), HealthState::Healthy);
        assert!(
            wrote.load(std::sync::atomic::Ordering::SeqCst) > 0,
            "foreground made progress during the rebuild"
        );
        // Every record consistent on BOTH copies: fail the mirror side
        // and read the rebuilt primaries, then vice versa.
        let readback = |dead: usize| {
            v.device(dead).fail();
            let mut buf = vec![0u8; BS];
            for r in 0..n {
                f.read_record(r, &mut buf).unwrap();
                assert!(
                    buf == rec(r) || buf == rec(1000 + r),
                    "record {r} torn with device {dead} dead"
                );
            }
            v.device(dead).heal();
        };
        readback(2);
        readback(0);
    }
}
