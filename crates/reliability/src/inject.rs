//! Failure-injection campaigns.
//!
//! Deterministic schedules of device failures drawn from the exponential
//! lifetime model, plus helpers to apply them to a real device array.
//! Experiments use these to exercise detection, degraded operation, and
//! rebuild under the failure rates the paper's §5 predicts.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pario_disk::DeviceRef;

/// One scheduled fail-stop event.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FailureEvent {
    /// Device index.
    pub device: usize,
    /// Virtual time of the failure, in hours.
    pub at_hours: f64,
}

/// Draw each device's exponential lifetime and return the failures that
/// land within `horizon_hours`, sorted by time. Each device fails at most
/// once (it is assumed replaced/rebuilt afterwards by the experiment).
pub fn failure_schedule(
    devices: usize,
    device_mtbf_hours: f64,
    horizon_hours: f64,
    seed: u64,
) -> Vec<FailureEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events: Vec<FailureEvent> = (0..devices)
        .filter_map(|d| {
            let u: f64 = rng.random();
            let t = -device_mtbf_hours * (1.0 - u).ln();
            (t <= horizon_hours).then_some(FailureEvent {
                device: d,
                at_hours: t,
            })
        })
        .collect();
    events.sort_by(|a, b| a.at_hours.total_cmp(&b.at_hours));
    events
}

/// Apply the schedule instantaneously: fail every listed device now.
pub fn apply_failures(devices: &[DeviceRef], events: &[FailureEvent]) {
    for e in events {
        devices[e.device].fail();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_disk::mem_array;

    #[test]
    fn deterministic_given_seed() {
        let a = failure_schedule(50, 30_000.0, 10_000.0, 9);
        let b = failure_schedule(50, 30_000.0, 10_000.0, 9);
        assert_eq!(a, b);
        let c = failure_schedule(50, 30_000.0, 10_000.0, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_and_within_horizon() {
        let ev = failure_schedule(100, 30_000.0, 5_000.0, 3);
        assert!(ev.windows(2).all(|w| w[0].at_hours <= w[1].at_hours));
        assert!(ev.iter().all(|e| e.at_hours <= 5_000.0));
        assert!(ev.iter().all(|e| e.device < 100));
    }

    #[test]
    fn failure_count_tracks_the_papers_rates() {
        // 100 devices at 30,000 h MTBF over two weeks (336 h): expect
        // ~1.1 failures on average. Over many seeds the mean must sit
        // near that.
        let mut total = 0usize;
        let trials = 200;
        for seed in 0..trials {
            total += failure_schedule(100, 30_000.0, 336.0, seed).len();
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (0.7..1.6).contains(&mean),
            "mean failures per two weeks = {mean}, paper predicts ~1.1"
        );
    }

    #[test]
    fn apply_fails_devices() {
        let devs = mem_array(4, 8, 64);
        let events = vec![
            FailureEvent {
                device: 1,
                at_hours: 1.0,
            },
            FailureEvent {
                device: 3,
                at_hours: 2.0,
            },
        ];
        apply_failures(&devs, &events);
        assert!(!devs[0].is_failed());
        assert!(devs[1].is_failed());
        assert!(!devs[2].is_failed());
        assert!(devs[3].is_failed());
    }
}
