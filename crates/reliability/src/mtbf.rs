//! MTBF analytics — the paper's §5 arithmetic, reproduced.
//!
//! "Assuming a MTBF of 30,000 hours for each storage device, a file
//! system containing 10 devices could be expected to fail every 3,000
//! hours (about 3 times per year, on average)… A system with 100
//! devices, on the other hand, would average more than one failure every
//! two weeks." With exponential lifetimes the system MTBF is simply the
//! device MTBF divided by the device count; a seeded Monte-Carlo
//! estimator cross-checks the closed form.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The per-device MTBF the paper assumes (commodity Winchester disks).
pub const PAPER_DEVICE_MTBF_HOURS: f64 = 30_000.0;

/// Hours in a year (the paper's "3 times per year").
pub const HOURS_PER_YEAR: f64 = 8_760.0;

/// System mean time between failures for `devices` independent devices
/// with exponential lifetimes of mean `device_mtbf_hours`.
pub fn system_mtbf_hours(device_mtbf_hours: f64, devices: u32) -> f64 {
    assert!(devices > 0);
    device_mtbf_hours / f64::from(devices)
}

/// Expected failures of any device over `period_hours`.
pub fn expected_failures(device_mtbf_hours: f64, devices: u32, period_hours: f64) -> f64 {
    period_hours / system_mtbf_hours(device_mtbf_hours, devices)
}

/// Monte-Carlo estimate of the mean time to *first* failure: draw each
/// device's exponential lifetime, take the minimum, average over
/// `trials`. Cross-checks [`system_mtbf_hours`].
pub fn monte_carlo_mttf(device_mtbf_hours: f64, devices: u32, trials: u32, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..trials {
        let mut first = f64::INFINITY;
        for _ in 0..devices {
            // Inverse-CDF exponential sample.
            let u: f64 = rng.random();
            let t = -device_mtbf_hours * (1.0 - u).ln();
            first = first.min(t);
        }
        total += first;
    }
    total / f64::from(trials)
}

/// One row of the paper's reliability argument.
#[derive(Clone, Debug)]
pub struct MtbfRow {
    /// Device count.
    pub devices: u32,
    /// Analytic system MTBF in hours.
    pub system_mtbf_hours: f64,
    /// Expected failures per year.
    pub failures_per_year: f64,
    /// Mean days between failures.
    pub days_between_failures: f64,
}

/// Rows for a device-count sweep at the paper's 30,000 h device MTBF.
pub fn paper_table(device_counts: &[u32]) -> Vec<MtbfRow> {
    device_counts
        .iter()
        .map(|&d| {
            let mtbf = system_mtbf_hours(PAPER_DEVICE_MTBF_HOURS, d);
            MtbfRow {
                devices: d,
                system_mtbf_hours: mtbf,
                failures_per_year: HOURS_PER_YEAR / mtbf,
                days_between_failures: mtbf / 24.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_numbers() {
        // 10 devices -> every 3,000 hours, "about 3 times per year".
        let ten = system_mtbf_hours(PAPER_DEVICE_MTBF_HOURS, 10);
        assert_eq!(ten, 3_000.0);
        let per_year = HOURS_PER_YEAR / ten;
        assert!((2.8..3.1).contains(&per_year), "{per_year}");
        // 100 devices -> "more than one failure every two weeks".
        let hundred = system_mtbf_hours(PAPER_DEVICE_MTBF_HOURS, 100);
        assert!(hundred < 14.0 * 24.0, "MTBF {hundred}h not under 2 weeks");
    }

    #[test]
    fn expected_failures_scale_linearly() {
        let one = expected_failures(30_000.0, 1, 30_000.0);
        assert!((one - 1.0).abs() < 1e-12);
        let five = expected_failures(30_000.0, 5, 30_000.0);
        assert!((five - 5.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        for devices in [1, 10, 100] {
            let analytic = system_mtbf_hours(30_000.0, devices);
            let mc = monte_carlo_mttf(30_000.0, devices, 4_000, 17);
            let rel = (mc - analytic).abs() / analytic;
            assert!(rel < 0.06, "devices={devices}: mc={mc} vs {analytic}");
        }
    }

    #[test]
    fn table_rows() {
        let t = paper_table(&[1, 10, 100]);
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].system_mtbf_hours, 3_000.0);
        assert!(t[2].days_between_failures < 14.0);
        assert!(t[0].failures_per_year < 0.3);
    }
}
