//! Block checksumming: single-bit-error *detection*.
//!
//! Kim's synchronized interleaving (cited in §5) "can handle either a
//! single-bit error in a striped block, or complete failure of a single
//! drive". Failure detection is trivial (the device stops answering);
//! bit errors need checksums. [`ChecksumDevice`] wraps any block device,
//! records a 64-bit FNV-1a checksum on every write, and turns a mismatch
//! on read into [`DiskError::Corruption`] — which the file layer's
//! degraded-read path then *corrects* via parity reconstruction.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use pario_disk::{BlockDevice, DeviceRef, DiskError, IoCounters, Result};

/// FNV-1a over a block.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A checksum-verifying wrapper around any block device.
///
/// Checksums live in memory beside the device (a real controller keeps
/// them in sector trailers; the placement is irrelevant to the behaviour
/// under study). Blocks never written verify as all-zero blocks.
pub struct ChecksumDevice {
    inner: DeviceRef,
    sums: Mutex<HashMap<u64, u64>>,
    zero_sum: u64,
}

impl ChecksumDevice {
    /// Wrap `inner` with checksum verification.
    pub fn new(inner: DeviceRef) -> ChecksumDevice {
        let zero_sum = fnv1a(&vec![0u8; inner.block_size()]);
        ChecksumDevice {
            inner,
            sums: Mutex::new(HashMap::new()),
            zero_sum,
        }
    }

    /// Wrap a whole device array.
    pub fn wrap_array(devices: Vec<DeviceRef>) -> Vec<DeviceRef> {
        devices
            .into_iter()
            .map(|d| Arc::new(ChecksumDevice::new(d)) as DeviceRef)
            .collect()
    }

    /// The wrapped device.
    pub fn inner(&self) -> &DeviceRef {
        &self.inner
    }
}

impl BlockDevice for ChecksumDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_block(block, buf)?;
        let expect = *self.sums.lock().get(&block).unwrap_or(&self.zero_sum);
        if fnv1a(buf) != expect {
            return Err(DiskError::Corruption { block });
        }
        Ok(())
    }

    fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
        self.inner.write_block(block, data)?;
        self.sums.lock().insert(block, fnv1a(data));
        Ok(())
    }

    /// Forward the whole run to the wrapped device's vectored path (one
    /// inner request), then verify each block's checksum.
    fn read_blocks_at(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_blocks_at(block, buf)?;
        let sums = self.sums.lock();
        for (i, chunk) in buf.chunks(self.inner.block_size()).enumerate() {
            let b = block + i as u64;
            let expect = *sums.get(&b).unwrap_or(&self.zero_sum);
            if fnv1a(chunk) != expect {
                return Err(DiskError::Corruption { block: b });
            }
        }
        Ok(())
    }

    /// Forward the whole run (one inner request), then record each
    /// block's checksum.
    fn write_blocks_at(&self, block: u64, data: &[u8]) -> Result<()> {
        self.inner.write_blocks_at(block, data)?;
        let mut sums = self.sums.lock();
        for (i, chunk) in data.chunks(self.inner.block_size()).enumerate() {
            sums.insert(block + i as u64, fnv1a(chunk));
        }
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn counters(&self) -> IoCounters {
        self.inner.counters()
    }

    fn fail(&self) {
        self.inner.fail()
    }

    fn heal(&self) {
        self.inner.heal()
    }

    fn is_failed(&self) -> bool {
        self.inner.is_failed()
    }

    fn label(&self) -> String {
        format!("cksum({})", self.inner.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_disk::MemDisk;

    #[test]
    fn clean_reads_verify() {
        let mem = Arc::new(MemDisk::new(8, 64));
        let d = ChecksumDevice::new(mem);
        let data = vec![0xA5; 64];
        d.write_block(2, &data).unwrap();
        let mut buf = vec![0u8; 64];
        d.read_block(2, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Unwritten blocks verify as zero blocks.
        d.read_block(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn bit_flip_detected() {
        let mem = Arc::new(MemDisk::new(8, 64));
        let d = ChecksumDevice::new(Arc::clone(&mem) as DeviceRef);
        d.write_block(3, &[0x11; 64]).unwrap();
        mem.corrupt_bit(3, 100);
        let mut buf = vec![0u8; 64];
        assert!(matches!(
            d.read_block(3, &mut buf),
            Err(DiskError::Corruption { block: 3 })
        ));
        // Other blocks unaffected.
        d.read_block(1, &mut buf).unwrap();
        // Overwriting heals the checksum.
        d.write_block(3, &[0x22; 64]).unwrap();
        d.read_block(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x22));
    }

    #[test]
    fn vectored_path_verifies_every_block() {
        let mem = Arc::new(MemDisk::new(8, 64));
        let d = ChecksumDevice::new(Arc::clone(&mem) as DeviceRef);
        let data: Vec<u8> = (0..192).map(|i| i as u8).collect();
        d.write_blocks_at(2, &data).unwrap();
        let mut back = vec![0u8; 192];
        d.read_blocks_at(2, &mut back).unwrap();
        assert_eq!(back, data);
        // One inner request per span, not one per block.
        assert_eq!((mem.counters().reads, mem.counters().writes), (1, 1));
        // Corruption in the middle block of a span is caught.
        mem.corrupt_bit(3, 5);
        assert!(matches!(
            d.read_blocks_at(2, &mut back),
            Err(DiskError::Corruption { block: 3 })
        ));
    }

    #[test]
    fn fnv_distinguishes_blocks() {
        assert_ne!(fnv1a(&[0u8; 32]), fnv1a(&[1u8; 32]));
        let mut a = vec![7u8; 32];
        let h0 = fnv1a(&a);
        a[31] ^= 1;
        assert_ne!(h0, fnv1a(&a));
    }

    #[test]
    fn failure_passthrough() {
        let mem = Arc::new(MemDisk::new(4, 32));
        let d = ChecksumDevice::new(mem);
        d.fail();
        assert!(d.is_failed());
        let mut buf = vec![0u8; 32];
        assert!(matches!(
            d.read_block(0, &mut buf),
            Err(DiskError::DeviceFailed { .. })
        ));
        d.heal();
        assert!(d.read_block(0, &mut buf).is_ok());
        assert!(d.label().starts_with("cksum("));
    }
}
