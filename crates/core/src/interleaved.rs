//! Interleaved sequential access (type IS).
//!
//! "Processes use non-contiguous blocks of the file separated by a
//! constant stride. The stride would typically be the number of processes
//! accessing the file… This organization would be useful for wrapped
//! storage of a matrix" (§3.1). Process `p` of `P` owns file blocks
//! `p, p+P, p+2P, …`; with as many devices as processes, each process's
//! blocks land on a private device.

use pario_fs::RawFile;

use crate::error::Result;

/// Process `p`'s strided window onto an IS file.
pub struct InterleavedHandle {
    raw: RawFile,
    process: u32,
    stride: u32,
    /// Current file block (global index; always ≡ process mod stride).
    fb: u64,
    /// Record offset within the current file block.
    within: usize,
}

impl InterleavedHandle {
    pub(crate) fn new(raw: RawFile, process: u32, stride: u32) -> InterleavedHandle {
        InterleavedHandle {
            raw,
            process,
            stride,
            fb: u64::from(process),
            within: 0,
        }
    }

    /// This handle's process index.
    pub fn process(&self) -> u32 {
        self.process
    }

    /// The stride (number of cooperating processes).
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Global record index the cursor points at.
    pub fn current_record(&self) -> u64 {
        self.fb * self.raw.records_per_block() as u64 + self.within as u64
    }

    /// Jump to the `k`-th block of *this process's* sequence (its local
    /// block index), record 0.
    pub fn seek_block(&mut self, k: u64) {
        self.fb = u64::from(self.process) + k * u64::from(self.stride);
        self.within = 0;
    }

    fn advance(&mut self) {
        self.within += 1;
        if self.within == self.raw.records_per_block() {
            self.fb += u64::from(self.stride);
            self.within = 0;
        }
    }

    /// Read this process's next whole file block (all
    /// `records_per_block` records at once) into `out`. Returns the
    /// global file-block index, or `None` past end of file. The cursor
    /// must be block-aligned (it is unless `read_next` stopped
    /// mid-block).
    pub fn read_next_block(&mut self, out: &mut [u8]) -> Result<Option<u64>> {
        let rs = self.raw.record_size();
        let rpb = self.raw.records_per_block();
        assert_eq!(out.len(), rs * rpb, "block buffer size");
        assert_eq!(self.within, 0, "cursor mid-block");
        let first = self.current_record();
        if first + rpb as u64 > self.raw.len_records() {
            return Ok(None);
        }
        self.raw.read_span(first * rs as u64, out)?;
        let fb = self.fb;
        self.fb += u64::from(self.stride);
        Ok(Some(fb))
    }

    /// Write this process's next whole file block from `out`, extending
    /// the file. Returns the global file-block index written.
    pub fn write_next_block(&mut self, data: &[u8]) -> Result<u64> {
        let rs = self.raw.record_size();
        let rpb = self.raw.records_per_block();
        assert_eq!(data.len(), rs * rpb, "block buffer size");
        assert_eq!(self.within, 0, "cursor mid-block");
        let first = self.current_record();
        self.raw.write_span(first * rs as u64, data)?;
        self.raw.extend_len_records(first + rpb as u64);
        let fb = self.fb;
        self.fb += u64::from(self.stride);
        Ok(fb)
    }

    /// Read the next record of this process's strided sequence. Returns
    /// `false` when the sequence passes the end of the file.
    pub fn read_next(&mut self, out: &mut [u8]) -> Result<bool> {
        let r = self.current_record();
        if r >= self.raw.len_records() {
            return Ok(false);
        }
        self.raw.read_record(r, out)?;
        self.advance();
        Ok(true)
    }

    /// Write the next record of this process's strided sequence,
    /// extending the file as needed.
    pub fn write_next(&mut self, data: &[u8]) -> Result<u64> {
        let r = self.current_record();
        self.raw.write_record(r, data)?;
        self.advance();
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use crate::organization::Organization;
    use crate::pfile::ParallelFile;
    use pario_fs::{Volume, VolumeConfig};

    fn vol(devices: usize) -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices,
            device_blocks: 512,
            block_size: 256,
        })
        .unwrap()
    }

    fn rec(tag: u64, size: usize) -> Vec<u8> {
        (0..size).map(|i| (tag as usize * 17 + i) as u8).collect()
    }

    #[test]
    fn wrapped_matrix_rows_land_in_row_order_globally() {
        // 3 processes write a 12-row matrix wrapped row-wise: process p
        // writes rows p, p+3, p+6, p+9. One row = one file block (4
        // records of 64 B = 256 B = 1 volume block).
        let v = vol(3);
        let org = Organization::InterleavedSeq { processes: 3 };
        let pf = ParallelFile::create(&v, "m", org, 64, 4).unwrap();
        crossbeam::thread::scope(|s| {
            for p in 0..3u32 {
                let mut h = pf.interleaved_handle(p).unwrap();
                s.spawn(move |_| {
                    for local_row in 0..4u64 {
                        let row = u64::from(p) + local_row * 3;
                        for col in 0..4u64 {
                            h.write_next(&rec(row * 4 + col, 64)).unwrap();
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(pf.len_records(), 48);
        // The global view sees rows 0,1,2,...,11 in order.
        let mut r = pf.global_reader();
        let mut buf = vec![0u8; 64];
        let mut idx = 0u64;
        while r.read_record(&mut buf).unwrap() {
            assert_eq!(buf, rec(idx, 64), "record {idx}");
            idx += 1;
        }
        assert_eq!(idx, 48);
    }

    #[test]
    fn read_back_is_strided() {
        let v = vol(2);
        let org = Organization::InterleavedSeq { processes: 2 };
        let pf = ParallelFile::create(&v, "m", org, 64, 4).unwrap();
        // Fill 6 file blocks (24 records) through the global view.
        let mut w = pf.global_writer();
        for i in 0..24u64 {
            w.write_record(&rec(i, 64)).unwrap();
        }
        w.finish().unwrap();
        // Process 1 must see blocks 1, 3, 5 → records 4..8, 12..16, 20..24.
        let mut h = pf.interleaved_handle(1).unwrap();
        let mut got = Vec::new();
        let mut buf = vec![0u8; 64];
        loop {
            let idx = h.current_record();
            if !h.read_next(&mut buf).unwrap() {
                break;
            }
            assert_eq!(buf, rec(idx, 64), "record {idx}");
            got.push(idx);
        }
        let expected: Vec<u64> = (0..24).filter(|r| (r / 4) % 2 == 1).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn each_process_gets_private_device_when_counts_match() {
        let v = vol(3);
        let org = Organization::InterleavedSeq { processes: 3 };
        let pf = ParallelFile::create(&v, "m", org, 64, 4).unwrap();
        // Write 9 file blocks from the 3 processes.
        for p in 0..3u32 {
            let mut h = pf.interleaved_handle(p).unwrap();
            for _ in 0..12 {
                h.write_next(&rec(u64::from(p), 64)).unwrap();
            }
        }
        // Device counters: each process's blocks went to one device only.
        // (Process p's file blocks are p, p+3, ... -> layout unit=1 vblock
        // per file block, striped over 3 devices -> device p.)
        let layout = pf.raw().layout();
        for fb in 0..9u64 {
            assert_eq!(layout.map(fb).device, (fb % 3) as usize);
        }
    }

    #[test]
    fn block_at_a_time_round_trip() {
        let v = vol(2);
        let org = Organization::InterleavedSeq { processes: 2 };
        let pf = ParallelFile::create(&v, "m", org, 64, 4).unwrap();
        // Writers emit whole blocks; readers consume whole blocks.
        for p in 0..2u32 {
            let mut h = pf.interleaved_handle(p).unwrap();
            for k in 0..5u64 {
                let fb = u64::from(p) + k * 2;
                let mut block = Vec::new();
                for c in 0..4u64 {
                    block.extend_from_slice(&rec(fb * 4 + c, 64));
                }
                assert_eq!(h.write_next_block(&block).unwrap(), fb);
            }
        }
        assert_eq!(pf.len_records(), 40);
        for p in 0..2u32 {
            let mut h = pf.interleaved_handle(p).unwrap();
            let mut block = vec![0u8; 256];
            let mut k = 0u64;
            while let Some(fb) = h.read_next_block(&mut block).unwrap() {
                assert_eq!(fb, u64::from(p) + k * 2);
                for c in 0..4u64 {
                    assert_eq!(
                        &block[c as usize * 64..(c as usize + 1) * 64],
                        rec(fb * 4 + c, 64).as_slice()
                    );
                }
                k += 1;
            }
            assert_eq!(k, 5);
        }
    }

    #[test]
    fn seek_block_repositions() {
        let v = vol(2);
        let org = Organization::InterleavedSeq { processes: 2 };
        let pf = ParallelFile::create(&v, "m", org, 64, 4).unwrap();
        let mut w = pf.global_writer();
        for i in 0..32u64 {
            w.write_record(&rec(i, 64)).unwrap();
        }
        w.finish().unwrap();
        let mut h = pf.interleaved_handle(0).unwrap();
        h.seek_block(2); // process 0's 3rd block = file block 4 = record 16
        assert_eq!(h.current_record(), 16);
        let mut buf = vec![0u8; 64];
        assert!(h.read_next(&mut buf).unwrap());
        assert_eq!(buf, rec(16, 64));
    }
}
