//! Error type for parallel-file operations.

use std::fmt;

use pario_fs::FsError;

use crate::organization::Organization;

/// Errors from the parallel file layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying file-system error.
    Fs(FsError),
    /// A handle was requested that does not match the file's organization
    /// (use the `views` module to force a mismatched view deliberately).
    WrongOrganization {
        /// What the operation needed.
        expected: &'static str,
        /// What the file actually is.
        actual: Organization,
    },
    /// A process index was out of range for the organization.
    BadProcess {
        /// The offending index.
        process: u32,
        /// Processes the organization was created for.
        of: u32,
    },
    /// The file's stored organization tag is unparseable.
    BadTag(String),
    /// Sizing or geometry error at creation.
    BadGeometry(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Fs(e) => write!(f, "{e}"),
            CoreError::WrongOrganization { expected, actual } => {
                write!(f, "operation needs a {expected} file, this one is {actual}")
            }
            CoreError::BadProcess { process, of } => {
                write!(f, "process {process} out of range (organization has {of})")
            }
            CoreError::BadTag(tag) => write!(f, "unparseable organization tag '{tag}'"),
            CoreError::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FsError> for CoreError {
    fn from(e: FsError) -> CoreError {
        CoreError::Fs(e)
    }
}

impl From<pario_disk::DiskError> for CoreError {
    fn from(e: pario_disk::DiskError) -> CoreError {
        CoreError::Fs(FsError::Disk(e))
    }
}

/// Intern a [`CoreError::WrongOrganization`] `expected` string back to
/// the `&'static str` values this library produces. This is the
/// wire-decode hook for `pario-net`: the variant carries a static
/// string, so a lossless round-trip over a byte protocol needs a way to
/// recover the original static. Unknown strings (which this workspace
/// never emits) map to `"unknown organization"`.
pub fn intern_expected(s: &str) -> &'static str {
    match s {
        "S" => "S",
        "PS" => "PS",
        "IS" => "IS",
        "SS" => "SS",
        "GDA" => "GDA",
        "PDA" => "PDA",
        "PS or PDA" => "PS or PDA",
        _ => "unknown organization",
    }
}

/// Result alias for parallel-file operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CoreError::WrongOrganization {
            expected: "SS",
            actual: Organization::Sequential,
        };
        assert!(e.to_string().contains("SS"));
        assert!(e.to_string().contains('S'));
        let e: CoreError = FsError::NotFound("f".into()).into();
        assert!(e.to_string().contains("'f'"));
    }

    #[test]
    fn expected_strings_intern_round_trip() {
        for s in ["S", "PS", "IS", "SS", "GDA", "PDA", "PS or PDA"] {
            assert_eq!(intern_expected(s), s);
        }
        assert_eq!(intern_expected("bogus"), "unknown organization");
    }
}
