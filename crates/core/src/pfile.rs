//! `ParallelFile`: a file plus its organization, and the factory for
//! internal-view handles.

use std::sync::Arc;

use pario_check::{LockLevel, Mutex};

use pario_fs::{FileSpec, GlobalReader, GlobalWriter, RawFile, Volume};
use pario_layout::LayoutSpec;

use crate::direct::DirectHandle;
use crate::error::{CoreError, Result};
use crate::interleaved::InterleavedHandle;
use crate::organization::Organization;
use crate::partitioned::PartitionHandle;
use crate::selfsched::{SelfSchedReader, SelfSchedWriter, SharedCursor};

/// Shared self-scheduling state: one read cursor, one write cursor, and
/// the big lock used by the naive baseline.
pub(crate) struct SsState {
    pub(crate) read_cursor: SharedCursor,
    pub(crate) write_cursor: SharedCursor,
    pub(crate) big_lock: Mutex<()>,
}

/// A parallel file: underlying storage plus the organization that governs
/// its internal views. Cheap to clone; clones share self-scheduling state.
#[derive(Clone)]
pub struct ParallelFile {
    raw: RawFile,
    org: Organization,
    ss: Arc<SsState>,
}

/// File-block geometry: volume blocks per file block, enforcing the
/// alignment contract (`record_size * records_per_block` must be a
/// positive multiple of the volume block size for the partitioned and
/// interleaved organizations, so partition boundaries land on device
/// boundaries).
pub(crate) fn file_block_vblocks(
    record_size: usize,
    records_per_block: usize,
    block_size: usize,
) -> Result<u64> {
    let fb = record_size * records_per_block;
    if fb == 0 || !fb.is_multiple_of(block_size) {
        return Err(CoreError::BadGeometry(format!(
            "file block ({record_size} B x {records_per_block} records = {fb} B) \
             must be a positive multiple of the {block_size}-byte volume block"
        )));
    }
    Ok((fb / block_size) as u64)
}

/// Near-equal split of `total` items into `parts`: the first
/// `total % parts` parts get one extra.
pub(crate) fn uniform_bounds(total: u64, parts: u32) -> Vec<u64> {
    let parts = u64::from(parts);
    let base = total / parts;
    let extra = total % parts;
    let mut bounds = Vec::with_capacity(parts as usize + 1);
    bounds.push(0);
    let mut acc = 0;
    for p in 0..parts {
        acc += base + u64::from(p < extra);
        bounds.push(acc);
    }
    bounds
}

impl ParallelFile {
    fn wrap(raw: RawFile, org: Organization) -> ParallelFile {
        let write_cursor = SharedCursor::new(raw.len_records());
        ParallelFile {
            raw,
            org,
            ss: Arc::new(SsState {
                read_cursor: SharedCursor::new(0),
                write_cursor,
                big_lock: Mutex::new_named((), LockLevel::CoreBigLock),
            }),
        }
    }

    /// The default placement for an organization, per the paper's §4
    /// implementation strategies.
    fn default_layout(
        vol: &Volume,
        org: Organization,
        record_size: usize,
        records_per_block: usize,
        total_records: Option<u64>,
    ) -> Result<LayoutSpec> {
        let devices = vol.num_devices();
        let bs = vol.block_size();
        match org {
            // S and SS stream bytes: plain striping maximises transfer
            // rate. GDA favours declustering (unit 1) for non-uniform
            // access, per Livny et al.
            Organization::Sequential
            | Organization::SelfScheduledSeq
            | Organization::GlobalDirect => Ok(LayoutSpec::Striped { devices, unit: 1 }),
            // IS interleaves whole file blocks across the devices.
            Organization::InterleavedSeq { .. } => {
                let unit = file_block_vblocks(record_size, records_per_block, bs)?;
                Ok(LayoutSpec::Striped { devices, unit })
            }
            // PS/PDA: contiguous partitions, device per partition when
            // possible, stacked round-robin otherwise.
            Organization::PartitionedSeq { partitions }
            | Organization::PartitionedDirect { partitions } => {
                let total = total_records.ok_or_else(|| {
                    CoreError::BadGeometry(
                        "partitioned organizations need a total size at creation".into(),
                    )
                })?;
                let fbv = file_block_vblocks(record_size, records_per_block, bs)?;
                let file_blocks = total.div_ceil(records_per_block as u64);
                let bounds: Vec<u64> = uniform_bounds(file_blocks, partitions)
                    .into_iter()
                    .map(|b| b * fbv)
                    .collect();
                Ok(LayoutSpec::Partitioned {
                    bounds,
                    devices: (partitions as usize).min(devices),
                })
            }
        }
    }

    /// Create a growable parallel file. Partitioned organizations (PS,
    /// PDA) must use [`ParallelFile::create_sized`] instead.
    pub fn create(
        vol: &Volume,
        name: &str,
        org: Organization,
        record_size: usize,
        records_per_block: usize,
    ) -> Result<ParallelFile> {
        if org.is_fixed_size() {
            return Err(CoreError::BadGeometry(format!(
                "{org} files are sized at creation; use create_sized"
            )));
        }
        let layout = Self::default_layout(vol, org, record_size, records_per_block, None)?;
        let spec = FileSpec::new(name, record_size, records_per_block, layout).org(&org.tag());
        Ok(Self::wrap(vol.create_file(spec)?, org))
    }

    /// Create a parallel file holding exactly `total_records` records
    /// (preallocated; mandatory for PS and PDA).
    pub fn create_sized(
        vol: &Volume,
        name: &str,
        org: Organization,
        record_size: usize,
        records_per_block: usize,
        total_records: u64,
    ) -> Result<ParallelFile> {
        let layout = Self::default_layout(
            vol,
            org,
            record_size,
            records_per_block,
            Some(total_records),
        )?;
        let mut spec = FileSpec::new(name, record_size, records_per_block, layout).org(&org.tag());
        if org.is_fixed_size() {
            spec = spec.fixed_capacity(total_records);
        } else {
            spec = spec.initial_records(total_records);
        }
        Ok(Self::wrap(vol.create_file(spec)?, org))
    }

    /// Create with an explicit placement (parity protection, shadowing,
    /// custom stripe units, hand-built partition bounds).
    pub fn create_with_layout(
        vol: &Volume,
        name: &str,
        org: Organization,
        record_size: usize,
        records_per_block: usize,
        layout: LayoutSpec,
        fixed_capacity: Option<u64>,
    ) -> Result<ParallelFile> {
        let mut spec = FileSpec::new(name, record_size, records_per_block, layout).org(&org.tag());
        if let Some(cap) = fixed_capacity {
            spec = spec.fixed_capacity(cap);
        }
        Ok(Self::wrap(vol.create_file(spec)?, org))
    }

    /// Open an existing parallel file, recovering its organization from
    /// the metadata tag.
    pub fn open(vol: &Volume, name: &str) -> Result<ParallelFile> {
        let raw = vol.open(name)?;
        let tag = raw.org();
        let org = Organization::from_tag(&tag).ok_or(CoreError::BadTag(tag))?;
        Ok(Self::wrap(raw, org))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The organization.
    pub fn organization(&self) -> Organization {
        self.org
    }

    /// The underlying file (for global-view utilities and experiments).
    pub fn raw(&self) -> &RawFile {
        &self.raw
    }

    /// Current length in records.
    pub fn len_records(&self) -> u64 {
        self.raw.len_records()
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.raw.record_size()
    }

    /// Records per file block.
    pub fn records_per_block(&self) -> usize {
        self.raw.records_per_block()
    }

    pub(crate) fn ss_state(&self) -> &Arc<SsState> {
        &self.ss
    }

    /// The record range `[start, end)` owned by partition `p`, derived
    /// from the file-block split used at creation.
    pub fn partition_record_range(&self, p: u32) -> Result<(u64, u64)> {
        let partitions = match self.org {
            Organization::PartitionedSeq { partitions }
            | Organization::PartitionedDirect { partitions } => partitions,
            _ => {
                return Err(CoreError::WrongOrganization {
                    expected: "PS or PDA",
                    actual: self.org,
                })
            }
        };
        if p >= partitions {
            return Err(CoreError::BadProcess {
                process: p,
                of: partitions,
            });
        }
        let total = self
            .raw
            .meta_snapshot()
            .fixed_capacity_records
            // invariant: partitioned specs are validated fixed-size at creation.
            .expect("partitioned files are fixed-size");
        let rpb = self.records_per_block() as u64;
        let file_blocks = total.div_ceil(rpb);
        let bounds = uniform_bounds(file_blocks, partitions);
        // Both ends clamp to the record count: with more partitions than
        // file blocks, trailing partitions are empty, and the partition
        // holding the short tail block ends at `total`.
        let lo = (bounds[p as usize] * rpb).min(total);
        let hi = (bounds[p as usize + 1] * rpb).min(total);
        Ok((lo, hi))
    }

    // ------------------------------------------------------------------
    // Internal and global views
    // ------------------------------------------------------------------

    /// The global view, for sequential consumers (always available,
    /// regardless of organization — the paper's "standard file" property).
    pub fn global_reader(&self) -> GlobalReader {
        GlobalReader::new(self.raw.clone())
    }

    /// Append through the global view.
    pub fn global_writer(&self) -> GlobalWriter {
        GlobalWriter::append(self.raw.clone())
    }

    /// Partition handle `p` for a PS or PDA file.
    pub fn partition_handle(&self, p: u32) -> Result<PartitionHandle> {
        let (lo, hi) = self.partition_record_range(p)?;
        Ok(PartitionHandle::new(self.raw.clone(), p, lo, hi))
    }

    /// Interleaved handle for process `p` of an IS file.
    pub fn interleaved_handle(&self, p: u32) -> Result<InterleavedHandle> {
        match self.org {
            Organization::InterleavedSeq { processes } => {
                if p >= processes {
                    return Err(CoreError::BadProcess {
                        process: p,
                        of: processes,
                    });
                }
                Ok(InterleavedHandle::new(self.raw.clone(), p, processes))
            }
            _ => Err(CoreError::WrongOrganization {
                expected: "IS",
                actual: self.org,
            }),
        }
    }

    fn require_ss(&self) -> Result<()> {
        if self.org != Organization::SelfScheduledSeq {
            return Err(CoreError::WrongOrganization {
                expected: "SS",
                actual: self.org,
            });
        }
        Ok(())
    }

    /// A two-phase self-scheduled reader (reserve the cursor atomically,
    /// transfer outside any lock). Clones of this file share the cursor.
    pub fn self_sched_reader(&self) -> Result<SelfSchedReader> {
        self.require_ss()?;
        Ok(SelfSchedReader::two_phase(self.raw.clone(), self.clone()))
    }

    /// The naive baseline: one lock held across the whole I/O call.
    /// Exists to quantify what two-phase reservation buys (experiment E3).
    pub fn self_sched_reader_naive(&self) -> Result<SelfSchedReader> {
        self.require_ss()?;
        Ok(SelfSchedReader::big_lock(self.raw.clone(), self.clone()))
    }

    /// A two-phase self-scheduled writer.
    pub fn self_sched_writer(&self) -> Result<SelfSchedWriter> {
        self.require_ss()?;
        Ok(SelfSchedWriter::two_phase(self.raw.clone(), self.clone()))
    }

    /// The naive big-lock self-scheduled writer baseline.
    pub fn self_sched_writer_naive(&self) -> Result<SelfSchedWriter> {
        self.require_ss()?;
        Ok(SelfSchedWriter::big_lock(self.raw.clone(), self.clone()))
    }

    /// Direct-access handle for a GDA file (any record, any order, any
    /// process — handles are `Clone + Send`).
    pub fn direct_handle(&self) -> Result<DirectHandle> {
        if self.org != Organization::GlobalDirect {
            return Err(CoreError::WrongOrganization {
                expected: "GDA",
                actual: self.org,
            });
        }
        Ok(DirectHandle::new(self.raw.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_fs::VolumeConfig;

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 256,
            block_size: 256,
        })
        .unwrap()
    }

    #[test]
    fn uniform_bounds_split() {
        assert_eq!(uniform_bounds(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(uniform_bounds(9, 3), vec![0, 3, 6, 9]);
        assert_eq!(uniform_bounds(2, 4), vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn file_block_alignment_enforced() {
        assert_eq!(file_block_vblocks(64, 4, 256).unwrap(), 1);
        assert_eq!(file_block_vblocks(64, 8, 256).unwrap(), 2);
        assert!(file_block_vblocks(100, 4, 256).is_err());
        assert!(file_block_vblocks(64, 0, 256).is_err());
    }

    #[test]
    fn create_and_reopen_preserves_organization() {
        let v = vol();
        for org in [
            Organization::Sequential,
            Organization::SelfScheduledSeq,
            Organization::GlobalDirect,
            Organization::InterleavedSeq { processes: 4 },
        ] {
            let name = format!("f-{}", org.tag());
            let pf = ParallelFile::create(&v, &name, org, 64, 4).unwrap();
            assert_eq!(pf.organization(), org);
            let again = ParallelFile::open(&v, &name).unwrap();
            assert_eq!(again.organization(), org);
        }
    }

    #[test]
    fn partitioned_requires_sizing() {
        let v = vol();
        let org = Organization::PartitionedSeq { partitions: 4 };
        assert!(matches!(
            ParallelFile::create(&v, "ps", org, 64, 4),
            Err(CoreError::BadGeometry(_))
        ));
        let pf = ParallelFile::create_sized(&v, "ps", org, 64, 4, 160).unwrap();
        assert_eq!(pf.raw().meta_snapshot().fixed_capacity_records, Some(160));
    }

    #[test]
    fn partition_ranges_cover_file_exactly() {
        let v = vol();
        let org = Organization::PartitionedSeq { partitions: 3 };
        // 160 records of 64 B, 4 per file block => 40 file blocks over 3
        // partitions: 14/13/13 blocks = 56/52/52 records.
        let pf = ParallelFile::create_sized(&v, "ps", org, 64, 4, 160).unwrap();
        let ranges: Vec<(u64, u64)> = (0..3)
            .map(|p| pf.partition_record_range(p).unwrap())
            .collect();
        assert_eq!(ranges, vec![(0, 56), (56, 108), (108, 160)]);
        assert!(matches!(
            pf.partition_record_range(3),
            Err(CoreError::BadProcess { process: 3, of: 3 })
        ));
    }

    #[test]
    fn short_tail_partition_range_clamped() {
        let v = vol();
        let org = Organization::PartitionedSeq { partitions: 2 };
        // 30 records, 4 per block -> 8 blocks (last block half-full).
        let pf = ParallelFile::create_sized(&v, "ps", org, 64, 4, 30).unwrap();
        assert_eq!(pf.partition_record_range(0).unwrap(), (0, 16));
        assert_eq!(pf.partition_record_range(1).unwrap(), (16, 30));
    }

    #[test]
    fn handle_org_checks() {
        let v = vol();
        let pf = ParallelFile::create(&v, "s", Organization::Sequential, 64, 4).unwrap();
        assert!(matches!(
            pf.self_sched_reader(),
            Err(CoreError::WrongOrganization { .. })
        ));
        assert!(matches!(
            pf.interleaved_handle(0),
            Err(CoreError::WrongOrganization { .. })
        ));
        assert!(matches!(
            pf.partition_handle(0),
            Err(CoreError::WrongOrganization { .. })
        ));
        assert!(matches!(
            pf.direct_handle(),
            Err(CoreError::WrongOrganization { .. })
        ));
        // Global views are always available.
        let _ = pf.global_reader();
        let _ = pf.global_writer();
    }

    #[test]
    fn interleaved_handle_bounds() {
        let v = vol();
        let pf = ParallelFile::create(
            &v,
            "is",
            Organization::InterleavedSeq { processes: 3 },
            64,
            4,
        )
        .unwrap();
        assert!(pf.interleaved_handle(2).is_ok());
        assert!(matches!(
            pf.interleaved_handle(3),
            Err(CoreError::BadProcess { .. })
        ));
    }

    #[test]
    fn bad_tag_on_open() {
        let v = vol();
        // A file created directly through the fs layer with a junk tag.
        let spec = pario_fs::FileSpec::new(
            "weird",
            64,
            1,
            LayoutSpec::Striped {
                devices: 1,
                unit: 1,
            },
        )
        .org("JUNK");
        v.create_file(spec).unwrap();
        assert!(matches!(
            ParallelFile::open(&v, "weird"),
            Err(CoreError::BadTag(_))
        ));
    }
}
