//! Global direct access (type GDA).
//!
//! "The most general case. Any process may potentially access any block
//! or record in the file in any order" (§3.2). The handle is `Clone` and
//! `Send`; every clone addresses the whole record space. An optional
//! shared block cache serves the paper's observation that "buffer caching
//! techniques would be helpful when there is some locality of reference".

use std::sync::Arc;

use pario_check::{LockLevel, Mutex};

use pario_buffer::{VolumeCache, VolumeCacheConfig};
use pario_fs::{FsError, RawFile};

use crate::error::Result;

/// A direct-access handle over every record of a GDA file.
#[derive(Clone)]
pub struct DirectHandle {
    raw: RawFile,
    cache: Option<Arc<CachedIo>>,
}

struct CachedIo {
    cache: VolumeCache,
    /// Serialises record-level read-modify-write against eviction so
    /// straddling records stay atomic.
    rmw: Mutex<()>,
}

impl DirectHandle {
    pub(crate) fn new(raw: RawFile) -> DirectHandle {
        DirectHandle { raw, cache: None }
    }

    /// Wrap the handle in a shared write-back block cache of `frames`
    /// frames (a [`VolumeCache`] tier over the file's devices). Clones
    /// of the returned handle share the cache; call
    /// [`flush`](DirectHandle::flush) before relying on device contents.
    pub fn with_cache(self, frames: usize) -> DirectHandle {
        let vol = self.raw.volume();
        let devices = (0..vol.num_devices()).map(|i| vol.device(i)).collect();
        DirectHandle {
            raw: self.raw,
            cache: Some(Arc::new(CachedIo {
                cache: VolumeCache::new(devices, VolumeCacheConfig::write_back(frames)),
                rmw: Mutex::new_named((), LockLevel::CoreDirectRmw),
            })),
        }
    }

    /// Records currently in the file.
    pub fn len_records(&self) -> u64 {
        self.raw.len_records()
    }

    /// Cache hit/miss statistics, if a cache is attached.
    pub fn cache_stats(&self) -> Option<pario_buffer::CacheStats> {
        self.cache.as_ref().map(|c| c.cache.stats().base)
    }

    /// Read record `r`.
    pub fn read_record(&self, r: u64, out: &mut [u8]) -> Result<()> {
        match &self.cache {
            None => {
                self.raw.read_record(r, out)?;
                Ok(())
            }
            Some(c) => {
                let len = self.raw.len_records();
                if r >= len {
                    return Err(FsError::OutOfBounds { record: r, len }.into());
                }
                self.cached_span(c, r, out.len(), |_, _| {}, Some(out))
            }
        }
    }

    /// Write record `r` (extends the file).
    pub fn write_record(&self, r: u64, data: &[u8]) -> Result<()> {
        match &self.cache {
            None => {
                self.raw.write_record(r, data)?;
                Ok(())
            }
            Some(c) => {
                self.raw
                    .ensure_capacity_records(r + 1)
                    .map_err(crate::error::CoreError::from)?;
                let mut idx = 0usize;
                self.cached_span(
                    c,
                    r,
                    data.len(),
                    |frame, take| {
                        frame.copy_from_slice(&data[idx..idx + take]);
                        idx += take;
                    },
                    None,
                )?;
                self.raw.extend_len_records(r + 1);
                Ok(())
            }
        }
    }

    /// Walk the volume blocks containing record `r`, either copying them
    /// out (`out = Some`) or patching them via `write` through the cache.
    fn cached_span(
        &self,
        c: &CachedIo,
        r: u64,
        len: usize,
        mut write: impl FnMut(&mut [u8], usize),
        mut out: Option<&mut [u8]>,
    ) -> Result<()> {
        let _g = c.rmw.lock();
        let bs = self.raw.block_size() as u64;
        let layout = self.raw.layout();
        let meta = self.raw.meta_snapshot();
        let mut byte = r * self.raw.record_size() as u64;
        let mut done = 0usize;
        while done < len {
            let l = byte / bs;
            let within = (byte % bs) as usize;
            let take = (bs as usize - within).min(len - done);
            let p = layout.map(l);
            let dev = meta.device_map[p.device];
            let abs = pario_fs::resolve(&meta.extents[p.device], p.block);
            match &mut out {
                Some(out) => {
                    let mut block = vec![0u8; bs as usize];
                    c.cache.read_block(dev, abs, &mut block)?;
                    out[done..done + take].copy_from_slice(&block[within..within + take]);
                }
                None => {
                    c.cache.update(dev, abs, |frame| {
                        write(&mut frame[within..within + take], take)
                    })?;
                }
            }
            byte += take as u64;
            done += take;
        }
        Ok(())
    }

    /// Flush cached dirty blocks to the devices.
    pub fn flush(&self) -> Result<()> {
        if let Some(c) = &self.cache {
            c.cache.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::organization::Organization;
    use crate::pfile::ParallelFile;
    use pario_fs::{Volume, VolumeConfig};

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 512,
            block_size: 256,
        })
        .unwrap()
    }

    fn rec(tag: u64, size: usize) -> Vec<u8> {
        (0..size).map(|i| (tag as usize * 29 + i) as u8).collect()
    }

    #[test]
    fn random_access_any_order() {
        let v = vol();
        let pf = ParallelFile::create(&v, "g", Organization::GlobalDirect, 64, 4).unwrap();
        let h = pf.direct_handle().unwrap();
        let order = [13u64, 2, 47, 0, 31, 8, 47];
        for &i in &order {
            h.write_record(i, &rec(i, 64)).unwrap();
        }
        let mut buf = vec![0u8; 64];
        for &i in &order {
            h.read_record(i, &mut buf).unwrap();
            assert_eq!(buf, rec(i, 64));
        }
        assert_eq!(h.len_records(), 48);
    }

    #[test]
    fn concurrent_clones_write_disjoint_records() {
        let v = vol();
        let pf = ParallelFile::create(&v, "g", Organization::GlobalDirect, 64, 4).unwrap();
        let h = pf.direct_handle().unwrap();
        crossbeam::thread::scope(|s| {
            for t in 0..8u64 {
                let h = h.clone();
                s.spawn(move |_| {
                    for k in 0..16u64 {
                        let i = t * 16 + k;
                        h.write_record(i, &rec(i, 64)).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let mut buf = vec![0u8; 64];
        for i in 0..128u64 {
            h.read_record(i, &mut buf).unwrap();
            assert_eq!(buf, rec(i, 64), "record {i}");
        }
    }

    #[test]
    fn cached_handle_round_trips_and_counts_hits() {
        let v = vol();
        let pf = ParallelFile::create(&v, "g", Organization::GlobalDirect, 64, 4).unwrap();
        // 4 records per 256-byte block: re-reading neighbours hits cache.
        let h = pf.direct_handle().unwrap().with_cache(16);
        for i in 0..32u64 {
            h.write_record(i, &rec(i, 64)).unwrap();
        }
        let mut buf = vec![0u8; 64];
        for i in 0..32u64 {
            h.read_record(i, &mut buf).unwrap();
            assert_eq!(buf, rec(i, 64));
        }
        let stats = h.cache_stats().unwrap();
        assert!(stats.hits > 0, "locality must produce hits: {stats:?}");
        // Dirty data must reach devices only after flush.
        h.flush().unwrap();
        // Fresh uncached handle sees everything.
        let h2 = pf.direct_handle().unwrap();
        for i in 0..32u64 {
            h2.read_record(i, &mut buf).unwrap();
            assert_eq!(buf, rec(i, 64));
        }
    }

    #[test]
    fn cached_read_past_end_rejected() {
        let v = vol();
        let pf = ParallelFile::create(&v, "g", Organization::GlobalDirect, 64, 4).unwrap();
        let h = pf.direct_handle().unwrap().with_cache(4);
        h.write_record(0, &rec(0, 64)).unwrap();
        let mut buf = vec![0u8; 64];
        assert!(h.read_record(5, &mut buf).is_err());
    }

    #[test]
    fn straddling_records_atomic_under_concurrency() {
        let v = vol();
        // 96-byte records straddle 256-byte blocks.
        let pf = ParallelFile::create(&v, "g", Organization::GlobalDirect, 96, 8).unwrap();
        let h = pf.direct_handle().unwrap().with_cache(8);
        crossbeam::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                s.spawn(move |_| {
                    for k in 0..24u64 {
                        let i = t * 24 + k;
                        h.write_record(i, &rec(i, 96)).unwrap();
                    }
                });
            }
        })
        .unwrap();
        h.flush().unwrap();
        let mut buf = vec![0u8; 96];
        for i in 0..96u64 {
            h.read_record(i, &mut buf).unwrap();
            assert_eq!(buf, rec(i, 96), "record {i}");
        }
    }
}
