//! Partition-boundary (halo) data handling.
//!
//! "In many algorithms, data along partition boundaries is needed by
//! processes on both sides of the boundary" (§5). The paper sketches two
//! mechanisms, both provided here:
//!
//! * **Cache boundary data in memory** — [`read_partition_with_halo`]
//!   loads a process's partition *plus* `halo` records from each
//!   neighbour into one in-memory region, "helpful if more than one pass
//!   is made through the file".
//! * **Replicate boundary data in the file** — [`create_replicated`]
//!   builds a PS file in which each partition physically stores its halo
//!   records too, so every process's reads are purely local. The paper
//!   warns "this will cause difficulties for the global view … since
//!   there will be redundant data records"; [`ReplicatedBoundary::for_each_global`]
//!   is the de-duplicating global reader that restores a coherent view.

use pario_fs::Volume;
use pario_layout::LayoutSpec;

use crate::error::{CoreError, Result};
use crate::organization::Organization;
use crate::pfile::{file_block_vblocks, uniform_bounds, ParallelFile};

/// An in-memory window: a partition's records plus halo from neighbours.
pub struct HaloRegion {
    data: Vec<u8>,
    record_size: usize,
    /// Global (source) index of the first record in `data`.
    first: u64,
    /// The partition's own global record range.
    own: (u64, u64),
}

impl HaloRegion {
    /// Records held (own + halo).
    pub fn len_records(&self) -> u64 {
        (self.data.len() / self.record_size) as u64
    }

    /// Global index of the first held record.
    pub fn first_record(&self) -> u64 {
        self.first
    }

    /// The partition's own range (exclusive of halo).
    pub fn own_range(&self) -> (u64, u64) {
        self.own
    }

    /// Borrow the record with *global* index `idx` (must be held).
    pub fn record(&self, idx: u64) -> &[u8] {
        assert!(
            idx >= self.first && idx < self.first + self.len_records(),
            "record {idx} outside held range"
        );
        let off = (idx - self.first) as usize * self.record_size;
        &self.data[off..off + self.record_size]
    }
}

/// Load partition `p` of a PS/PDA file into memory together with up to
/// `halo` records from each neighbouring partition.
pub fn read_partition_with_halo(pf: &ParallelFile, p: u32, halo: u64) -> Result<HaloRegion> {
    let (lo, hi) = pf.partition_record_range(p)?;
    let total = pf.len_records();
    let first = lo.saturating_sub(halo);
    let last = (hi + halo).min(total);
    let rs = pf.record_size();
    let mut data = vec![0u8; (last - first) as usize * rs];
    let mut buf = vec![0u8; rs];
    for (i, r) in (first..last).enumerate() {
        pf.raw().read_record(r, &mut buf)?;
        data[i * rs..(i + 1) * rs].copy_from_slice(&buf);
    }
    Ok(HaloRegion {
        data,
        record_size: rs,
        first,
        own: (lo, hi),
    })
}

struct PartInfo {
    /// Stored source range (ownership extended by halo), clamped.
    src_lo: u64,
    src_hi: u64,
    /// Owned source range.
    own_lo: u64,
    own_hi: u64,
    /// Record index in the replicated file where this partition starts.
    stored_start: u64,
    /// Stored records including padding to a whole number of file blocks.
    padded_len: u64,
}

/// A PS file in which every partition physically stores its halo.
pub struct ReplicatedBoundary {
    pf: ParallelFile,
    parts: Vec<PartInfo>,
    src_total: u64,
}

/// Build a boundary-replicated PS copy of `src` with `partitions`
/// partitions and `halo` records replicated across each internal
/// boundary.
pub fn create_replicated(
    vol: &Volume,
    name: &str,
    src: &ParallelFile,
    partitions: u32,
    halo: u64,
) -> Result<ReplicatedBoundary> {
    let total = src.len_records();
    let rs = src.record_size();
    let rpb = src.records_per_block() as u64;
    let fbv = file_block_vblocks(rs, src.records_per_block(), vol.block_size())?;

    // Ownership: near-equal split of file blocks, like a plain PS file.
    let fb_total = total.div_ceil(rpb);
    let own_bounds = uniform_bounds(fb_total, partitions);

    let mut parts = Vec::with_capacity(partitions as usize);
    let mut stored_start = 0u64;
    let mut vblock_bounds = vec![0u64];
    for p in 0..partitions as usize {
        let own_lo = (own_bounds[p] * rpb).min(total);
        let own_hi = (own_bounds[p + 1] * rpb).min(total);
        let src_lo = own_lo.saturating_sub(halo);
        let src_hi = (own_hi + halo).min(total);
        let stored = src_hi - src_lo;
        let padded_len = stored.div_ceil(rpb) * rpb;
        parts.push(PartInfo {
            src_lo,
            src_hi,
            own_lo,
            own_hi,
            stored_start,
            padded_len,
        });
        stored_start += padded_len;
        // invariant: vblock_bounds is seeded with 0, so last() always succeeds.
        vblock_bounds.push(vblock_bounds.last().unwrap() + (padded_len / rpb) * fbv);
    }
    let capacity = stored_start;

    let pf = ParallelFile::create_with_layout(
        vol,
        name,
        Organization::PartitionedSeq { partitions },
        rs,
        src.records_per_block(),
        LayoutSpec::Partitioned {
            bounds: vblock_bounds,
            devices: (partitions as usize).min(vol.num_devices()),
        },
        Some(capacity),
    )?;

    // Copy, halo records included (they are written twice — once per
    // neighbouring partition — which is the point).
    let mut buf = vec![0u8; rs];
    for part in &parts {
        for (i, r) in (part.src_lo..part.src_hi).enumerate() {
            src.raw().read_record(r, &mut buf)?;
            pf.raw().write_record(part.stored_start + i as u64, &buf)?;
        }
    }
    pf.raw().extend_len_records(capacity);

    Ok(ReplicatedBoundary {
        pf,
        parts,
        src_total: total,
    })
}

impl ReplicatedBoundary {
    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.parts.len() as u32
    }

    /// The underlying parallel file.
    pub fn inner(&self) -> &ParallelFile {
        &self.pf
    }

    /// Extra records stored relative to the source (replication +
    /// padding overhead).
    pub fn overhead_records(&self) -> u64 {
        let stored: u64 = self.parts.iter().map(|p| p.padded_len).sum();
        stored - self.src_total
    }

    /// Read partition `p`'s stored region — own records *and* halo — as
    /// one contiguous local read (no cross-partition traffic).
    pub fn read_partition(&self, p: u32) -> Result<HaloRegion> {
        let part = self.parts.get(p as usize).ok_or(CoreError::BadProcess {
            process: p,
            of: self.parts.len() as u32,
        })?;
        let rs = self.pf.record_size();
        let n = (part.src_hi - part.src_lo) as usize;
        let mut data = vec![0u8; n * rs];
        let mut buf = vec![0u8; rs];
        for i in 0..n as u64 {
            self.pf.raw().read_record(part.stored_start + i, &mut buf)?;
            data[i as usize * rs..(i as usize + 1) * rs].copy_from_slice(&buf);
        }
        Ok(HaloRegion {
            data,
            record_size: rs,
            first: part.src_lo,
            own: (part.own_lo, part.own_hi),
        })
    }

    /// The de-duplicating global view: emits each *source* record exactly
    /// once, in source order, skipping halo replicas and padding.
    pub fn for_each_global(&self, mut f: impl FnMut(u64, &[u8])) -> Result<u64> {
        let rs = self.pf.record_size();
        let mut buf = vec![0u8; rs];
        let mut emitted = 0u64;
        for part in &self.parts {
            // Skip the left halo: start at the owned range.
            let skip = part.own_lo - part.src_lo;
            for (i, src_idx) in (part.own_lo..part.own_hi).enumerate() {
                self.pf
                    .raw()
                    .read_record(part.stored_start + skip + i as u64, &mut buf)?;
                f(src_idx, &buf);
                emitted += 1;
            }
        }
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_fs::VolumeConfig;

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 1024,
            block_size: 256,
        })
        .unwrap()
    }

    fn rec(tag: u64) -> Vec<u8> {
        (0..64).map(|i| (tag as usize * 19 + i) as u8).collect()
    }

    fn ps_source(v: &Volume, n: u64, parts: u32) -> ParallelFile {
        let org = Organization::PartitionedSeq { partitions: parts };
        let pf = ParallelFile::create_sized(v, "src", org, 64, 4, n).unwrap();
        for p in 0..parts {
            let mut h = pf.partition_handle(p).unwrap();
            let (lo, hi) = h.range();
            for g in lo..hi {
                h.write_next(&rec(g)).unwrap();
            }
        }
        pf
    }

    #[test]
    fn halo_region_covers_neighbours() {
        let v = vol();
        let pf = ps_source(&v, 128, 4); // partitions of 32
        let region = read_partition_with_halo(&pf, 1, 3).unwrap();
        assert_eq!(region.own_range(), (32, 64));
        assert_eq!(region.first_record(), 29);
        assert_eq!(region.len_records(), 32 + 6);
        for idx in 29..67 {
            assert_eq!(region.record(idx), rec(idx).as_slice(), "record {idx}");
        }
    }

    #[test]
    fn halo_clamps_at_file_edges() {
        let v = vol();
        let pf = ps_source(&v, 128, 4);
        let first = read_partition_with_halo(&pf, 0, 5).unwrap();
        assert_eq!(first.first_record(), 0);
        assert_eq!(first.len_records(), 32 + 5);
        let last = read_partition_with_halo(&pf, 3, 5).unwrap();
        assert_eq!(last.first_record(), 96 - 5);
        assert_eq!(last.len_records(), 32 + 5);
    }

    #[test]
    fn stencil_via_halo_matches_sequential() {
        // 3-point mean over a partitioned file equals the sequential
        // computation — the correctness bar for any halo mechanism.
        let v = vol();
        let n = 128u64;
        let pf = ps_source(&v, n, 4);
        // Sequential reference over the global view.
        let mut vals = Vec::new();
        let mut r = pf.global_reader();
        let mut buf = vec![0u8; 64];
        while r.read_record(&mut buf).unwrap() {
            vals.push(u64::from(buf[0]));
        }
        let reference: Vec<u64> = (0..n as usize)
            .map(|i| {
                let l = if i == 0 { vals[0] } else { vals[i - 1] };
                let rr = if i + 1 == n as usize {
                    vals[i]
                } else {
                    vals[i + 1]
                };
                (l + vals[i] + rr) / 3
            })
            .collect();
        // Parallel: each partition computes with halo = 1.
        let mut parallel = vec![0u64; n as usize];
        for p in 0..4 {
            let region = read_partition_with_halo(&pf, p, 1).unwrap();
            let (lo, hi) = region.own_range();
            for i in lo..hi {
                let at = |j: u64| u64::from(region.record(j)[0]);
                let l = if i == 0 { at(0) } else { at(i - 1) };
                let rr = if i + 1 == n { at(i) } else { at(i + 1) };
                parallel[i as usize] = (l + at(i) + rr) / 3;
            }
        }
        assert_eq!(parallel, reference);
    }

    #[test]
    fn replicated_file_serves_local_halos() {
        let v = vol();
        let pf = ps_source(&v, 128, 4);
        let rep = create_replicated(&v, "rep", &pf, 4, 4).unwrap();
        assert_eq!(rep.partitions(), 4);
        // Middle partition: full halo on both sides, read locally.
        let region = rep.read_partition(2).unwrap();
        assert_eq!(region.own_range(), (64, 96));
        assert_eq!(region.first_record(), 60);
        for idx in 60..100 {
            assert_eq!(region.record(idx), rec(idx).as_slice(), "record {idx}");
        }
        // Replication costs extra storage.
        assert!(rep.overhead_records() >= 2 * 4 * 3 / 2);
    }

    #[test]
    fn dedup_global_view_restores_source_order() {
        let v = vol();
        let pf = ps_source(&v, 120, 3);
        let rep = create_replicated(&v, "rep", &pf, 3, 2).unwrap();
        let mut next = 0u64;
        let n = rep
            .for_each_global(|idx, bytes| {
                assert_eq!(idx, next, "order");
                assert_eq!(bytes, rec(idx).as_slice(), "record {idx}");
                next += 1;
            })
            .unwrap();
        assert_eq!(n, 120);
    }

    #[test]
    fn zero_halo_replication_is_plain_ps() {
        let v = vol();
        let pf = ps_source(&v, 128, 4);
        let rep = create_replicated(&v, "rep", &pf, 4, 0).unwrap();
        assert_eq!(rep.overhead_records(), 0);
        let mut count = 0;
        rep.for_each_global(|_, _| count += 1).unwrap();
        assert_eq!(count, 128);
    }
}
