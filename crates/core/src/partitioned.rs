//! Partitioned access handles (types PS and PDA).
//!
//! "The file is partitioned into contiguous blocks, one block per process.
//! Each process performs its own I/O operations within its assigned
//! block" (§3.1). The same handle serves the direct-access variant (PDA):
//! sequential methods walk the partition in order, `read_at`/`write_at`
//! address records randomly *within* the partition — "blocks can be
//! thought of as pages of virtual memory".

use pario_fs::RawFile;

use crate::error::{CoreError, Result};

/// A process's window onto its partition of a PS/PDA file.
pub struct PartitionHandle {
    raw: RawFile,
    partition: u32,
    /// Global record range [start, end) owned by this partition.
    start: u64,
    end: u64,
    /// Sequential cursor, as a partition-local record index.
    cursor: u64,
}

impl PartitionHandle {
    pub(crate) fn new(raw: RawFile, partition: u32, start: u64, end: u64) -> PartitionHandle {
        PartitionHandle {
            raw,
            partition,
            start,
            end,
            cursor: 0,
        }
    }

    /// This handle's partition index.
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// Records owned by the partition.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for a zero-record partition.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The global record range `[start, end)`.
    pub fn range(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// Partition-local position of the sequential cursor.
    pub fn position(&self) -> u64 {
        self.cursor
    }

    /// Rewind the sequential cursor.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    fn global_index(&self, local: u64) -> Result<u64> {
        if local >= self.len() {
            return Err(CoreError::Fs(pario_fs::FsError::OutOfBounds {
                record: local,
                len: self.len(),
            }));
        }
        Ok(self.start + local)
    }

    // ------------------------------------------------------------------
    // Sequential access (PS)
    // ------------------------------------------------------------------

    /// Read the next record of this partition. Returns `false` at the end
    /// of the partition (or past the data written so far).
    pub fn read_next(&mut self, out: &mut [u8]) -> Result<bool> {
        let global = self.start + self.cursor;
        if self.cursor >= self.len() || global >= self.raw.len_records() {
            return Ok(false);
        }
        self.raw.read_record(global, out)?;
        self.cursor += 1;
        Ok(true)
    }

    /// Write the next record of this partition.
    ///
    /// Fails once the partition is full — a process cannot spill into its
    /// neighbour's blocks.
    pub fn write_next(&mut self, data: &[u8]) -> Result<()> {
        let local = self.cursor;
        let global = self.global_index(local)?;
        self.raw.write_record(global, data)?;
        self.cursor += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Direct access within the partition (PDA)
    // ------------------------------------------------------------------

    /// File blocks (paper blocks) in this partition, counting a short
    /// tail block.
    pub fn blocks(&self) -> u64 {
        let rpb = self.raw.records_per_block() as u64;
        self.len().div_ceil(rpb)
    }

    /// A cursor over one file block of this partition: direct access *by
    /// block*, strictly sequential *within* the block.
    ///
    /// The paper's §3.2 suggests distinguishing "PDA files which perform
    /// random access within blocks \[from\] an equivalent organization
    /// which always accesses records sequentially within blocks"; this
    /// is that restricted access method, which implementations can serve
    /// with one positioning per block.
    pub fn block_cursor(&self, local_block: u64) -> Result<BlockCursor<'_>> {
        let nblocks = self.blocks();
        if local_block >= nblocks {
            return Err(CoreError::Fs(pario_fs::FsError::OutOfBounds {
                record: local_block,
                len: nblocks,
            }));
        }
        let rpb = self.raw.records_per_block() as u64;
        let base = local_block * rpb;
        let len = rpb.min(self.len() - base);
        Ok(BlockCursor {
            handle: self,
            base,
            len,
            pos: 0,
        })
    }

    /// Read the record at partition-local index `local`.
    pub fn read_at(&self, local: u64, out: &mut [u8]) -> Result<()> {
        let global = self.global_index(local)?;
        self.raw.read_record(global, out)?;
        Ok(())
    }

    /// Write the record at partition-local index `local`.
    pub fn write_at(&self, local: u64, data: &[u8]) -> Result<()> {
        let global = self.global_index(local)?;
        self.raw.write_record(global, data)?;
        Ok(())
    }
}

/// Sequential access within one file block of a partition (see
/// [`PartitionHandle::block_cursor`]).
pub struct BlockCursor<'a> {
    handle: &'a PartitionHandle,
    /// Partition-local record index where the block starts.
    base: u64,
    /// Records in this block (short for a tail block).
    len: u64,
    pos: u64,
}

impl BlockCursor<'_> {
    /// Records in this block.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for an empty tail block (cannot happen via `block_cursor`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// Read the next record of the block; `false` at the block's end.
    pub fn read_next(&mut self, out: &mut [u8]) -> Result<bool> {
        if self.pos >= self.len {
            return Ok(false);
        }
        self.handle.read_at(self.base + self.pos, out)?;
        self.pos += 1;
        Ok(true)
    }

    /// Write the next record of the block.
    ///
    /// Fails once the block is full — strictly sequential within.
    pub fn write_next(&mut self, data: &[u8]) -> Result<()> {
        if self.pos >= self.len {
            return Err(CoreError::Fs(pario_fs::FsError::OutOfBounds {
                record: self.pos,
                len: self.len,
            }));
        }
        self.handle.write_at(self.base + self.pos, data)?;
        self.pos += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::pfile::ParallelFile;
    use pario_fs::{FsError, Volume, VolumeConfig};

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 512,
            block_size: 256,
        })
        .unwrap()
    }

    fn rec(tag: u64, size: usize) -> Vec<u8> {
        (0..size).map(|i| (tag as usize * 13 + i) as u8).collect()
    }

    #[test]
    fn processes_fill_their_partitions_independently() {
        let v = vol();
        let org = Organization::PartitionedSeq { partitions: 4 };
        let pf = ParallelFile::create_sized(&v, "ps", org, 64, 4, 128).unwrap();
        crossbeam::thread::scope(|s| {
            for p in 0..4u32 {
                let mut h = pf.partition_handle(p).unwrap();
                s.spawn(move |_| {
                    let (lo, hi) = h.range();
                    for g in lo..hi {
                        h.write_next(&rec(g, 64)).unwrap();
                    }
                    // Partition full: further writes rejected.
                    assert!(h.write_next(&rec(0, 64)).is_err());
                });
            }
        })
        .unwrap();
        // Global view sees the partitions in order — a coherent file.
        let mut r = pf.global_reader();
        let mut buf = vec![0u8; 64];
        let mut idx = 0u64;
        while r.read_record(&mut buf).unwrap() {
            assert_eq!(buf, rec(idx, 64), "record {idx}");
            idx += 1;
        }
        assert_eq!(idx, 128);
    }

    #[test]
    fn sequential_read_stops_at_partition_end() {
        let v = vol();
        let org = Organization::PartitionedSeq { partitions: 2 };
        let pf = ParallelFile::create_sized(&v, "ps", org, 64, 4, 64).unwrap();
        let mut w = pf.partition_handle(1).unwrap();
        for i in 0..w.len() {
            w.write_next(&rec(i, 64)).unwrap();
        }
        let mut h = pf.partition_handle(1).unwrap();
        let mut buf = vec![0u8; 64];
        let mut n = 0;
        while h.read_next(&mut buf).unwrap() {
            assert_eq!(buf, rec(n, 64));
            n += 1;
        }
        assert_eq!(n, 32);
        h.rewind();
        assert!(h.read_next(&mut buf).unwrap());
        assert_eq!(h.position(), 1);
    }

    #[test]
    fn direct_access_within_partition() {
        let v = vol();
        let org = Organization::PartitionedDirect { partitions: 2 };
        let pf = ParallelFile::create_sized(&v, "pda", org, 64, 4, 64).unwrap();
        let h = pf.partition_handle(0).unwrap();
        // Random writes then reads, multiple passes (the out-of-core use).
        let order = [7u64, 0, 15, 3, 31, 8];
        for &i in &order {
            h.write_at(i, &rec(i, 64)).unwrap();
        }
        let mut buf = vec![0u8; 64];
        for _pass in 0..2 {
            for &i in &order {
                h.read_at(i, &mut buf).unwrap();
                assert_eq!(buf, rec(i, 64));
            }
        }
        // Out-of-partition index rejected.
        assert!(matches!(
            h.read_at(32, &mut buf),
            Err(CoreError::Fs(FsError::OutOfBounds { .. }))
        ));
        assert!(h.write_at(32, &rec(0, 64)).is_err());
    }

    #[test]
    fn block_cursor_sequential_within_blocks() {
        let v = vol();
        let org = Organization::PartitionedDirect { partitions: 2 };
        // 30 records, 4 per block, 2 partitions -> partition 1 has a
        // short tail block.
        let pf = ParallelFile::create_sized(&v, "pda", org, 64, 4, 30).unwrap();
        let h = pf.partition_handle(1).unwrap();
        assert_eq!(h.len(), 14);
        assert_eq!(h.blocks(), 4); // 4+4+4+2
                                   // Blocks may be visited in any order; records within go in order.
        for blk in [2u64, 0, 3, 1] {
            let mut c = h.block_cursor(blk).unwrap();
            let expect = if blk == 3 { 2 } else { 4 };
            assert_eq!(c.len(), expect);
            for k in 0..c.len() {
                c.write_next(&rec(blk * 10 + k, 64)).unwrap();
            }
            // Strictly sequential: the block refuses further writes.
            assert!(c.write_next(&rec(0, 64)).is_err());
        }
        for blk in 0..4u64 {
            let mut c = h.block_cursor(blk).unwrap();
            let mut buf = vec![0u8; 64];
            let mut k = 0u64;
            while c.read_next(&mut buf).unwrap() {
                assert_eq!(buf, rec(blk * 10 + k, 64));
                k += 1;
            }
            assert_eq!(k, c.len());
            assert_eq!(c.remaining(), 0);
        }
        assert!(h.block_cursor(4).is_err());
    }

    #[test]
    fn partition_isolation() {
        // A handle can never touch records outside its range.
        let v = vol();
        let org = Organization::PartitionedDirect { partitions: 4 };
        let pf = ParallelFile::create_sized(&v, "pda", org, 64, 4, 128).unwrap();
        let h1 = pf.partition_handle(1).unwrap();
        h1.write_at(0, &rec(42, 64)).unwrap();
        // Partition 0 sees none of it.
        let h0 = pf.partition_handle(0).unwrap();
        let mut buf = vec![0u8; 64];
        h0.read_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // And the global record written is exactly start-of-partition-1.
        let (lo, _) = h1.range();
        pf.raw().read_record(lo, &mut buf).unwrap();
        assert_eq!(buf, rec(42, 64));
    }
}
