//! Format conversion between organizations.
//!
//! The paper's third answer to view mismatch (§5): "supply conversion
//! utilities to copy from one format to the other, but this could be
//! expensive for large files." Both a sequential converter (through the
//! global views) and a parallel one (each thread copies a record range)
//! are provided, so experiment E9 can price the copy against the degraded
//! adapter view.

use pario_fs::{copy_global, Volume};

use crate::error::Result;
use crate::organization::Organization;
use crate::pfile::{uniform_bounds, ParallelFile};

/// Copy `src` into a brand-new file `dst_name` organized as `dst_org`,
/// sequentially through the global views. Returns the new file.
pub fn convert(
    vol: &Volume,
    src: &ParallelFile,
    dst_name: &str,
    dst_org: Organization,
) -> Result<ParallelFile> {
    let dst = ParallelFile::create_sized(
        vol,
        dst_name,
        dst_org,
        src.record_size(),
        src.records_per_block(),
        src.len_records(),
    )?;
    copy_global(src.raw(), dst.raw())?;
    Ok(dst)
}

/// Parallel conversion: `threads` workers each copy a contiguous record
/// range. Faster than [`convert`] when source and destination placements
/// give the workers independent devices.
pub fn convert_parallel(
    vol: &Volume,
    src: &ParallelFile,
    dst_name: &str,
    dst_org: Organization,
    threads: u32,
) -> Result<ParallelFile> {
    assert!(threads >= 1);
    let total = src.len_records();
    let dst = ParallelFile::create_sized(
        vol,
        dst_name,
        dst_org,
        src.record_size(),
        src.records_per_block(),
        total,
    )?;
    let bounds = uniform_bounds(total, threads);
    let errs: Vec<crate::error::CoreError> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads as usize {
            let (lo, hi) = (bounds[t], bounds[t + 1]);
            let src = src.raw().clone();
            let dst = dst.raw().clone();
            handles.push(s.spawn(move |_| -> Result<()> {
                let mut buf = vec![0u8; src.record_size()];
                for r in lo..hi {
                    src.read_record(r, &mut buf)?;
                    dst.write_record(r, &buf)?;
                }
                Ok(())
            }));
        }
        handles
            .into_iter()
            // invariant: a worker panic is a bug in the converter itself; propagate it.
            .filter_map(|h| h.join().expect("worker panicked").err())
            .collect()
    })
    // invariant: scope() errs only when a worker panicked, handled above.
    .expect("scope");
    if let Some(e) = errs.into_iter().next() {
        return Err(e);
    }
    dst.raw().extend_len_records(total);
    Ok(dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_fs::{Volume, VolumeConfig};

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 1024,
            block_size: 256,
        })
        .unwrap()
    }

    fn rec(tag: u64) -> Vec<u8> {
        (0..64).map(|i| (tag as usize * 23 + i) as u8).collect()
    }

    fn ps_source(v: &Volume, n: u64) -> ParallelFile {
        let org = Organization::PartitionedSeq { partitions: 4 };
        let pf = ParallelFile::create_sized(v, "src", org, 64, 4, n).unwrap();
        for p in 0..4 {
            let mut h = pf.partition_handle(p).unwrap();
            let (lo, hi) = h.range();
            for g in lo..hi {
                h.write_next(&rec(g)).unwrap();
            }
        }
        pf
    }

    fn check(pf: &ParallelFile, n: u64) {
        let mut r = pf.global_reader();
        let mut buf = vec![0u8; 64];
        let mut i = 0u64;
        while r.read_record(&mut buf).unwrap() {
            assert_eq!(buf, rec(i), "record {i}");
            i += 1;
        }
        assert_eq!(i, n);
    }

    #[test]
    fn sequential_conversion_ps_to_is() {
        let v = vol();
        let src = ps_source(&v, 128);
        let dst = convert(
            &v,
            &src,
            "dst",
            Organization::InterleavedSeq { processes: 4 },
        )
        .unwrap();
        assert_eq!(
            dst.organization(),
            Organization::InterleavedSeq { processes: 4 }
        );
        check(&dst, 128);
        // Source untouched.
        check(&src, 128);
    }

    #[test]
    fn parallel_conversion_matches() {
        let v = vol();
        let src = ps_source(&v, 128);
        let dst = convert_parallel(
            &v,
            &src,
            "dst",
            Organization::PartitionedSeq { partitions: 4 },
            4,
        )
        .unwrap();
        check(&dst, 128);
        assert_eq!(dst.len_records(), 128);
    }

    #[test]
    fn conversion_to_every_organization() {
        let v = vol();
        let src = ps_source(&v, 64);
        for (i, org) in [
            Organization::Sequential,
            Organization::SelfScheduledSeq,
            Organization::GlobalDirect,
            Organization::InterleavedSeq { processes: 2 },
            Organization::PartitionedSeq { partitions: 2 },
            Organization::PartitionedDirect { partitions: 2 },
        ]
        .into_iter()
        .enumerate()
        {
            let name = format!("dst{i}");
            let dst = convert(&v, &src, &name, org).unwrap();
            check(&dst, 64);
        }
    }
}
