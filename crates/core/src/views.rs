//! Forcing alternate internal views (the paper's §5 "problem areas").
//!
//! "A serious mismatch occurs, for example, if a file created with a PS
//! organization needs to be read later with an IS format. One alternative
//! would be to … provide a software interface to present the alternate
//! view when needed, but with degraded performance." These functions are
//! that software interface: they construct any organization's handle over
//! any file, bypassing the organization check. Correctness is preserved
//! (all handles go through record-index arithmetic and the file's real
//! layout); what degrades is access *locality* — an IS view over a PS
//! placement hops around inside partitions instead of streaming.

use crate::direct::DirectHandle;
use crate::error::{CoreError, Result};
use crate::interleaved::InterleavedHandle;
use crate::partitioned::PartitionHandle;
use crate::pfile::{uniform_bounds, ParallelFile};
use crate::selfsched::SelfSchedReader;

/// View any file through an interleaved (IS) access pattern for process
/// `p` of `processes`, regardless of its organization.
pub fn force_interleaved(pf: &ParallelFile, p: u32, processes: u32) -> Result<InterleavedHandle> {
    if p >= processes || processes == 0 {
        return Err(CoreError::BadProcess {
            process: p,
            of: processes,
        });
    }
    Ok(InterleavedHandle::new(pf.raw().clone(), p, processes))
}

/// View any file through a partitioned (PS) access pattern: near-equal
/// contiguous record ranges over the *current* file length.
pub fn force_partition(pf: &ParallelFile, p: u32, partitions: u32) -> Result<PartitionHandle> {
    if p >= partitions || partitions == 0 {
        return Err(CoreError::BadProcess {
            process: p,
            of: partitions,
        });
    }
    let rpb = pf.records_per_block() as u64;
    let total = pf.len_records();
    let file_blocks = total.div_ceil(rpb);
    let bounds = uniform_bounds(file_blocks, partitions);
    let lo = (bounds[p as usize] * rpb).min(total);
    let hi = (bounds[p as usize + 1] * rpb).min(total);
    Ok(PartitionHandle::new(pf.raw().clone(), p, lo, hi))
}

/// View any file through a self-scheduled reader: cooperating handles
/// (clones of `pf` and of the returned reader) share one cursor and
/// consume the records exhaustively, exactly once, in arrival order —
/// regardless of how the file was organized when written.
pub fn force_self_sched(pf: &ParallelFile) -> SelfSchedReader {
    SelfSchedReader::two_phase(pf.raw().clone(), pf.clone())
}

/// View any file through unrestricted direct access (a GDA handle).
pub fn force_direct(pf: &ParallelFile) -> DirectHandle {
    DirectHandle::new(pf.raw().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use pario_fs::{Volume, VolumeConfig};

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 512,
            block_size: 256,
        })
        .unwrap()
    }

    fn rec(tag: u64) -> Vec<u8> {
        (0..64).map(|i| (tag as usize * 11 + i) as u8).collect()
    }

    /// Write a PS file, read it back with an IS view — the §5 mismatch.
    #[test]
    fn is_view_over_ps_file_sees_every_record_once() {
        let v = vol();
        let org = Organization::PartitionedSeq { partitions: 4 };
        let pf = ParallelFile::create_sized(&v, "ps", org, 64, 4, 128).unwrap();
        for p in 0..4 {
            let mut h = pf.partition_handle(p).unwrap();
            let (lo, hi) = h.range();
            for g in lo..hi {
                h.write_next(&rec(g)).unwrap();
            }
        }
        // Now three "IS processes" read it with stride 3.
        let mut seen = [false; 128];
        for p in 0..3 {
            let mut h = force_interleaved(&pf, p, 3).unwrap();
            let mut buf = vec![0u8; 64];
            loop {
                let idx = h.current_record();
                if !h.read_next(&mut buf).unwrap() {
                    break;
                }
                assert_eq!(buf, rec(idx), "record {idx}");
                assert!(!seen[idx as usize], "record {idx} seen twice");
                seen[idx as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every record seen");
    }

    /// Write through IS, read back with a PS view.
    #[test]
    fn ps_view_over_is_file() {
        let v = vol();
        let org = Organization::InterleavedSeq { processes: 2 };
        let pf = ParallelFile::create(&v, "is", org, 64, 4).unwrap();
        for p in 0..2 {
            let mut h = pf.interleaved_handle(p).unwrap();
            for k in 0..8u64 {
                let base = (u64::from(p) + k * 2) * 4;
                for c in 0..4u64 {
                    h.write_next(&rec(base + c)).unwrap();
                }
            }
        }
        assert_eq!(pf.len_records(), 64);
        let mut seen = 0u64;
        for p in 0..2 {
            let mut h = force_partition(&pf, p, 2).unwrap();
            assert_eq!(h.len(), 32);
            let mut buf = vec![0u8; 64];
            let (lo, _) = h.range();
            let mut local = 0u64;
            while h.read_next(&mut buf).unwrap() {
                assert_eq!(buf, rec(lo + local));
                local += 1;
                seen += 1;
            }
        }
        assert_eq!(seen, 64);
    }

    #[test]
    fn ss_view_over_ps_file_drains_exactly_once() {
        let v = vol();
        let org = Organization::PartitionedSeq { partitions: 4 };
        let pf = ParallelFile::create_sized(&v, "ps", org, 64, 4, 64).unwrap();
        for p in 0..4 {
            let mut h = pf.partition_handle(p).unwrap();
            let (lo, hi) = h.range();
            for g in lo..hi {
                h.write_next(&rec(g)).unwrap();
            }
        }
        // A later program phase consumes it as a work queue.
        let readers: Vec<_> = (0..3).map(|_| force_self_sched(&pf)).collect();
        let mut seen = [false; 64];
        let mut buf = vec![0u8; 64];
        let mut turn = 0;
        while let Some(idx) = readers[turn % 3].read_next(&mut buf).unwrap() {
            assert_eq!(buf, rec(idx));
            assert!(!std::mem::replace(&mut seen[idx as usize], true));
            turn += 1;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn direct_view_over_is_file() {
        let v = vol();
        let org = Organization::InterleavedSeq { processes: 2 };
        let pf = ParallelFile::create(&v, "is", org, 64, 4).unwrap();
        let mut w = pf.global_writer();
        for i in 0..32u64 {
            w.write_record(&rec(i)).unwrap();
        }
        w.finish().unwrap();
        let h = force_direct(&pf);
        let mut buf = vec![0u8; 64];
        for idx in [31u64, 0, 17, 8] {
            h.read_record(idx, &mut buf).unwrap();
            assert_eq!(buf, rec(idx));
        }
        h.write_record(40, &rec(40)).unwrap();
        assert_eq!(pf.len_records(), 41);
    }

    #[test]
    fn forced_view_validates_process_index() {
        let v = vol();
        let pf = ParallelFile::create(&v, "s", Organization::Sequential, 64, 4).unwrap();
        assert!(force_interleaved(&pf, 3, 3).is_err());
        assert!(force_partition(&pf, 9, 4).is_err());
    }
}
