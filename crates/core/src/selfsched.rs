//! Self-scheduled sequential access (type SS).
//!
//! "Each I/O request (from whatever process) is guaranteed to reference
//! the next record in the file so that each request accesses a different
//! record and no record gets skipped" (§3.1). Two implementations:
//!
//! * **Two-phase** (the paper's §4 optimisation): the file pointer is
//!   adjusted *early in the I/O call* with an atomic reservation, "thereby
//!   allowing the next call from another process to proceed before the
//!   actual data transfer from the first call has completed". The transfer
//!   happens outside any lock.
//! * **Big-lock** (the naive baseline): one mutex held across the whole
//!   call, serialising transfers. Exists so experiment E3 can measure what
//!   two-phase buys.

use std::sync::atomic::Ordering;

use pario_check::AtomicU64;

use pario_fs::RawFile;

use crate::error::Result;
use crate::pfile::ParallelFile;

/// The shared self-scheduling cursor: the paper's §3 "file pointer"
/// that hands each request the globally next index, extracted as a
/// standalone primitive so other layers (in-process readers here, the
/// `pario-server` service layer across client sessions) reuse the same
/// two-phase reservation protocol.
///
/// Phase 1 is the atomic claim (`claim*`); phase 2 — the data transfer —
/// happens entirely outside the cursor, so claims from other parties
/// proceed concurrently with transfers.
pub struct SharedCursor {
    pos: AtomicU64,
}

impl SharedCursor {
    /// A cursor starting at `start`.
    pub fn new(start: u64) -> SharedCursor {
        SharedCursor {
            pos: AtomicU64::new(start),
        }
    }

    /// Indices claimed so far.
    pub fn position(&self) -> u64 {
        self.pos.load(Ordering::Acquire)
    }

    /// Two-phase reservation: claim the next index, provided it is below
    /// `limit`. CAS (not `fetch_add`) so the cursor never runs past the
    /// end of file. `None` once exhausted.
    pub fn claim(&self, limit: u64) -> Option<u64> {
        loop {
            let cur = self.pos.load(Ordering::Acquire);
            if cur >= limit {
                return None;
            }
            if self
                .pos
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(cur);
            }
        }
    }

    /// Claim every index from the current position to the end of its
    /// `stride`-aligned block (capped at `limit`) in one reservation —
    /// the paper's "self-scheduling by block". Returns the first index
    /// claimed and the count (`1..=stride`), or `None` once exhausted.
    /// Claims stay block-aligned even after single-index claims.
    pub fn claim_through_block(&self, stride: u64, limit: u64) -> Option<(u64, u64)> {
        assert!(stride > 0, "stride must be positive");
        loop {
            let cur = self.pos.load(Ordering::Acquire);
            if cur >= limit {
                return None;
            }
            let next = (((cur / stride) + 1) * stride).min(limit);
            if self
                .pos
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((cur, next - cur));
            }
        }
    }

    /// Claim the next index unconditionally (writers can always extend).
    pub fn claim_unbounded(&self) -> u64 {
        self.pos.fetch_add(1, Ordering::AcqRel)
    }

    /// Read the position without ordering (for use under an external
    /// lock — the big-lock baseline).
    pub fn peek_relaxed(&self) -> u64 {
        self.pos.load(Ordering::Relaxed) // ordering: caller holds the big lock, which orders the access
    }

    /// Set the position without ordering (for use under an external
    /// lock — the big-lock baseline).
    pub fn set_relaxed(&self, v: u64) {
        self.pos.store(v, Ordering::Relaxed); // ordering: caller holds the big lock, which orders the access
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    TwoPhase,
    BigLock,
}

/// A shared-cursor reader; clones (and clones of the owning
/// [`ParallelFile`]) share the cursor.
#[derive(Clone)]
pub struct SelfSchedReader {
    raw: RawFile,
    owner: ParallelFile,
    mode: Mode,
}

impl SelfSchedReader {
    pub(crate) fn two_phase(raw: RawFile, owner: ParallelFile) -> SelfSchedReader {
        SelfSchedReader {
            raw,
            owner,
            mode: Mode::TwoPhase,
        }
    }

    pub(crate) fn big_lock(raw: RawFile, owner: ParallelFile) -> SelfSchedReader {
        SelfSchedReader {
            raw,
            owner,
            mode: Mode::BigLock,
        }
    }

    /// Claim and read the next unread record. Returns the record index
    /// served, or `None` once the file is exhausted.
    pub fn read_next(&self, out: &mut [u8]) -> Result<Option<u64>> {
        let ss = self.owner.ss_state();
        match self.mode {
            Mode::TwoPhase => {
                // Phase 1: reserve the record index.
                let Some(cur) = ss.read_cursor.claim(self.raw.len_records()) else {
                    return Ok(None);
                };
                // Phase 2: transfer, concurrently with other readers.
                self.raw.read_record(cur, out)?;
                Ok(Some(cur))
            }
            Mode::BigLock => {
                let _g = ss.big_lock.lock();
                let cur = ss.read_cursor.peek_relaxed();
                if cur >= self.raw.len_records() {
                    return Ok(None);
                }
                self.raw.read_record(cur, out)?;
                ss.read_cursor.set_relaxed(cur + 1);
                Ok(Some(cur))
            }
        }
    }

    /// Claim and read the next *file block* of records — the paper's
    /// "self-scheduling by block for multi-record blocks". Claims up to
    /// `records_per_block` records in one cursor operation (fewer at the
    /// end of file) and reads them into `out`, which must hold one file
    /// block. Returns the global index of the first record claimed and
    /// the count, or `None` at end of file.
    ///
    /// Only the two-phase implementation supports block claims (the
    /// big-lock baseline exists solely for experiment E3).
    pub fn read_next_block(&self, out: &mut [u8]) -> Result<Option<(u64, usize)>> {
        let rs = self.raw.record_size();
        let rpb = self.raw.records_per_block() as u64;
        assert_eq!(out.len(), rs * rpb as usize, "block buffer size");
        let ss = self.owner.ss_state();
        // Claim to the end of the current file block (keeps block claims
        // aligned even after single-record claims).
        let Some((cur, n)) = ss
            .read_cursor
            .claim_through_block(rpb, self.raw.len_records())
        else {
            return Ok(None);
        };
        let n = n as usize;
        self.raw.read_span(cur * rs as u64, &mut out[..n * rs])?;
        Ok(Some((cur, n)))
    }

    /// Records already claimed.
    pub fn claimed(&self) -> u64 {
        self.owner.ss_state().read_cursor.position()
    }
}

/// A shared-cursor writer: "self-scheduled output can be used when the
/// order of the results is not important".
#[derive(Clone)]
pub struct SelfSchedWriter {
    raw: RawFile,
    owner: ParallelFile,
    mode: Mode,
}

impl SelfSchedWriter {
    pub(crate) fn two_phase(raw: RawFile, owner: ParallelFile) -> SelfSchedWriter {
        SelfSchedWriter {
            raw,
            owner,
            mode: Mode::TwoPhase,
        }
    }

    pub(crate) fn big_lock(raw: RawFile, owner: ParallelFile) -> SelfSchedWriter {
        SelfSchedWriter {
            raw,
            owner,
            mode: Mode::BigLock,
        }
    }

    /// Claim the next record slot and write `data` there. Returns the
    /// slot index.
    pub fn write_next(&self, data: &[u8]) -> Result<u64> {
        let ss = self.owner.ss_state();
        match self.mode {
            Mode::TwoPhase => {
                // Phase 1: reserve the slot (writers can always extend).
                let idx = ss.write_cursor.claim_unbounded();
                // Phase 2: transfer outside any lock. write_record extends
                // the published length to cover the slot.
                self.raw.write_record(idx, data)?;
                Ok(idx)
            }
            Mode::BigLock => {
                let _g = ss.big_lock.lock();
                let idx = ss.write_cursor.peek_relaxed();
                self.raw.write_record(idx, data)?;
                ss.write_cursor.set_relaxed(idx + 1);
                Ok(idx)
            }
        }
    }

    /// Slots claimed so far (the file length once all writers finish).
    pub fn claimed(&self) -> u64 {
        self.owner.ss_state().write_cursor.position()
    }

    /// Publish the final length (all claimed slots) — call after every
    /// writer is done.
    pub fn finish(&self) -> Result<u64> {
        let n = self.claimed();
        self.raw.extend_len_records(n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use pario_fs::{Volume, VolumeConfig};
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    fn ss_file(v: &Volume, n: u64) -> ParallelFile {
        let pf = ParallelFile::create(v, "ss", Organization::SelfScheduledSeq, 64, 4).unwrap();
        let w = pf.self_sched_writer().unwrap();
        for i in 0..n {
            w.write_next(&[i as u8; 64]).unwrap();
        }
        w.finish().unwrap();
        pf
    }

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 512,
            block_size: 256,
        })
        .unwrap()
    }

    #[test]
    fn single_reader_sees_everything_in_order() {
        let v = vol();
        let pf = ss_file(&v, 20);
        let r = pf.self_sched_reader().unwrap();
        let mut buf = vec![0u8; 64];
        for i in 0..20u64 {
            assert_eq!(r.read_next(&mut buf).unwrap(), Some(i));
            assert!(buf.iter().all(|&b| b == i as u8));
        }
        assert_eq!(r.read_next(&mut buf).unwrap(), None);
        assert_eq!(r.claimed(), 20);
    }

    #[test]
    fn concurrent_readers_cover_exactly_once() {
        for naive in [false, true] {
            let v = vol();
            let pf = ss_file(&v, 200);
            let seen = StdMutex::new(HashSet::new());
            crossbeam::thread::scope(|s| {
                for _ in 0..8 {
                    let r = if naive {
                        pf.self_sched_reader_naive().unwrap()
                    } else {
                        pf.self_sched_reader().unwrap()
                    };
                    let seen = &seen;
                    s.spawn(move |_| {
                        let mut buf = vec![0u8; 64];
                        while let Some(idx) = r.read_next(&mut buf).unwrap() {
                            // Record content matches its index.
                            assert!(buf.iter().all(|&b| b == idx as u8));
                            assert!(
                                seen.lock().unwrap().insert(idx),
                                "record {idx} served twice (naive={naive})"
                            );
                        }
                    });
                }
            })
            .unwrap();
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen.len(), 200, "every record served (naive={naive})");
        }
    }

    #[test]
    fn concurrent_writers_fill_distinct_slots() {
        for naive in [false, true] {
            let v = vol();
            let pf =
                ParallelFile::create(&v, "out", Organization::SelfScheduledSeq, 64, 4).unwrap();
            crossbeam::thread::scope(|s| {
                for t in 0..6u8 {
                    let w = if naive {
                        pf.self_sched_writer_naive().unwrap()
                    } else {
                        pf.self_sched_writer().unwrap()
                    };
                    s.spawn(move |_| {
                        for _ in 0..25 {
                            let idx = w.write_next(&[t + 1; 64]).unwrap();
                            // Tag the record with its slot via a re-write so
                            // content checks are possible: slot content is
                            // the writer id, which is fine — uniqueness of
                            // slots is what we assert below.
                            let _ = idx;
                        }
                    });
                }
            })
            .unwrap();
            let w = pf.self_sched_writer().unwrap();
            assert_eq!(w.finish().unwrap(), 150);
            assert_eq!(pf.len_records(), 150);
            // Every slot was written by exactly one writer: all bytes of a
            // record agree and no record is zero (unwritten).
            let mut r = pf.global_reader();
            let mut rec = vec![0u8; 64];
            let mut count_per_writer = [0u64; 7];
            while r.read_record(&mut rec).unwrap() {
                let tag = rec[0];
                assert!(
                    (1..=6).contains(&tag),
                    "hole or torn record (naive={naive})"
                );
                assert!(rec.iter().all(|&b| b == tag), "torn record");
                count_per_writer[tag as usize] += 1;
            }
            assert_eq!(count_per_writer[1..].iter().sum::<u64>(), 150);
            assert!(count_per_writer[1..].iter().all(|&c| c == 25));
            v.remove("out").unwrap();
        }
    }

    #[test]
    fn block_claims_cover_exactly_once() {
        let v = vol();
        let pf = ss_file(&v, 42); // 42 records, 4 per block: short tail
        let seen = StdMutex::new(HashSet::new());
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let r = pf.self_sched_reader().unwrap();
                let seen = &seen;
                s.spawn(move |_| {
                    let mut block = vec![0u8; 64 * 4];
                    while let Some((first, n)) = r.read_next_block(&mut block).unwrap() {
                        assert!((1..=4).contains(&n));
                        for k in 0..n {
                            let rec = &block[k * 64..(k + 1) * 64];
                            let idx = first + k as u64;
                            assert!(rec.iter().all(|&b| b == idx as u8), "record {idx}");
                            assert!(seen.lock().unwrap().insert(idx), "dup {idx}");
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(seen.into_inner().unwrap().len(), 42);
    }

    #[test]
    fn record_and_block_claims_interleave() {
        let v = vol();
        let pf = ss_file(&v, 10); // blocks of 4: records 0..10
        let r = pf.self_sched_reader().unwrap();
        let mut rec = vec![0u8; 64];
        let mut block = vec![0u8; 256];
        // Single claim takes record 0; block claim then takes 1..4 (to
        // the block boundary), then 4..8, then 8..10 (short tail).
        assert_eq!(r.read_next(&mut rec).unwrap(), Some(0));
        assert_eq!(r.read_next_block(&mut block).unwrap(), Some((1, 3)));
        assert_eq!(r.read_next_block(&mut block).unwrap(), Some((4, 4)));
        assert_eq!(r.read_next_block(&mut block).unwrap(), Some((8, 2)));
        assert_eq!(r.read_next_block(&mut block).unwrap(), None);
        assert_eq!(r.read_next(&mut rec).unwrap(), None);
    }

    #[test]
    fn cursor_shared_across_clones() {
        let v = vol();
        let pf = ss_file(&v, 10);
        let r1 = pf.self_sched_reader().unwrap();
        let pf2 = pf.clone();
        let r2 = pf2.self_sched_reader().unwrap();
        let mut buf = vec![0u8; 64];
        assert_eq!(r1.read_next(&mut buf).unwrap(), Some(0));
        assert_eq!(r2.read_next(&mut buf).unwrap(), Some(1));
        assert_eq!(r1.read_next(&mut buf).unwrap(), Some(2));
    }

    #[test]
    fn reopened_file_restarts_cursor() {
        let v = vol();
        let pf = ss_file(&v, 5);
        let r = pf.self_sched_reader().unwrap();
        let mut buf = vec![0u8; 64];
        r.read_next(&mut buf).unwrap();
        // A separately opened handle is a new "program run": fresh cursor.
        let pf2 = ParallelFile::open(&v, "ss").unwrap();
        let r2 = pf2.self_sched_reader().unwrap();
        assert_eq!(r2.read_next(&mut buf).unwrap(), Some(0));
    }
}
