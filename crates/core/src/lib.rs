//! # pario-core — parallel file organizations (Crockett, 1989)
//!
//! The paper's primary contribution: *standardized file organizations for
//! parallel programs*, each with an internal view for concurrent access
//! and a global view for conventional sequential software.
//!
//! | Type | Organization | Internal view |
//! |------|--------------|---------------|
//! | S    | [`Organization::Sequential`] | [`StripedReader`] / [`StripedWriter`] (striped streaming) |
//! | PS   | [`Organization::PartitionedSeq`] | [`PartitionHandle`] |
//! | IS   | [`Organization::InterleavedSeq`] | [`InterleavedHandle`] |
//! | SS   | [`Organization::SelfScheduledSeq`] | [`SelfSchedReader`] / [`SelfSchedWriter`] |
//! | GDA  | [`Organization::GlobalDirect`] | [`DirectHandle`] |
//! | PDA  | [`Organization::PartitionedDirect`] | [`PartitionHandle`] (`read_at`/`write_at`) |
//!
//! Plus the paper's §5 problem-area machinery: forced alternate views
//! ([`views`]), conversion utilities ([`convert`], [`convert_parallel`]),
//! and partition-boundary handling ([`read_partition_with_halo`],
//! [`create_replicated`]).
//!
//! ```
//! use pario_core::{Organization, ParallelFile};
//! use pario_fs::{Volume, VolumeConfig};
//!
//! let vol = Volume::create_in_memory(VolumeConfig {
//!     devices: 4,
//!     device_blocks: 256,
//!     block_size: 4096,
//! })
//! .unwrap();
//! let pf = ParallelFile::create(
//!     &vol,
//!     "results",
//!     Organization::SelfScheduledSeq,
//!     128,
//!     32,
//! )
//! .unwrap();
//! let w = pf.self_sched_writer().unwrap();
//! for i in 0..100u32 {
//!     w.write_next(&vec![i as u8; 128]).unwrap();
//! }
//! assert_eq!(w.finish().unwrap(), 100);
//! ```

#![warn(missing_docs)]

mod boundary;
mod convert;
mod direct;
mod error;
mod interleaved;
mod organization;
mod partitioned;
mod pfile;
mod selfsched;
mod seq;
pub mod views;

pub use boundary::{create_replicated, read_partition_with_halo, HaloRegion, ReplicatedBoundary};
pub use convert::{convert, convert_parallel};
pub use direct::DirectHandle;
pub use error::{intern_expected, CoreError, Result};
pub use interleaved::InterleavedHandle;
pub use organization::Organization;
pub use partitioned::{BlockCursor, PartitionHandle};
pub use pfile::ParallelFile;
pub use selfsched::{SelfSchedReader, SelfSchedWriter, SharedCursor};
pub use seq::{StripedReader, StripedWriter};
