//! High-rate sequential streaming (type S) over striped devices.
//!
//! "For file types S and SS, disk striping can be used to spread the file
//! across multiple drives, resulting in higher transfer rates… Buffers
//! would be used when reading and writing to format the data into logical
//! records" (§4). [`StripedReader`] runs one read-ahead pipeline per
//! device and merges their streams back into logical order;
//! [`StripedWriter`] splits a record stream across per-device write-behind
//! pipelines. This is exactly the paper's "merge and split data streams"
//! buffering role, with the pipeline depth as the multiple-buffering knob.

use pario_buffer::{ReadAhead, WriteBehind};
use pario_fs::{resolve, RawFile};

use crate::error::{CoreError, Result};

/// Per-device prefetching reader that yields logical blocks in file order.
pub struct StripedReader {
    pipelines: Vec<ReadAhead>,
    /// Device slot of each logical block, in logical order.
    order: Vec<usize>,
    next: usize,
    block_size: usize,
    // Record framing state for read_records.
    raw: RawFile,
}

impl StripedReader {
    /// Open a streaming reader over the whole file with `nbufs` buffers
    /// per device (1 = synchronous, 2 = double buffering, …).
    pub fn new(raw: &RawFile, nbufs: usize) -> Result<StripedReader> {
        let meta = raw.meta_snapshot();
        let layout = raw.layout();
        let bs = raw.block_size() as u64;
        let used_blocks = (raw.len_records() * raw.record_size() as u64).div_ceil(bs);
        let nslots = layout.devices();
        let mut per_slot: Vec<Vec<u64>> = vec![Vec::new(); nslots];
        let mut order = Vec::with_capacity(used_blocks as usize);
        for l in 0..used_blocks {
            let p = layout.map(l);
            let abs = resolve(&meta.extents[p.device], p.block);
            per_slot[p.device].push(abs);
            order.push(p.device);
        }
        let vol = raw.volume();
        let pipelines = per_slot
            .into_iter()
            .enumerate()
            .map(|(slot, blocks)| {
                ReadAhead::new(vol.io_device(meta.device_map[slot]), blocks, nbufs)
            })
            .collect();
        Ok(StripedReader {
            pipelines,
            order,
            next: 0,
            block_size: raw.block_size(),
            raw: raw.clone(),
        })
    }

    /// Copy the next logical block into `out`. Returns `false` at end of
    /// file. `out` must be one volume block.
    pub fn read_block(&mut self, out: &mut [u8]) -> Result<bool> {
        assert_eq!(out.len(), self.block_size, "block buffer size");
        if self.next >= self.order.len() {
            return Ok(false);
        }
        let slot = self.order[self.next];
        let res = self.pipelines[slot]
            .next()
            // invariant: the schedule enqueues exactly one item per scheduled block.
            .expect("pipeline yields one item per scheduled block");
        let (_, buf) = res.map_err(|e| CoreError::Fs(e.into()))?;
        out.copy_from_slice(&buf);
        self.pipelines[slot].recycle(buf);
        self.next += 1;
        Ok(true)
    }

    /// Stream every record, in order, to `f(record_index, bytes)`.
    /// Records straddling block boundaries are reassembled.
    pub fn read_records(mut self, mut f: impl FnMut(u64, &[u8])) -> Result<u64> {
        let rs = self.raw.record_size();
        let total = self.raw.len_records();
        let mut rec = vec![0u8; rs];
        let mut rec_fill = 0usize;
        let mut block = vec![0u8; self.block_size];
        let mut emitted = 0u64;
        while emitted < total && self.read_block(&mut block)? {
            let mut off = 0usize;
            while off < block.len() && emitted < total {
                let take = (rs - rec_fill).min(block.len() - off);
                rec[rec_fill..rec_fill + take].copy_from_slice(&block[off..off + take]);
                rec_fill += take;
                off += take;
                if rec_fill == rs {
                    f(emitted, &rec);
                    emitted += 1;
                    rec_fill = 0;
                }
            }
        }
        Ok(emitted)
    }
}

/// Per-device write-behind writer that accepts records in logical order.
pub struct StripedWriter {
    raw: RawFile,
    pipelines: Vec<WriteBehind>,
    block: Vec<u8>,
    block_fill: usize,
    /// Next logical block index to emit.
    next_lblock: u64,
    /// Blocks available (from the preallocation at creation).
    cap_blocks: u64,
    records_written: u64,
}

impl StripedWriter {
    /// Open a streaming writer that overwrites the file from record 0,
    /// with capacity for `total_records` (preallocated so the placement
    /// is known up front) and `nbufs` buffers per device.
    pub fn create(raw: &RawFile, total_records: u64, nbufs: usize) -> Result<StripedWriter> {
        raw.ensure_capacity_records(total_records)?;
        let meta = raw.meta_snapshot();
        let vol = raw.volume();
        let pipelines = (0..raw.layout().devices())
            .map(|slot| WriteBehind::new(vol.io_device(meta.device_map[slot]), nbufs))
            .collect();
        Ok(StripedWriter {
            cap_blocks: raw.nblocks(),
            raw: raw.clone(),
            pipelines,
            block: vec![0u8; raw.block_size()],
            block_fill: 0,
            next_lblock: 0,
            records_written: 0,
        })
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.block_fill == 0 {
            return Ok(());
        }
        if self.next_lblock >= self.cap_blocks {
            return Err(CoreError::Fs(pario_fs::FsError::CapacityExceeded {
                requested: self.next_lblock + 1,
                capacity: self.cap_blocks,
            }));
        }
        // Zero-pad a short tail block.
        self.block[self.block_fill..].fill(0);
        let meta = self.raw.meta_snapshot();
        let p = self.raw.layout().map(self.next_lblock);
        let abs = resolve(&meta.extents[p.device], p.block);
        let pipe = &self.pipelines[p.device];
        let mut buf = pipe.buffer();
        buf.copy_from_slice(&self.block);
        pipe.submit(abs, buf);
        self.next_lblock += 1;
        self.block_fill = 0;
        Ok(())
    }

    /// Append one record.
    pub fn write_record(&mut self, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), self.raw.record_size(), "record buffer size");
        let mut off = 0;
        while off < data.len() {
            let space = self.block.len() - self.block_fill;
            let take = space.min(data.len() - off);
            self.block[self.block_fill..self.block_fill + take]
                .copy_from_slice(&data[off..off + take]);
            self.block_fill += take;
            off += take;
            if self.block_fill == self.block.len() {
                self.flush_block()?;
            }
        }
        self.records_written += 1;
        Ok(())
    }

    /// Drain the pipelines and publish the file length.
    pub fn finish(mut self) -> Result<u64> {
        self.flush_block()?;
        for p in self.pipelines.drain(..) {
            p.finish().map_err(|e| CoreError::Fs(e.into()))?;
        }
        self.raw.extend_len_records(self.records_written);
        Ok(self.records_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::pfile::ParallelFile;
    use pario_fs::{Volume, VolumeConfig};

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 1024,
            block_size: 256,
        })
        .unwrap()
    }

    fn rec(tag: u64, size: usize) -> Vec<u8> {
        (0..size).map(|i| (tag as usize * 37 + i) as u8).collect()
    }

    #[test]
    fn stream_write_then_stream_read() {
        let v = vol();
        let pf = ParallelFile::create(&v, "s", Organization::Sequential, 100, 4).unwrap();
        let mut w = StripedWriter::create(pf.raw(), 200, 2).unwrap();
        for i in 0..200u64 {
            w.write_record(&rec(i, 100)).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 200);
        assert_eq!(pf.len_records(), 200);

        let r = StripedReader::new(pf.raw(), 2).unwrap();
        let mut count = 0u64;
        let n = r
            .read_records(|idx, bytes| {
                assert_eq!(bytes, rec(idx, 100).as_slice(), "record {idx}");
                count += 1;
            })
            .unwrap();
        assert_eq!(n, 200);
        assert_eq!(count, 200);
    }

    #[test]
    fn streams_agree_with_global_view() {
        let v = vol();
        let pf = ParallelFile::create(&v, "s", Organization::Sequential, 64, 4).unwrap();
        let mut w = StripedWriter::create(pf.raw(), 64, 3).unwrap();
        for i in 0..64u64 {
            w.write_record(&rec(i, 64)).unwrap();
        }
        w.finish().unwrap();
        // A conventional sequential program sees the same bytes.
        let mut g = pf.global_reader();
        let mut buf = vec![0u8; 64];
        let mut i = 0u64;
        while g.read_record(&mut buf).unwrap() {
            assert_eq!(buf, rec(i, 64));
            i += 1;
        }
        assert_eq!(i, 64);
    }

    #[test]
    fn reader_pulls_from_all_devices() {
        let v = vol();
        let pf = ParallelFile::create(&v, "s", Organization::Sequential, 256, 1).unwrap();
        let mut w = StripedWriter::create(pf.raw(), 40, 2).unwrap();
        for i in 0..40u64 {
            w.write_record(&rec(i, 256)).unwrap();
        }
        w.finish().unwrap();
        let before: Vec<u64> = (0..4).map(|d| v.device(d).counters().reads).collect();
        let r = StripedReader::new(pf.raw(), 2).unwrap();
        r.read_records(|_, _| {}).unwrap();
        for (d, prior) in before.iter().enumerate() {
            let delta = v.device(d).counters().reads - prior;
            assert_eq!(delta, 10, "device {d} should serve a quarter of the blocks");
        }
    }

    #[test]
    fn single_buffer_reader_still_correct() {
        let v = vol();
        let pf = ParallelFile::create(&v, "s", Organization::Sequential, 64, 4).unwrap();
        let mut w = StripedWriter::create(pf.raw(), 30, 1).unwrap();
        for i in 0..30u64 {
            w.write_record(&rec(i, 64)).unwrap();
        }
        w.finish().unwrap();
        let r = StripedReader::new(pf.raw(), 1).unwrap();
        let n = r
            .read_records(|idx, bytes| assert_eq!(bytes, rec(idx, 64).as_slice()))
            .unwrap();
        assert_eq!(n, 30);
    }

    #[test]
    fn empty_file_reads_nothing() {
        let v = vol();
        let pf = ParallelFile::create(&v, "s", Organization::Sequential, 64, 4).unwrap();
        let r = StripedReader::new(pf.raw(), 2).unwrap();
        assert_eq!(r.read_records(|_, _| panic!("no records")).unwrap(), 0);
    }
}
