//! The standard parallel file organizations of Crockett (1989), §3.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The six proposed organizations.
///
/// Sequential family (global view = a standard sequential file):
/// * **S** — read or written in order by a single process.
/// * **PS** — partitioned into contiguous blocks, one per process.
/// * **IS** — processes take blocks separated by a constant stride.
/// * **SS** — each request (from any process) gets the globally next
///   record; no record skipped or duplicated.
///
/// Direct-access family (global view = a direct access file):
/// * **GDA** — any process, any record, any order.
/// * **PDA** — random access within per-process partitions.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Organization {
    /// Type S: sequential access by a single process.
    Sequential,
    /// Type PS: contiguous blocks, one partition per process.
    PartitionedSeq {
        /// Number of partitions (processes).
        partitions: u32,
    },
    /// Type IS: blocks dealt round-robin to `processes` processes.
    InterleavedSeq {
        /// Number of processes (the stride).
        processes: u32,
    },
    /// Type SS: a shared cursor hands each request the next record.
    SelfScheduledSeq,
    /// Type GDA: unrestricted direct access.
    GlobalDirect,
    /// Type PDA: direct access within per-process partitions.
    PartitionedDirect {
        /// Number of partitions (processes).
        partitions: u32,
    },
}

impl Organization {
    /// Short tag recorded in file metadata, e.g. `"PS:8"`.
    pub fn tag(&self) -> String {
        match self {
            Organization::Sequential => "S".to_string(),
            Organization::PartitionedSeq { partitions } => format!("PS:{partitions}"),
            Organization::InterleavedSeq { processes } => format!("IS:{processes}"),
            Organization::SelfScheduledSeq => "SS".to_string(),
            Organization::GlobalDirect => "GDA".to_string(),
            Organization::PartitionedDirect { partitions } => format!("PDA:{partitions}"),
        }
    }

    /// Parse a tag written by [`Organization::tag`].
    pub fn from_tag(tag: &str) -> Option<Organization> {
        match tag {
            "S" => return Some(Organization::Sequential),
            "SS" => return Some(Organization::SelfScheduledSeq),
            "GDA" => return Some(Organization::GlobalDirect),
            _ => {}
        }
        let (kind, n) = tag.split_once(':')?;
        let n: u32 = n.parse().ok()?;
        if n == 0 {
            return None;
        }
        match kind {
            "PS" => Some(Organization::PartitionedSeq { partitions: n }),
            "IS" => Some(Organization::InterleavedSeq { processes: n }),
            "PDA" => Some(Organization::PartitionedDirect { partitions: n }),
            _ => None,
        }
    }

    /// Partitioned organizations need their size fixed at creation: the
    /// partition boundaries are part of the placement.
    pub fn is_fixed_size(&self) -> bool {
        matches!(
            self,
            Organization::PartitionedSeq { .. } | Organization::PartitionedDirect { .. }
        )
    }

    /// Number of cooperating processes the internal view expects, if the
    /// organization pins one.
    pub fn processes(&self) -> Option<u32> {
        match self {
            Organization::PartitionedSeq { partitions }
            | Organization::PartitionedDirect { partitions } => Some(*partitions),
            Organization::InterleavedSeq { processes } => Some(*processes),
            _ => None,
        }
    }
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trips() {
        let all = [
            Organization::Sequential,
            Organization::PartitionedSeq { partitions: 8 },
            Organization::InterleavedSeq { processes: 3 },
            Organization::SelfScheduledSeq,
            Organization::GlobalDirect,
            Organization::PartitionedDirect { partitions: 16 },
        ];
        for org in all {
            assert_eq!(Organization::from_tag(&org.tag()), Some(org));
        }
    }

    #[test]
    fn bad_tags_rejected() {
        for bad in ["", "X", "PS", "PS:", "PS:0", "PS:x", "IS:-1", "QQ:3"] {
            assert_eq!(Organization::from_tag(bad), None, "{bad}");
        }
    }

    #[test]
    fn fixed_size_classification() {
        assert!(Organization::PartitionedSeq { partitions: 2 }.is_fixed_size());
        assert!(Organization::PartitionedDirect { partitions: 2 }.is_fixed_size());
        assert!(!Organization::Sequential.is_fixed_size());
        assert!(!Organization::SelfScheduledSeq.is_fixed_size());
        assert!(!Organization::InterleavedSeq { processes: 4 }.is_fixed_size());
        assert!(!Organization::GlobalDirect.is_fixed_size());
    }

    #[test]
    fn processes_accessor() {
        assert_eq!(
            Organization::InterleavedSeq { processes: 5 }.processes(),
            Some(5)
        );
        assert_eq!(Organization::GlobalDirect.processes(), None);
    }
}
