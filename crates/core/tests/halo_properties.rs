//! Property tests for the boundary-data machinery: for arbitrary file
//! sizes, partition counts and halo widths, halo windows cover exactly
//! the right records and the replicated file's de-duplicating global
//! view reproduces the source.

use proptest::prelude::*;

use pario_core::{create_replicated, read_partition_with_halo, Organization, ParallelFile};
use pario_fs::{Volume, VolumeConfig};

const RECORD: usize = 64;
const RPB: usize = 4;

fn vol() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 4096,
        block_size: RECORD * RPB,
    })
    .unwrap()
}

fn payload(i: u64) -> Vec<u8> {
    (0..RECORD).map(|j| (i as usize * 31 + j) as u8).collect()
}

fn ps_file(v: &Volume, total: u64, parts: u32) -> ParallelFile {
    let org = Organization::PartitionedSeq { partitions: parts };
    let pf = ParallelFile::create_sized(v, "src", org, RECORD, RPB, total).unwrap();
    let mut w = pario_fs::GlobalWriter::truncate(pf.raw().clone()).unwrap();
    for i in 0..total {
        w.write_record(&payload(i)).unwrap();
    }
    w.finish().unwrap();
    pf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Halo windows: clamped at the file edges, sized own + up to 2*halo,
    /// and every held record's content is exact.
    #[test]
    fn halo_windows_are_exact(total in 1u64..200, parts in 1u32..6, halo in 0u64..9) {
        let v = vol();
        let pf = ps_file(&v, total, parts);
        let mut covered = 0u64;
        for p in 0..parts {
            let region = read_partition_with_halo(&pf, p, halo).unwrap();
            let (lo, hi) = region.own_range();
            covered += hi - lo;
            let expect_first = lo.saturating_sub(halo);
            let expect_last = (hi + halo).min(total);
            prop_assert_eq!(region.first_record(), expect_first);
            if hi > lo {
                prop_assert_eq!(
                    region.len_records(),
                    expect_last - expect_first,
                    "partition {} of {}", p, parts
                );
            }
            for idx in expect_first..expect_last {
                let want = payload(idx);
                prop_assert_eq!(region.record(idx), want.as_slice());
            }
        }
        prop_assert_eq!(covered, total);
    }

    /// Replicated-boundary files: every partition's local window holds
    /// the right records, and the de-duplicating global view replays the
    /// source exactly once in order.
    #[test]
    fn replication_round_trips(total in 1u64..160, parts in 1u32..5, halo in 0u64..7) {
        let v = vol();
        let pf = ps_file(&v, total, parts);
        let rep = create_replicated(&v, "rep", &pf, parts, halo).unwrap();
        for p in 0..parts {
            let region = rep.read_partition(p).unwrap();
            let (lo, hi) = region.own_range();
            let first = region.first_record();
            let last = first + region.len_records();
            prop_assert!(first <= lo && hi <= last);
            for idx in first..last {
                let want = payload(idx);
                prop_assert_eq!(region.record(idx), want.as_slice());
            }
        }
        let mut next = 0u64;
        let n = rep
            .for_each_global(|idx, bytes| {
                assert_eq!(idx, next);
                assert_eq!(bytes, payload(idx).as_slice());
                next += 1;
            })
            .unwrap();
        prop_assert_eq!(n, total);
        // Overhead is bounded by replication + block padding.
        let bound = 2 * halo * u64::from(parts) + u64::from(parts) * RPB as u64;
        prop_assert!(rep.overhead_records() <= bound);
        v.remove("rep").unwrap();
        v.remove("src").unwrap();
    }
}
