//! Edge cases across every organization: empty files, single records,
//! partition counts exceeding records, record sizes at block boundaries,
//! and reopened-handle behaviour.

use pario_core::{views, Organization, ParallelFile, StripedReader, StripedWriter};
use pario_fs::{Volume, VolumeConfig};

const BS: usize = 256;

fn vol() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: BS,
    })
    .unwrap()
}

#[test]
fn empty_files_read_as_empty_everywhere() {
    let v = vol();
    let orgs = [
        Organization::Sequential,
        Organization::SelfScheduledSeq,
        Organization::GlobalDirect,
        Organization::InterleavedSeq { processes: 2 },
    ];
    for (i, org) in orgs.into_iter().enumerate() {
        let pf = ParallelFile::create(&v, &format!("e{i}"), org, 64, 4).unwrap();
        assert_eq!(pf.len_records(), 0);
        let mut g = pf.global_reader();
        let mut buf = vec![0u8; 64];
        assert!(!g.read_record(&mut buf).unwrap());
    }
    // Empty SS file: readers immediately see exhaustion.
    let pf = ParallelFile::open(&v, "e1").unwrap();
    let r = pf.self_sched_reader().unwrap();
    let mut buf = vec![0u8; 64];
    assert_eq!(r.read_next(&mut buf).unwrap(), None);
    // Empty S file through the striped streamer.
    let pf = ParallelFile::open(&v, "e0").unwrap();
    let sr = StripedReader::new(pf.raw(), 2).unwrap();
    assert_eq!(sr.read_records(|_, _| panic!("no records")).unwrap(), 0);
}

#[test]
fn single_record_file() {
    let v = vol();
    let pf = ParallelFile::create(&v, "one", Organization::GlobalDirect, 64, 4).unwrap();
    let h = pf.direct_handle().unwrap();
    h.write_record(0, &[42u8; 64]).unwrap();
    assert_eq!(pf.len_records(), 1);
    let mut buf = vec![0u8; 64];
    h.read_record(0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 42));
    assert!(h.read_record(1, &mut buf).is_err());
}

#[test]
fn more_partitions_than_file_blocks() {
    // 8 records of a 4-records-per-block file = 2 file blocks, but 4
    // partitions: the trailing partitions are empty and harmless.
    let v = vol();
    let org = Organization::PartitionedSeq { partitions: 4 };
    let pf = ParallelFile::create_sized(&v, "tiny", org, 64, 4, 8).unwrap();
    let sizes: Vec<u64> = (0..4)
        .map(|p| pf.partition_handle(p).unwrap().len())
        .collect();
    assert_eq!(sizes.iter().sum::<u64>(), 8);
    assert!(sizes[2] == 0 && sizes[3] == 0);
    let mut h3 = pf.partition_handle(3).unwrap();
    assert!(h3.is_empty());
    let mut buf = vec![0u8; 64];
    assert!(!h3.read_next(&mut buf).unwrap());
    assert!(h3.write_next(&[0u8; 64]).is_err());
    // The non-empty partitions still function.
    let mut h0 = pf.partition_handle(0).unwrap();
    for _ in 0..sizes[0] {
        h0.write_next(&[9u8; 64]).unwrap();
    }
}

#[test]
fn record_size_equal_to_block_size() {
    let v = vol();
    let pf = ParallelFile::create(&v, "rb", Organization::Sequential, BS, 1).unwrap();
    let mut w = StripedWriter::create(pf.raw(), 16, 2).unwrap();
    for i in 0..16u64 {
        w.write_record(&vec![i as u8 + 1; BS]).unwrap();
    }
    w.finish().unwrap();
    let r = StripedReader::new(pf.raw(), 2).unwrap();
    let n = r
        .read_records(|i, b| assert!(b.iter().all(|&x| x == i as u8 + 1)))
        .unwrap();
    assert_eq!(n, 16);
}

#[test]
fn interleaved_single_process_degenerates_to_sequential() {
    let v = vol();
    let org = Organization::InterleavedSeq { processes: 1 };
    let pf = ParallelFile::create(&v, "is1", org, 64, 4).unwrap();
    let mut h = pf.interleaved_handle(0).unwrap();
    for i in 0..12u64 {
        h.write_next(&[i as u8; 64]).unwrap();
    }
    let mut g = pf.global_reader();
    let mut buf = vec![0u8; 64];
    let mut i = 0u64;
    while g.read_record(&mut buf).unwrap() {
        assert!(buf.iter().all(|&b| b == i as u8));
        i += 1;
    }
    assert_eq!(i, 12);
}

#[test]
fn forced_partition_view_on_short_file() {
    // Fewer records than partitions: forced views must not panic and
    // must still cover everything exactly once.
    let v = vol();
    let pf = ParallelFile::create(&v, "short", Organization::Sequential, 64, 4).unwrap();
    let mut w = pf.global_writer();
    for i in 0..3u64 {
        w.write_record(&[i as u8; 64]).unwrap();
    }
    w.finish().unwrap();
    let mut seen = 0;
    for p in 0..5 {
        let mut h = views::force_partition(&pf, p, 5).unwrap();
        let mut buf = vec![0u8; 64];
        while h.read_next(&mut buf).unwrap() {
            seen += 1;
        }
    }
    assert_eq!(seen, 3);
}

#[test]
fn self_sched_writer_after_reopen_appends() {
    let v = vol();
    {
        let pf = ParallelFile::create(&v, "log", Organization::SelfScheduledSeq, 64, 4).unwrap();
        let w = pf.self_sched_writer().unwrap();
        for _ in 0..5 {
            w.write_next(&[1u8; 64]).unwrap();
        }
        w.finish().unwrap();
    }
    // A new program run appends after the existing records.
    let pf = ParallelFile::open(&v, "log").unwrap();
    let w = pf.self_sched_writer().unwrap();
    let idx = w.write_next(&[2u8; 64]).unwrap();
    assert_eq!(idx, 5);
    w.finish().unwrap();
    assert_eq!(pf.len_records(), 6);
}

#[test]
fn zero_sized_create_sized_for_partitioned() {
    let v = vol();
    let org = Organization::PartitionedSeq { partitions: 2 };
    let pf = ParallelFile::create_sized(&v, "z", org, 64, 4, 0).unwrap();
    assert_eq!(pf.len_records(), 0);
    for p in 0..2 {
        assert!(pf.partition_handle(p).unwrap().is_empty());
    }
}
