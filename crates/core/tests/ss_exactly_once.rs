//! Concurrency property test for the self-scheduled (SS) sharing
//! invariant — the paper's §3.1 guarantee, hammered from many threads:
//! "each request accesses a different record and no record gets skipped".
//!
//! Both cursor strategies are exercised: the two-phase reservation
//! (atomic claim, transfer outside any lock) and the naive big-lock
//! baseline. Readers mix single-record and block claims; writers fill a
//! fresh file concurrently and the result must be hole-free.

use std::collections::HashSet;
use std::sync::Mutex;

use proptest::prelude::*;

use pario_core::{Organization, ParallelFile};
use pario_fs::{Volume, VolumeConfig};

const REC: usize = 64;

fn vol() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: 256,
    })
    .unwrap()
}

/// Build an SS file of `n` records whose payload encodes the record index.
fn ss_file(v: &Volume, n: u64) -> ParallelFile {
    let pf = ParallelFile::create(v, "ss", Organization::SelfScheduledSeq, REC, 4).unwrap();
    let w = pf.self_sched_writer().unwrap();
    for i in 0..n {
        w.write_next(&[i as u8; REC]).unwrap();
    }
    w.finish().unwrap();
    pf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// N threads racing on one shared cursor deliver every record exactly
    /// once, under both strategies, whether they claim records or blocks.
    #[test]
    fn readers_deliver_exactly_once(
        threads in 2usize..9,
        records in 1u64..400,
        naive in any::<bool>(),
        by_block in any::<bool>(),
    ) {
        let v = vol();
        let pf = ss_file(&v, records);
        let seen = Mutex::new(HashSet::new());
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                let r = if naive {
                    pf.self_sched_reader_naive().unwrap()
                } else {
                    pf.self_sched_reader().unwrap()
                };
                let seen = &seen;
                s.spawn(move |_| {
                    if by_block && !naive {
                        // Block claims (two-phase only).
                        let mut block = vec![0u8; REC * 4];
                        while let Some((first, n)) = r.read_next_block(&mut block).unwrap() {
                            for k in 0..n {
                                let idx = first + k as u64;
                                let rec = &block[k * REC..(k + 1) * REC];
                                assert!(rec.iter().all(|&b| b == idx as u8), "torn {idx}");
                                assert!(seen.lock().unwrap().insert(idx), "dup {idx}");
                            }
                        }
                    } else {
                        let mut buf = vec![0u8; REC];
                        while let Some(idx) = r.read_next(&mut buf).unwrap() {
                            assert!(buf.iter().all(|&b| b == idx as u8), "torn {idx}");
                            assert!(seen.lock().unwrap().insert(idx), "dup {idx}");
                        }
                    }
                });
            }
        })
        .unwrap();
        let seen = seen.into_inner().unwrap();
        prop_assert_eq!(seen.len() as u64, records, "skipped records");
        prop_assert_eq!(pf.self_sched_reader().unwrap().claimed(), records);
    }

    /// N threads racing on the write cursor fill distinct slots: the
    /// finished file has no holes, no torn records, and exactly
    /// `threads * per_thread` records.
    #[test]
    fn writers_fill_distinct_slots(
        threads in 2usize..7,
        per_thread in 1usize..60,
        naive in any::<bool>(),
    ) {
        let v = vol();
        let pf = ParallelFile::create(&v, "out", Organization::SelfScheduledSeq, REC, 4).unwrap();
        crossbeam::thread::scope(|s| {
            for t in 0..threads {
                let w = if naive {
                    pf.self_sched_writer_naive().unwrap()
                } else {
                    pf.self_sched_writer().unwrap()
                };
                s.spawn(move |_| {
                    for _ in 0..per_thread {
                        w.write_next(&[t as u8 + 1; REC]).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let total = (threads * per_thread) as u64;
        prop_assert_eq!(pf.self_sched_writer().unwrap().finish().unwrap(), total);
        let mut per_writer = vec![0usize; threads + 1];
        let mut r = pf.global_reader();
        let mut rec = vec![0u8; REC];
        while r.read_record(&mut rec).unwrap() {
            let tag = rec[0] as usize;
            prop_assert!(tag >= 1 && tag <= threads, "hole or torn record");
            prop_assert!(rec.iter().all(|&b| b == tag as u8), "torn record");
            per_writer[tag] += 1;
        }
        prop_assert!(per_writer[1..].iter().all(|&c| c == per_thread));
    }
}
