//! Property test: an [`IoNode`] worker dispatches a queued backlog in
//! exactly the order the reference [`Scheduler`] prescribes for its
//! policy, with block addresses mapped through [`block_cylinder`].
//!
//! The worker is pinned inside a gate request while the backlog queues
//! up, so the whole set is pending when dispatch decisions are made —
//! the deepest-queue (and therefore most order-sensitive) case.

use std::sync::{Arc, Condvar, Mutex};

use proptest::prelude::*;

use pario_disk::{
    block_cylinder, BlockDevice, DiskError, IoCounters, IoNode, MemDisk, SchedPolicy, Scheduler,
    Ticket,
};

/// Wraps a device, records the order writes are serviced in, and blocks
/// the first operation on `gate_block` until released.
struct GateRecorder {
    inner: MemDisk,
    gate_block: u64,
    /// (entered, released)
    gate: Mutex<(bool, bool)>,
    cv: Condvar,
    order: Mutex<Vec<u64>>,
}

impl GateRecorder {
    fn new(inner: MemDisk, gate_block: u64) -> GateRecorder {
        GateRecorder {
            inner,
            gate_block,
            gate: Mutex::new((false, false)),
            cv: Condvar::new(),
            order: Mutex::new(Vec::new()),
        }
    }

    fn wait_entered(&self) {
        let mut g = self.gate.lock().unwrap();
        while !g.0 {
            g = self.cv.wait(g).unwrap();
        }
    }

    fn release(&self) {
        self.gate.lock().unwrap().1 = true;
        self.cv.notify_all();
    }

    fn hold_if_gate(&self, block: u64) {
        if block != self.gate_block {
            return;
        }
        let mut g = self.gate.lock().unwrap();
        if g.0 {
            return; // only the first gate op blocks
        }
        g.0 = true;
        self.cv.notify_all();
        while !g.1 {
            g = self.cv.wait(g).unwrap();
        }
    }
}

impl BlockDevice for GateRecorder {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        self.inner.read_block(block, buf)
    }
    fn write_block(&self, block: u64, data: &[u8]) -> Result<(), DiskError> {
        self.inner.write_block(block, data)
    }
    fn write_blocks_at(&self, block: u64, data: &[u8]) -> Result<(), DiskError> {
        self.hold_if_gate(block);
        self.order.lock().unwrap().push(block);
        self.inner.write_blocks_at(block, data)
    }
    fn counters(&self) -> IoCounters {
        self.inner.counters()
    }
    fn fail(&self) {
        self.inner.fail()
    }
    fn heal(&self) {
        self.inner.heal()
    }
    fn is_failed(&self) -> bool {
        self.inner.is_failed()
    }
}

/// Replay the worker's dispatch decisions: same scheduler, same
/// cylinder mapping, starting from the same (gate) request.
fn reference_order(
    policy: SchedPolicy,
    num_blocks: u64,
    gate_block: u64,
    blocks: &[u64],
) -> Vec<u64> {
    let mut sched = Scheduler::new(policy);
    let mut head = 0u32;
    // The gate request is dispatched alone first (tag 0); it moves the
    // head and, for SCAN, may settle the sweep direction.
    let i = sched
        .pick(&[(block_cylinder(gate_block, num_blocks), 0)], head)
        .unwrap();
    assert_eq!(i, 0);
    head = block_cylinder(gate_block, num_blocks);
    let mut queue: Vec<(u64, (u32, u64))> = blocks
        .iter()
        .enumerate()
        .map(|(i, &b)| (b, (block_cylinder(b, num_blocks), i as u64 + 1)))
        .collect();
    let mut out = Vec::with_capacity(queue.len());
    while !queue.is_empty() {
        let keyed: Vec<(u32, u64)> = queue.iter().map(|&(_, k)| k).collect();
        let i = sched.pick(&keyed, head).unwrap();
        let (b, (cyl, _)) = queue.swap_remove(i);
        head = cyl;
        out.push(b);
    }
    out
}

fn observed_order(policy: SchedPolicy, gate_block: u64, blocks: &[u64]) -> Vec<u64> {
    const NB: u64 = 256;
    const BS: usize = 64;
    let dev = Arc::new(GateRecorder::new(MemDisk::new(NB, BS), gate_block));
    let node = IoNode::spawn_with_policy(Arc::clone(&dev) as _, policy);
    let handle = node.device();
    // Pin the worker inside the gate request, then pile up the backlog.
    let gate_ticket = handle.submit_write_blocks(gate_block, vec![0u8; BS].into_boxed_slice());
    dev.wait_entered();
    let tickets: Vec<Ticket<Box<[u8]>>> = blocks
        .iter()
        .map(|&b| handle.submit_write_blocks(b, vec![b as u8; BS].into_boxed_slice()))
        .collect();
    dev.release();
    gate_ticket.wait().unwrap();
    for t in tickets {
        t.wait().unwrap();
    }
    let order = dev.order.lock().unwrap();
    assert_eq!(order[0], gate_block);
    order[1..].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn worker_dispatch_matches_reference_scheduler(
        policy_idx in 0usize..4,
        gate_block in 0u64..256,
        blocks in proptest::collection::vec(0u64..256, 1..24),
    ) {
        let policy = [
            SchedPolicy::Fifo,
            SchedPolicy::Sstf,
            SchedPolicy::Scan,
            SchedPolicy::CScan,
        ][policy_idx];
        let observed = observed_order(policy, gate_block, &blocks);
        let expected = reference_order(policy, 256, gate_block, &blocks);
        prop_assert_eq!(observed, expected, "policy {:?}", policy);
    }
}

#[test]
fn sstf_services_nearest_first_from_a_deep_queue() {
    // Deterministic spot-check: head parked at block 128 by the gate;
    // SSTF must walk outward by distance, not arrival order.
    let order = observed_order(SchedPolicy::Sstf, 128, &[250, 10, 140, 120, 129]);
    assert_eq!(order, vec![129, 120, 140, 250, 10]);
}

#[test]
fn fifo_services_in_arrival_order() {
    let order = observed_order(SchedPolicy::Fifo, 128, &[250, 10, 140, 120, 129]);
    assert_eq!(order, vec![250, 10, 140, 120, 129]);
}
