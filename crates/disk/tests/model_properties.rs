//! Property tests for the disk model: scheduler completeness, timing
//! sanity, and device-content invariants.

use proptest::prelude::*;

use pario_disk::{BlockDevice, DiskGeometry, MemDisk, ModeledDisk, SchedPolicy, Scheduler};
use pario_sim::{DeviceModel, DiskReq, PendingReq, SimTime};

const POLICIES: [SchedPolicy; 4] = [
    SchedPolicy::Fifo,
    SchedPolicy::Sstf,
    SchedPolicy::Scan,
    SchedPolicy::CScan,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy drains any queue completely, picking valid indices.
    #[test]
    fn schedulers_drain_any_queue(
        cyls in proptest::collection::vec(0u32..2000, 1..40),
        head in 0u32..2000,
        policy_idx in 0usize..4,
    ) {
        let mut s = Scheduler::new(POLICIES[policy_idx]);
        let mut queue: Vec<(u32, u64)> = cyls.iter().copied().zip(0u64..).collect();
        let mut head = head;
        let mut served = Vec::new();
        while let Some(i) = s.pick(&queue, head) {
            prop_assert!(i < queue.len());
            let (cyl, tag) = queue.remove(i);
            head = cyl;
            served.push(tag);
        }
        served.sort();
        prop_assert_eq!(served, (0..cyls.len() as u64).collect::<Vec<_>>());
    }

    /// SSTF never picks a strictly farther request than the closest one.
    #[test]
    fn sstf_greedy_invariant(
        cyls in proptest::collection::vec(0u32..2000, 1..30),
        head in 0u32..2000,
    ) {
        let mut s = Scheduler::new(SchedPolicy::Sstf);
        let queue: Vec<(u32, u64)> = cyls.iter().copied().zip(0u64..).collect();
        let i = s.pick(&queue, head).unwrap();
        let chosen = queue[i].0.abs_diff(head);
        let min = queue.iter().map(|&(c, _)| c.abs_diff(head)).min().unwrap();
        prop_assert_eq!(chosen, min);
    }

    /// Modeled service times are positive, finite, and decompose into
    /// the reported breakdown.
    #[test]
    fn modeled_service_decomposes(
        blocks in proptest::collection::vec(0u64..100_000, 1..20),
        policy_idx in 0usize..4,
    ) {
        let mut d = ModeledDisk::new(DiskGeometry::wren_1989(), POLICIES[policy_idx], 4096);
        let cap = d.capacity_blocks();
        for (tag, &b) in blocks.iter().enumerate() {
            d.enqueue(PendingReq {
                req: DiskReq::read(0, b % (cap - 4), 1 + (b % 4) as u32),
                proc: 0,
                issued: SimTime::ZERO,
                tag: tag as u64,
            });
        }
        let mut now = SimTime::ZERO;
        let mut count = 0;
        while let Some(s) = d.start_next(now) {
            prop_assert!(s.complete_at >= now);
            prop_assert_eq!(s.complete_at - now, s.breakdown.total());
            prop_assert!(s.breakdown.transfer > SimTime::ZERO);
            // Rotation is bounded by one revolution.
            prop_assert!(s.breakdown.rotation < DiskGeometry::wren_1989().revolution());
            now = s.complete_at;
            count += 1;
        }
        prop_assert_eq!(count, blocks.len());
    }

    /// Geometry timing: seek is monotone in distance; rotational latency
    /// is always under one revolution.
    #[test]
    fn geometry_bounds(d1 in 0u32..1549, d2 in 0u32..1549, now_ns in 0u64..10_000_000_000, sector in 0u32..46) {
        let g = DiskGeometry::wren_1989();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(g.seek_time(lo) <= g.seek_time(hi));
        let lat = g.rotational_latency(SimTime::from_ns(now_ns), sector);
        prop_assert!(lat < g.revolution());
    }

    /// MemDisk behaves like a byte array: a write/read model check with
    /// arbitrary interleavings, plus fail/heal epochs.
    #[test]
    fn memdisk_matches_model(
        ops in proptest::collection::vec((0u64..16, 0u8..255, proptest::bool::ANY), 1..60),
    ) {
        let d = MemDisk::new(16, 32);
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        let mut failed = false;
        let mut buf = vec![0u8; 32];
        for (block, val, toggle) in ops {
            if toggle {
                if failed { d.heal() } else { d.fail() }
                failed = !failed;
                continue;
            }
            let w = d.write_block(block, &[val; 32]);
            if failed {
                prop_assert!(w.is_err());
            } else {
                prop_assert!(w.is_ok());
                model.insert(block, val);
            }
            if !failed {
                d.read_block(block, &mut buf).unwrap();
                let expect = *model.get(&block).unwrap_or(&0);
                prop_assert!(buf.iter().all(|&b| b == expect));
            }
        }
    }
}
