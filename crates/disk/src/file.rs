//! File-backed block device.
//!
//! `FileDisk` stores blocks in a regular file using positioned reads and
//! writes, giving persistence across process restarts (exercised by the
//! volume-persistence integration tests) and a second, OS-backed
//! implementation of [`BlockDevice`] to keep the trait honest.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::Ordering;

use pario_check::{AtomicBool, AtomicU64};

use crate::device::{BlockDevice, IoCounters};
use crate::error::{DiskError, Result};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// A block device stored in a file on the host file system.
pub struct FileDisk {
    file: File,
    block_size: usize,
    num_blocks: u64,
    failed: AtomicBool,
    reads: AtomicU64,
    writes: AtomicU64,
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    name: String,
}

impl FileDisk {
    /// Create (or truncate) a device file of `num_blocks * block_size`
    /// bytes at `path`.
    pub fn create(path: &Path, num_blocks: u64, block_size: usize) -> Result<FileDisk> {
        assert!(block_size > 0);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(num_blocks * block_size as u64)?;
        Ok(FileDisk {
            file,
            block_size,
            num_blocks,
            failed: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
            name: path.display().to_string(),
        })
    }

    /// Open an existing device file created by [`FileDisk::create`].
    ///
    /// The file length must be a whole number of blocks.
    pub fn open(path: &Path, block_size: usize) -> Result<FileDisk> {
        assert!(block_size > 0);
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % block_size as u64 != 0 {
            return Err(DiskError::Io(format!(
                "file length {len} is not a multiple of block size {block_size}"
            )));
        }
        Ok(FileDisk {
            file,
            block_size,
            num_blocks: len / block_size as u64,
            failed: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
            name: path.display().to_string(),
        })
    }

    fn check(&self, block: u64, len: usize) -> Result<()> {
        if self.failed.load(Ordering::Acquire) {
            return Err(DiskError::DeviceFailed {
                device: self.name.clone(),
            });
        }
        if block >= self.num_blocks {
            return Err(DiskError::OutOfRange {
                block,
                capacity: self.num_blocks,
            });
        }
        if len != self.block_size {
            return Err(DiskError::BadBufferSize {
                got: len,
                expected: self.block_size,
            });
        }
        Ok(())
    }

    /// Bounds check for a vectored transfer of `len` bytes at `block`;
    /// returns the block count.
    fn check_span(&self, block: u64, len: usize) -> Result<u64> {
        if self.failed.load(Ordering::Acquire) {
            return Err(DiskError::DeviceFailed {
                device: self.name.clone(),
            });
        }
        if !len.is_multiple_of(self.block_size) {
            return Err(DiskError::BadBufferSize {
                got: len,
                expected: self.block_size,
            });
        }
        let nblocks = (len / self.block_size) as u64;
        match block.checked_add(nblocks) {
            Some(end) if end <= self.num_blocks => Ok(nblocks),
            _ => Err(DiskError::OutOfRange {
                block: block.max(self.num_blocks),
                capacity: self.num_blocks,
            }),
        }
    }
}

impl BlockDevice for FileDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        self.check(block, buf.len())?;
        self.file
            .read_exact_at(buf, block * self.block_size as u64)?;
        self.reads.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        self.blocks_read.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Ok(())
    }

    fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
        self.check(block, data.len())?;
        self.file
            .write_all_at(data, block * self.block_size as u64)?;
        self.writes.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        self.blocks_written.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Ok(())
    }

    /// Vectored read: one positioned syscall for the whole span.
    fn read_blocks_at(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        let nblocks = self.check_span(block, buf.len())?;
        if nblocks == 0 {
            return Ok(());
        }
        self.file
            .read_exact_at(buf, block * self.block_size as u64)?;
        self.reads.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        self.blocks_read.fetch_add(nblocks, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Ok(())
    }

    /// Vectored write: one positioned syscall for the whole span.
    fn write_blocks_at(&self, block: u64, data: &[u8]) -> Result<()> {
        let nblocks = self.check_span(block, data.len())?;
        if nblocks == 0 {
            return Ok(());
        }
        self.file
            .write_all_at(data, block * self.block_size as u64)?;
        self.writes.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        self.blocks_written.fetch_add(nblocks, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn counters(&self) -> IoCounters {
        IoCounters {
            reads: self.reads.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            writes: self.writes.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            blocks_read: self.blocks_read.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            blocks_written: self.blocks_written.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
        }
    }

    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    fn heal(&self) {
        self.failed.store(false, Ordering::Release);
    }

    fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pario-filedisk-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_write_reopen_read() {
        let path = tmp("roundtrip");
        {
            let d = FileDisk::create(&path, 8, 64).unwrap();
            d.write_block(3, &[7u8; 64]).unwrap();
            d.flush().unwrap();
        }
        {
            let d = FileDisk::open(&path, 64).unwrap();
            assert_eq!(d.num_blocks(), 8);
            let mut buf = vec![0u8; 64];
            d.read_block(3, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 7));
            // Untouched block is zero (sparse file semantics).
            d.read_block(0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn vectored_span_round_trips_as_one_syscall() {
        let path = tmp("vectored");
        let d = FileDisk::create(&path, 16, 64).unwrap();
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        d.write_blocks_at(4, &data).unwrap();
        let mut back = vec![0u8; 256];
        d.read_blocks_at(4, &mut back).unwrap();
        assert_eq!(back, data);
        let c = d.counters();
        assert_eq!((c.reads, c.writes), (1, 1));
        assert_eq!((c.blocks_read, c.blocks_written), (4, 4));
        // Span running past the end is rejected up front.
        let mut big = vec![0u8; 64 * 4];
        assert!(matches!(
            d.read_blocks_at(14, &mut big),
            Err(DiskError::OutOfRange { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_ragged_length() {
        let path = tmp("ragged");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(FileDisk::open(&path, 64), Err(DiskError::Io(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fail_stop_applies() {
        let path = tmp("failstop");
        let d = FileDisk::create(&path, 2, 32).unwrap();
        d.fail();
        let mut buf = vec![0u8; 32];
        assert!(matches!(
            d.read_block(0, &mut buf),
            Err(DiskError::DeviceFailed { .. })
        ));
        d.heal();
        assert!(d.read_block(0, &mut buf).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let path = tmp("oob");
        let d = FileDisk::create(&path, 2, 32).unwrap();
        let mut buf = vec![0u8; 32];
        assert!(matches!(
            d.read_block(2, &mut buf),
            Err(DiskError::OutOfRange { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
