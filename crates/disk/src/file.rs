//! File-backed block device.
//!
//! `FileDisk` stores blocks in a regular file using positioned reads and
//! writes, giving persistence across process restarts (exercised by the
//! volume-persistence integration tests) and a second, OS-backed
//! implementation of [`BlockDevice`] to keep the trait honest.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::device::{BlockDevice, IoCounters};
use crate::error::{DiskError, Result};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// A block device stored in a file on the host file system.
pub struct FileDisk {
    file: File,
    block_size: usize,
    num_blocks: u64,
    failed: AtomicBool,
    reads: AtomicU64,
    writes: AtomicU64,
    name: String,
}

impl FileDisk {
    /// Create (or truncate) a device file of `num_blocks * block_size`
    /// bytes at `path`.
    pub fn create(path: &Path, num_blocks: u64, block_size: usize) -> Result<FileDisk> {
        assert!(block_size > 0);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(num_blocks * block_size as u64)?;
        Ok(FileDisk {
            file,
            block_size,
            num_blocks,
            failed: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            name: path.display().to_string(),
        })
    }

    /// Open an existing device file created by [`FileDisk::create`].
    ///
    /// The file length must be a whole number of blocks.
    pub fn open(path: &Path, block_size: usize) -> Result<FileDisk> {
        assert!(block_size > 0);
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % block_size as u64 != 0 {
            return Err(DiskError::Io(format!(
                "file length {len} is not a multiple of block size {block_size}"
            )));
        }
        Ok(FileDisk {
            file,
            block_size,
            num_blocks: len / block_size as u64,
            failed: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            name: path.display().to_string(),
        })
    }

    fn check(&self, block: u64, len: usize) -> Result<()> {
        if self.failed.load(Ordering::Acquire) {
            return Err(DiskError::DeviceFailed {
                device: self.name.clone(),
            });
        }
        if block >= self.num_blocks {
            return Err(DiskError::OutOfRange {
                block,
                capacity: self.num_blocks,
            });
        }
        if len != self.block_size {
            return Err(DiskError::BadBufferSize {
                got: len,
                expected: self.block_size,
            });
        }
        Ok(())
    }
}

impl BlockDevice for FileDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        self.check(block, buf.len())?;
        self.file
            .read_exact_at(buf, block * self.block_size as u64)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
        self.check(block, data.len())?;
        self.file
            .write_all_at(data, block * self.block_size as u64)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn counters(&self) -> IoCounters {
        IoCounters {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    fn heal(&self) {
        self.failed.store(false, Ordering::Release);
    }

    fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pario-filedisk-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_write_reopen_read() {
        let path = tmp("roundtrip");
        {
            let d = FileDisk::create(&path, 8, 64).unwrap();
            d.write_block(3, &[7u8; 64]).unwrap();
            d.flush().unwrap();
        }
        {
            let d = FileDisk::open(&path, 64).unwrap();
            assert_eq!(d.num_blocks(), 8);
            let mut buf = vec![0u8; 64];
            d.read_block(3, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 7));
            // Untouched block is zero (sparse file semantics).
            d.read_block(0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_ragged_length() {
        let path = tmp("ragged");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(FileDisk::open(&path, 64), Err(DiskError::Io(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fail_stop_applies() {
        let path = tmp("failstop");
        let d = FileDisk::create(&path, 2, 32).unwrap();
        d.fail();
        let mut buf = vec![0u8; 32];
        assert!(matches!(
            d.read_block(0, &mut buf),
            Err(DiskError::DeviceFailed { .. })
        ));
        d.heal();
        assert!(d.read_block(0, &mut buf).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let path = tmp("oob");
        let d = FileDisk::create(&path, 2, 32).unwrap();
        let mut buf = vec![0u8; 32];
        assert!(matches!(
            d.read_block(2, &mut buf),
            Err(DiskError::OutOfRange { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
