//! The modelled rotating disk: a [`DeviceModel`] for `pario-sim`.
//!
//! Combines [`DiskGeometry`] timing with a [`Scheduler`] policy and tracks
//! the arm's cylinder and the platter's (time-derived) angular position, so
//! that sequential streams run at media rate while interleaved streams from
//! competing processes pay real seeks — the effect at the heart of the
//! paper's §4 discussion of sharing devices among processes.

use pario_sim::{DeviceModel, PendingReq, ServiceBreakdown, SimTime, Started};

use crate::geometry::DiskGeometry;
use crate::sched::{SchedPolicy, Scheduler};

/// A simulated rotating disk with a request queue.
#[derive(Debug)]
pub struct ModeledDisk {
    geom: DiskGeometry,
    sched: Scheduler,
    sectors_per_block: u64,
    head_cyl: u32,
    queue: Vec<PendingReq>,
}

impl ModeledDisk {
    /// A disk with the given geometry and scheduling policy, addressed in
    /// file-system blocks of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a positive multiple of the sector
    /// size.
    pub fn new(geom: DiskGeometry, policy: SchedPolicy, block_size: usize) -> ModeledDisk {
        assert!(
            block_size > 0 && block_size.is_multiple_of(geom.sector_bytes as usize),
            "block size {} must be a multiple of the {}-byte sector",
            block_size,
            geom.sector_bytes
        );
        ModeledDisk {
            geom,
            sched: Scheduler::new(policy),
            sectors_per_block: (block_size / geom.sector_bytes as usize) as u64,
            head_cyl: 0,
            queue: Vec::new(),
        }
    }

    /// Device capacity in file-system blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.geom.capacity_sectors() / self.sectors_per_block
    }

    /// The drive's geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geom
    }

    fn first_lba(&self, block: u64) -> u64 {
        block * self.sectors_per_block
    }
}

impl DeviceModel for ModeledDisk {
    fn enqueue(&mut self, req: PendingReq) {
        debug_assert!(
            req.req.end_block() <= self.capacity_blocks(),
            "request for block {} beyond device capacity {}",
            req.req.block,
            self.capacity_blocks()
        );
        self.queue.push(req);
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn start_next(&mut self, now: SimTime) -> Option<Started> {
        let cyls: Vec<(u32, u64)> = self
            .queue
            .iter()
            .map(|p| (self.geom.cylinder_of(self.first_lba(p.req.block)), p.tag))
            .collect();
        let idx = self.sched.pick(&cyls, self.head_cyl)?;
        let pending = self.queue.remove(idx);

        let lba = self.first_lba(pending.req.block);
        let cyl = self.geom.cylinder_of(lba);
        let seek = self.geom.seek_time(cyl.abs_diff(self.head_cyl));
        let after_seek = now + seek;
        let rotation = self
            .geom
            .rotational_latency(after_seek, self.geom.sector_on_track(lba));
        let sectors = u64::from(pending.req.nblocks) * self.sectors_per_block;
        let transfer = self.geom.transfer_time(sectors);

        // The arm ends over the last sector transferred.
        let last_lba = lba + sectors - 1;
        self.head_cyl = self.geom.cylinder_of(last_lba);

        let breakdown = ServiceBreakdown {
            seek,
            rotation,
            transfer,
        };
        Some(Started {
            pending,
            complete_at: now + breakdown.total(),
            breakdown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_sim::{DiskReq, Script, Simulation};

    const BS: usize = 4096;

    fn disk(policy: SchedPolicy) -> ModeledDisk {
        ModeledDisk::new(DiskGeometry::wren_1989(), policy, BS)
    }

    fn pend(block: u64, nblocks: u32, tag: u64) -> PendingReq {
        PendingReq {
            req: DiskReq::read(0, block, nblocks),
            proc: 0,
            issued: SimTime::ZERO,
            tag,
        }
    }

    #[test]
    fn first_request_from_home_has_no_seek() {
        let mut d = disk(SchedPolicy::Fifo);
        d.enqueue(pend(0, 1, 0));
        let s = d.start_next(SimTime::ZERO).unwrap();
        assert_eq!(s.breakdown.seek, SimTime::ZERO);
        assert_eq!(s.breakdown.rotation, SimTime::ZERO);
        assert!(s.breakdown.transfer > SimTime::ZERO);
    }

    #[test]
    fn distant_block_pays_seek() {
        let mut d = disk(SchedPolicy::Fifo);
        let far = d.capacity_blocks() - 1;
        d.enqueue(pend(far, 1, 0));
        let s = d.start_next(SimTime::ZERO).unwrap();
        // Full-stroke seek on this geometry is > 10 ms.
        assert!(s.breakdown.seek > SimTime::from_ms(10));
    }

    #[test]
    fn sequential_stream_approaches_media_rate() {
        // One process reads 2 MiB sequentially in 4 KiB blocks.
        let mut sim = Simulation::new();
        let dev = sim.add_device(Box::new(disk(SchedPolicy::Fifo)));
        let nblocks = 512u64;
        let mut script = Script::new();
        for b in 0..nblocks {
            script = script.read(dev, b, 1);
        }
        sim.add_proc(script.build());
        let r = sim.run();
        let bytes = nblocks * BS as u64;
        let rate = bytes as f64 / r.makespan.as_secs_f64();
        let media = DiskGeometry::wren_1989().media_rate();
        // Sequential access should achieve a solid fraction of media rate
        // (track boundary rotations cost something, seeks are tiny).
        assert!(
            rate > media * 0.5,
            "sequential rate {:.0} < half media rate {:.0}",
            rate,
            media
        );
    }

    #[test]
    fn interleaved_streams_are_much_slower_than_sequential() {
        // Two processes on one disk, each streaming its own distant
        // partition — every request alternates and pays a long seek.
        let g = DiskGeometry::wren_1989();
        let mut sim = Simulation::new();
        let dev = sim.add_device(Box::new(ModeledDisk::new(g, SchedPolicy::Fifo, BS)));
        let far = ModeledDisk::new(g, SchedPolicy::Fifo, BS).capacity_blocks() / 2;
        let n = 64u64;
        let mut s0 = Script::new();
        let mut s1 = Script::new();
        for b in 0..n {
            s0 = s0.read(dev, b, 1);
            s1 = s1.read(dev, far + b, 1);
        }
        sim.add_proc(s0.build());
        sim.add_proc(s1.build());
        let shared = sim.run();

        // The same total work done sequentially by one process.
        let mut sim = Simulation::new();
        let dev = sim.add_device(Box::new(ModeledDisk::new(g, SchedPolicy::Fifo, BS)));
        let mut s = Script::new();
        for b in 0..n {
            s = s.read(dev, b, 1);
        }
        for b in 0..n {
            s = s.read(dev, far + b, 1);
        }
        sim.add_proc(s.build());
        let alone = sim.run();

        assert!(
            shared.makespan > alone.makespan * 3,
            "interleaving only {} vs {}",
            shared.makespan,
            alone.makespan
        );
        // And the lost time is specifically seek time.
        assert!(shared.devices[0].seek > alone.devices[0].seek * 10);
    }

    #[test]
    fn sstf_beats_fifo_on_scattered_queue() {
        let run = |policy: SchedPolicy| {
            let mut sim = Simulation::new();
            let cap = disk(policy).capacity_blocks();
            let dev = sim.add_device(Box::new(disk(policy)));
            // 4 processes each dump 16 scattered reads into the queue at
            // once, so the scheduler has a deep queue to reorder.
            for p in 0..4u64 {
                let reqs: Vec<DiskReq> = (0..16u64)
                    .map(|i| DiskReq::read(dev, (p * 7919 + i * 104729) % cap, 1))
                    .collect();
                sim.add_proc(Script::new().io_async(reqs).wait_all().build());
            }
            sim.run().makespan
        };
        let fifo = run(SchedPolicy::Fifo);
        let sstf = run(SchedPolicy::Sstf);
        let scan = run(SchedPolicy::Scan);
        assert!(sstf < fifo, "SSTF {sstf} not faster than FIFO {fifo}");
        assert!(scan < fifo, "SCAN {scan} not faster than FIFO {fifo}");
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn ragged_block_size_rejected() {
        ModeledDisk::new(DiskGeometry::wren_1989(), SchedPolicy::Fifo, 1000);
    }
}
