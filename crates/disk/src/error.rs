//! Error type shared by all storage devices.

use std::fmt;

/// Errors surfaced by block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The device has suffered a (possibly injected) fail-stop failure.
    DeviceFailed {
        /// Human-readable device identity.
        device: String,
    },
    /// A request addressed blocks beyond the end of the device.
    OutOfRange {
        /// Requested block.
        block: u64,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// A buffer did not match the device block size.
    BadBufferSize {
        /// Buffer length supplied.
        got: usize,
        /// Device block size expected.
        expected: usize,
    },
    /// Stored data failed verification (bit rot / injected corruption).
    Corruption {
        /// Device-local block address.
        block: u64,
    },
    /// An underlying OS I/O error (file-backed devices).
    Io(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::DeviceFailed { device } => write!(f, "device {device} has failed"),
            DiskError::OutOfRange { block, capacity } => {
                write!(f, "block {block} out of range (capacity {capacity})")
            }
            DiskError::BadBufferSize { got, expected } => {
                write!(f, "buffer of {got} bytes, device block size is {expected}")
            }
            DiskError::Corruption { block } => write!(f, "data corruption at block {block}"),
            DiskError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> DiskError {
        DiskError::Io(e.to_string())
    }
}

/// Convenient result alias for device operations.
pub type Result<T> = std::result::Result<T, DiskError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DiskError::DeviceFailed {
            device: "mem3".into()
        }
        .to_string()
        .contains("mem3"));
        assert!(DiskError::OutOfRange {
            block: 9,
            capacity: 4
        }
        .to_string()
        .contains("9"));
        let io: DiskError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
