//! Error type shared by all storage devices.

use std::fmt;

/// Errors surfaced by block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The device has suffered a (possibly injected) fail-stop failure.
    DeviceFailed {
        /// Human-readable device identity.
        device: String,
    },
    /// A request addressed blocks beyond the end of the device.
    OutOfRange {
        /// Requested block.
        block: u64,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// A buffer did not match the device block size.
    BadBufferSize {
        /// Buffer length supplied.
        got: usize,
        /// Device block size expected.
        expected: usize,
    },
    /// Stored data failed verification (bit rot / injected corruption).
    Corruption {
        /// Device-local block address.
        block: u64,
    },
    /// A transient fault (bus glitch, injected soft error): the same
    /// operation is expected to succeed if retried.
    Transient {
        /// Human-readable device identity.
        device: String,
    },
    /// The request missed its deadline (queue wait plus retries exceeded
    /// the executor's per-ticket budget). Retryable by the caller.
    Timeout {
        /// Human-readable device identity.
        device: String,
    },
    /// An underlying OS I/O error (file-backed devices).
    Io(String),
}

impl DiskError {
    /// True for faults that are expected to clear on retry
    /// ([`DiskError::Transient`], [`DiskError::Timeout`]); false for
    /// permanent failures ([`DiskError::DeviceFailed`],
    /// [`DiskError::Corruption`]) and caller bugs
    /// ([`DiskError::OutOfRange`], [`DiskError::BadBufferSize`]).
    /// The executor's retry loop and the volume health state machine
    /// both branch on this split.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DiskError::Transient { .. } | DiskError::Timeout { .. }
        )
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::DeviceFailed { device } => write!(f, "device {device} has failed"),
            DiskError::OutOfRange { block, capacity } => {
                write!(f, "block {block} out of range (capacity {capacity})")
            }
            DiskError::BadBufferSize { got, expected } => {
                write!(f, "buffer of {got} bytes, device block size is {expected}")
            }
            DiskError::Corruption { block } => write!(f, "data corruption at block {block}"),
            DiskError::Transient { device } => {
                write!(f, "transient fault on device {device} (retryable)")
            }
            DiskError::Timeout { device } => {
                write!(f, "request deadline exceeded on device {device}")
            }
            DiskError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> DiskError {
        DiskError::Io(e.to_string())
    }
}

/// Convenient result alias for device operations.
pub type Result<T> = std::result::Result<T, DiskError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DiskError::DeviceFailed {
            device: "mem3".into()
        }
        .to_string()
        .contains("mem3"));
        assert!(DiskError::OutOfRange {
            block: 9,
            capacity: 4
        }
        .to_string()
        .contains("9"));
        let io: DiskError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(DiskError::Transient {
            device: "mem0".into()
        }
        .to_string()
        .contains("transient"));
        assert!(DiskError::Timeout {
            device: "mem0".into()
        }
        .to_string()
        .contains("deadline"));
    }

    #[test]
    fn transient_permanent_split() {
        let transient = [
            DiskError::Transient { device: "d".into() },
            DiskError::Timeout { device: "d".into() },
        ];
        assert!(transient.iter().all(DiskError::is_transient));
        let permanent = [
            DiskError::DeviceFailed { device: "d".into() },
            DiskError::OutOfRange {
                block: 1,
                capacity: 1,
            },
            DiskError::BadBufferSize {
                got: 1,
                expected: 2,
            },
            DiskError::Corruption { block: 0 },
            DiskError::Io("x".into()),
        ];
        assert!(permanent.iter().all(|e| !e.is_transient()));
    }
}
